//! Figure 3: memory-anonymous symmetric obstruction-free **adaptive perfect
//! renaming**.
//!
//! `n` processes with distinct identifiers from an unbounded name space
//! acquire distinct new names; when only `k ≤ n` processes participate, the
//! acquired names come from `{1..k}` (adaptivity, Theorem 5.3).
//!
//! The algorithm runs the Figure 2 consensus pattern in *rounds*, all played
//! in the **same** `2n − 1` anonymous registers — that is the trick that
//! removes the need for a prior agreement on an ordering of election
//! objects. Each register holds a record *(id, val, round, history)*:
//!
//! * `round` is the writer's current round;
//! * `val` is the writer's current preference for the leader of that round;
//! * `history` is the set of *(identifier, round)* pairs of all leaders
//!   elected in earlier rounds, as known to the writer.
//!
//! A process whose identifier wins round `r` takes `r` as its new name. A
//! process that observes itself in some history knows it was elected earlier
//! and returns that round. Processes that lose catch up (possibly jumping
//! several rounds at once via the `round`/`history` fields) and retry in the
//! next round; a process that loses all `n − 1` first rounds takes the name
//! `n` (line 22).

use std::collections::BTreeSet;
use std::fmt;

use anonreg_model::{Machine, Pid, PidMap, Step};

/// The content of one renaming register: an *(id, val, round, history)*
/// record, all-zero/empty when untouched.
///
/// `history` is stored as an ordered set purely for deterministic equality
/// and hashing; the algorithm only ever tests membership, so no identifier
/// ordering leaks into its decisions (the model is comparison-for-equality
/// only).
#[derive(Clone, Debug, Default, PartialEq, Eq, Hash)]
pub struct RenRecord {
    /// Identifier of the writing process, `0` if untouched.
    pub id: u64,
    /// The writer's preferred leader (an identifier) for `round`.
    pub val: u64,
    /// The writer's round number, `0` if untouched (rounds are `1..=n`).
    pub round: u32,
    /// Set of `(identifier, round)` pairs of leaders elected in rounds
    /// `< round`.
    pub history: BTreeSet<(u64, u32)>,
}

impl RenRecord {
    /// Returns `true` if this register has never been written.
    #[must_use]
    pub fn is_untouched(&self) -> bool {
        self.id == 0 && self.val == 0 && self.round == 0 && self.history.is_empty()
    }
}

impl PidMap for RenRecord {
    fn map_pids(&self, f: &mut dyn FnMut(Pid) -> Pid) -> Self {
        RenRecord {
            id: self.id.map_pids(f),
            val: self.val.map_pids(f),
            round: self.round,
            history: self
                .history
                .iter()
                .map(|&(id, r)| (id.map_pids(f), r))
                .collect(),
        }
    }
}

/// Observable milestone of a renaming algorithm.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum RenamingEvent {
    /// The process acquired the given new name (from `{1..n}`) and is about
    /// to terminate.
    Named(u32),
}

/// Error returned for invalid renaming configurations.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RenamingConfigError {
    n: usize,
}

impl fmt::Display for RenamingConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "renaming needs at least one process, got n = {}", self.n)
    }
}

impl std::error::Error for RenamingConfigError {}

#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
enum Pc {
    /// Top of the outer repeat loop (line 2 about to run).
    Start,
    /// Line 4, read issued for register `j`: filling `myview`.
    ViewRead,
    /// Line 16, write just issued: restart the inner scan.
    Wrote,
    /// Name announced; next step halts.
    Named,
}

/// The Figure 3 algorithm: memory-anonymous symmetric obstruction-free
/// adaptive perfect renaming for `n` processes using `2n − 1` anonymous
/// registers.
///
/// The machine announces [`RenamingEvent::Named`] with its acquired name
/// (from `{1..n}`, and from `{1..k}` when only `k` processes participate)
/// and halts.
///
/// For demonstrations of Theorem 6.5 the register count can be overridden
/// with [`with_registers`](AnonRenaming::with_registers); correctness is
/// only claimed for the default `2n − 1`.
///
/// # Example
///
/// A solo participant adaptively gets the smallest name, `1`:
///
/// ```
/// use anonreg::renaming::{AnonRenaming, RenamingEvent};
/// use anonreg::{Machine, Pid, Step};
///
/// let mut machine = AnonRenaming::new(Pid::new(31).unwrap(), 3)?;
/// let mut regs =
///     vec![anonreg::renaming::RenRecord::default(); machine.register_count()];
/// let mut read = None;
/// loop {
///     match machine.resume(read.take()) {
///         Step::Read(j) => read = Some(regs[j].clone()),
///         Step::Write(j, v) => regs[j] = v,
///         Step::Event(RenamingEvent::Named(name)) => {
///             assert_eq!(name, 1);
///             break;
///         }
///         Step::Halt => unreachable!("names before halting"),
///     }
/// }
/// # Ok::<(), anonreg::renaming::RenamingConfigError>(())
/// ```
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct AnonRenaming {
    pid: Pid,
    n: usize,
    registers: usize,
    mypref: u64,
    myround: u32,
    myhistory: BTreeSet<(u64, u32)>,
    myview: Vec<RenRecord>,
    j: usize,
    pc: Pc,
}

impl AnonRenaming {
    /// Creates the Figure 3 machine for process `pid`, one of at most `n`
    /// potential participants, using the prescribed `2n − 1` registers.
    ///
    /// # Errors
    ///
    /// Returns [`RenamingConfigError`] if `n == 0`.
    pub fn new(pid: Pid, n: usize) -> Result<Self, RenamingConfigError> {
        if n == 0 {
            return Err(RenamingConfigError { n });
        }
        let registers = 2 * n - 1;
        Ok(AnonRenaming {
            pid,
            n,
            registers,
            mypref: pid.get(),
            myround: 1,
            myhistory: BTreeSet::new(),
            myview: vec![RenRecord::default(); registers],
            j: 0,
            pc: Pc::Start,
        })
    }

    /// Overrides the number of registers. **This intentionally breaks the
    /// algorithm's requirements** when `registers < 2n − 1`; it exists so the
    /// covering adversary of Theorem 6.5 can construct real uniqueness
    /// violations (experiment E6).
    ///
    /// # Panics
    ///
    /// Panics if `registers == 0`.
    #[must_use]
    pub fn with_registers(mut self, registers: usize) -> Self {
        assert!(registers > 0, "renaming needs at least one register");
        self.registers = registers;
        self.myview = vec![RenRecord::default(); registers];
        self
    }

    /// The process's current round (`1..=n`).
    #[must_use]
    pub fn round(&self) -> u32 {
        self.myround
    }

    /// Returns `true` once the process has acquired its name.
    #[must_use]
    pub fn has_name(&self) -> bool {
        self.pc == Pc::Named
    }

    /// The record this process would write right now (line 16).
    fn my_record(&self) -> RenRecord {
        RenRecord {
            id: self.pid.get(),
            val: self.mypref,
            round: self.myround,
            history: self.myhistory.clone(),
        }
    }

    /// Lines 5–17 evaluated after a full scan of the shared array.
    fn after_view(&mut self) -> Step<RenRecord, RenamingEvent> {
        let me = self.pid.get();
        // Line 5: if my identifier appears in someone's history, I was
        // already elected; my new name is that round.
        for record in &self.myview {
            for &(id, round) in &record.history {
                if id == me {
                    self.pc = Pc::Named;
                    return Step::Event(RenamingEvent::Named(round));
                }
            }
        }
        // Lines 7–12: catch up to the maximum round seen, adopting that
        // entry's preference and history wholesale. Deterministic choice:
        // first entry (in local scan order) carrying the maximum round.
        let mytemp = self.myview.iter().map(|r| r.round).max().unwrap_or(0);
        if mytemp > self.myround {
            let source = self
                .myview
                .iter()
                .find(|r| r.round == mytemp)
                .expect("an entry carries the maximum round");
            self.mypref = source.val;
            self.myhistory = source.history.clone();
            self.myround = source.round;
        }
        // Lines 13–14: adopt a preference that reached the n-threshold among
        // entries of my round.
        if let Some(v) = self.dominant_value() {
            self.mypref = v;
        }
        let mine = self.my_record();
        // Line 17 (checked against the scan just taken, mirroring the
        // consensus algorithm): my full record everywhere means this round's
        // election is decided.
        if self.myview.iter().all(|r| *r == mine) {
            return self.round_won();
        }
        // Lines 15–16: write the first entry that differs.
        let j = self
            .myview
            .iter()
            .position(|r| *r != mine)
            .expect("some entry differs when the round is still open");
        self.pc = Pc::Wrote;
        Step::Write(j, mine)
    }

    /// Lines 18–22: the inner loop finished — either I am the elected leader
    /// of this round (my name is the round number), or I record the winner
    /// and move to the next round; after losing `n − 1` rounds I take the
    /// name `n`.
    fn round_won(&mut self) -> Step<RenRecord, RenamingEvent> {
        if self.mypref == self.pid.get() {
            self.pc = Pc::Named;
            return Step::Event(RenamingEvent::Named(self.myround));
        }
        self.myhistory.insert((self.mypref, self.myround));
        self.myround += 1;
        if self.myround as usize == self.n {
            // Line 21–22: a single process is left unelected; it takes n.
            self.pc = Pc::Named;
            return Step::Event(RenamingEvent::Named(self.n as u32));
        }
        // Line 2: new round, prefer myself again.
        self.mypref = self.pid.get();
        self.pc = Pc::ViewRead;
        self.j = 0;
        Step::Read(0)
    }

    /// The unique nonzero value appearing in at least `n` val fields among
    /// the entries of my current round, if any (line 13).
    fn dominant_value(&self) -> Option<u64> {
        let in_round: Vec<&RenRecord> = self
            .myview
            .iter()
            .filter(|r| r.round == self.myround)
            .collect();
        for (idx, record) in in_round.iter().enumerate() {
            let v = record.val;
            if v == 0 {
                continue;
            }
            if in_round[..idx].iter().any(|r| r.val == v) {
                continue;
            }
            let count = in_round.iter().filter(|r| r.val == v).count();
            if count >= self.n {
                return Some(v);
            }
        }
        None
    }
}

impl Machine for AnonRenaming {
    type Value = RenRecord;
    type Event = RenamingEvent;

    fn pid(&self) -> Pid {
        self.pid
    }

    fn register_count(&self) -> usize {
        self.registers
    }

    fn resume(&mut self, read: Option<RenRecord>) -> Step<RenRecord, RenamingEvent> {
        match self.pc {
            Pc::Start => {
                debug_assert!(read.is_none());
                self.pc = Pc::ViewRead;
                self.j = 0;
                Step::Read(0)
            }
            Pc::ViewRead => {
                let value = read.expect("view read result expected");
                self.myview[self.j] = value;
                self.j += 1;
                if self.j < self.registers {
                    Step::Read(self.j)
                } else {
                    self.j = 0;
                    self.after_view()
                }
            }
            Pc::Wrote => {
                debug_assert!(read.is_none());
                self.pc = Pc::ViewRead;
                self.j = 0;
                Step::Read(0)
            }
            Pc::Named => Step::Halt,
        }
    }
}

impl PidMap for AnonRenaming {
    fn map_pids(&self, f: &mut dyn FnMut(Pid) -> Pid) -> Self {
        AnonRenaming {
            pid: f(self.pid),
            mypref: self.mypref.map_pids(f),
            myhistory: self
                .myhistory
                .iter()
                .map(|&(id, r)| (id.map_pids(f), r))
                .collect(),
            myview: self.myview.iter().map(|r| r.map_pids(f)).collect(),
            ..self.clone()
        }
    }
}

impl fmt::Debug for AnonRenaming {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("AnonRenaming")
            .field("pid", &self.pid)
            .field("n", &self.n)
            .field("registers", &self.registers)
            .field("mypref", &self.mypref)
            .field("myround", &self.myround)
            .field("myhistory", &self.myhistory)
            .field("pc", &self.pc)
            .field("j", &self.j)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pid(n: u64) -> Pid {
        Pid::new(n).unwrap()
    }

    fn run_solo(mut machine: AnonRenaming, regs: &mut [RenRecord]) -> (u32, usize) {
        let mut read = None;
        let mut ops = 0;
        for _ in 0..1_000_000 {
            match machine.resume(read.take()) {
                Step::Read(j) => {
                    ops += 1;
                    read = Some(regs[j].clone());
                }
                Step::Write(j, v) => {
                    ops += 1;
                    regs[j] = v;
                }
                Step::Event(RenamingEvent::Named(name)) => return (name, ops),
                Step::Halt => panic!("halt before acquiring a name"),
            }
        }
        panic!("machine did not acquire a name")
    }

    #[test]
    fn config_error() {
        let err = AnonRenaming::new(pid(1), 0).unwrap_err();
        assert!(err.to_string().contains("at least one process"));
    }

    #[test]
    fn register_count_is_2n_minus_1() {
        for n in 1..8 {
            let m = AnonRenaming::new(pid(1), n).unwrap();
            assert_eq!(m.register_count(), 2 * n - 1);
        }
    }

    #[test]
    fn single_process_takes_name_one() {
        // n = 1: one register; the solo process claims it (read + write),
        // re-scans, sees itself elected, and takes name 1: 3 memory ops.
        let machine = AnonRenaming::new(pid(5), 1).unwrap();
        let mut regs = vec![RenRecord::default(); 1];
        let (name, ops) = run_solo(machine, &mut regs);
        assert_eq!(name, 1);
        assert_eq!(ops, 3);
    }

    #[test]
    fn solo_participant_gets_name_one_adaptively() {
        // Adaptivity (Theorem 5.3) with k = 1: a solo participant among up
        // to n potential ones must take name 1 regardless of n.
        for n in 2..6 {
            let machine = AnonRenaming::new(pid(5), n).unwrap();
            let mut regs = vec![RenRecord::default(); 2 * n - 1];
            let (name, _) = run_solo(machine, &mut regs);
            assert_eq!(name, 1, "n={n}");
        }
    }

    #[test]
    fn already_elected_process_reads_its_name_from_history() {
        // Some register's history already records pid 5 as round 2's leader.
        let n = 3;
        let mut regs = vec![RenRecord::default(); 2 * n - 1];
        regs[3].history.insert((5, 2));
        regs[3].id = 9;
        regs[3].round = 3;
        let machine = AnonRenaming::new(pid(5), n).unwrap();
        let (name, _) = run_solo(machine, &mut regs);
        assert_eq!(name, 2);
    }

    #[test]
    fn lagging_process_catches_up_to_max_round() {
        // All registers are in round 2 with leader-history {(9, 1)}: the new
        // arrival must catch up, lose round 2 eventually or win it.
        let n = 3;
        let mut history = BTreeSet::new();
        history.insert((9u64, 1u32));
        let template = RenRecord {
            id: 9,
            val: 9,
            round: 2,
            history: history.clone(),
        };
        let mut regs = vec![template.clone(); 2 * n - 1];
        let machine = AnonRenaming::new(pid(5), n).unwrap();
        let mut probe = machine.clone();
        // One scan = 2n−1 reads; drive it through and inspect the state.
        let mut read = None;
        for _ in 0..(2 * n) {
            match probe.resume(read.take()) {
                Step::Read(j) => read = Some(regs[j].clone()),
                Step::Write(..) => break,
                other => panic!("unexpected {other:?}"),
            }
        }
        assert_eq!(probe.round(), 2);
        // Driving to completion: pid 5 runs alone, so it wins round 2 (it
        // adopts 9's preference first — value 9 — but 9 is not running;
        // after catching up, 5 prefers 9... then pushes the adopted value).
        let (name, _) = run_solo(machine, &mut regs);
        // The solo process must terminate with *some* name in 1..=n.
        assert!((1..=n as u32).contains(&name));
    }

    #[test]
    fn two_processes_sequentially_get_names_one_and_two() {
        // Process 5 runs alone and takes name 1; then process 8 runs alone
        // against the leftover registers and must take name 2.
        let n = 2;
        let mut regs = vec![RenRecord::default(); 2 * n - 1];
        let first = AnonRenaming::new(pid(5), n).unwrap();
        let (name1, _) = run_solo(first, &mut regs);
        assert_eq!(name1, 1);
        let second = AnonRenaming::new(pid(8), n).unwrap();
        let (name2, _) = run_solo(second, &mut regs);
        assert_eq!(name2, 2);
    }

    #[test]
    fn three_processes_sequentially_get_distinct_names() {
        let n = 3;
        let mut regs = vec![RenRecord::default(); 2 * n - 1];
        let mut names = Vec::new();
        for id in [11, 22, 33] {
            let machine = AnonRenaming::new(pid(id), n).unwrap();
            let (name, _) = run_solo(machine, &mut regs);
            names.push(name);
        }
        names.sort_unstable();
        assert_eq!(names, vec![1, 2, 3]);
    }

    #[test]
    fn named_machine_halts() {
        let mut machine = AnonRenaming::new(pid(5), 1).unwrap();
        let mut regs = vec![RenRecord::default(); 1];
        let mut read = None;
        loop {
            match machine.resume(read.take()) {
                Step::Read(j) => read = Some(regs[j].clone()),
                Step::Write(j, v) => regs[j] = v,
                Step::Event(RenamingEvent::Named(1)) => break,
                other => panic!("unexpected {other:?}"),
            }
        }
        assert!(machine.has_name());
        assert_eq!(machine.resume(None), Step::Halt);
        assert_eq!(machine.resume(None), Step::Halt);
    }

    #[test]
    fn with_registers_overrides_for_lower_bounds() {
        let machine = AnonRenaming::new(pid(1), 2).unwrap().with_registers(1);
        assert_eq!(machine.register_count(), 1);
    }

    #[test]
    #[should_panic(expected = "at least one register")]
    fn with_zero_registers_panics() {
        let _ = AnonRenaming::new(pid(1), 2).unwrap().with_registers(0);
    }

    #[test]
    fn pid_map_round_trips() {
        let a = pid(1);
        let b = pid(2);
        let mut machine = AnonRenaming::new(a, 2).unwrap();
        let mut regs = vec![RenRecord::default(); 3];
        regs[1] = RenRecord {
            id: 2,
            val: 2,
            round: 1,
            history: BTreeSet::new(),
        };
        let mut read = None;
        for _ in 0..3 {
            match machine.resume(read.take()) {
                Step::Read(j) => read = Some(regs[j].clone()),
                _ => break,
            }
        }
        let swapped = machine.map_pids(&mut |p| if p == a { b } else { a });
        assert_eq!(swapped.pid(), b);
        let back = swapped.map_pids(&mut |p| if p == a { b } else { a });
        assert_eq!(back, machine);
    }

    #[test]
    fn untouched_record_detection() {
        assert!(RenRecord::default().is_untouched());
        let r = RenRecord {
            round: 1,
            ..RenRecord::default()
        };
        assert!(!r.is_untouched());
    }
}
