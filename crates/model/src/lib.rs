//! Formal model for *memory-anonymous* shared-memory computation.
//!
//! This crate defines the computational model of Gadi Taubenfeld's PODC 2017
//! paper **"Coordination Without Prior Agreement"**: a fully asynchronous set
//! of processes that communicate through atomic multi-writer multi-reader
//! registers which have **no globally agreed names**. Each process privately
//! enumerates the registers through its own permutation (a [`View`]), so the
//! register one process calls "register 3" may be the register another calls
//! "register 7".
//!
//! The crate contains no algorithms and no execution engine — only the
//! vocabulary shared by every other crate in the workspace:
//!
//! * [`Pid`] — opaque process identifiers that support *only* equality
//!   comparison, matching the paper's "symmetric with equality" model.
//! * [`RegisterValue`] — the trait register contents must satisfy.
//! * [`Machine`] and [`Step`] — algorithms expressed as deterministic state
//!   machines that perform one atomic operation per step. The same machine
//!   runs under the deterministic simulator (`anonreg-sim`) and on real
//!   threads (`anonreg-runtime`).
//! * [`View`] — a process's private numbering of the shared registers.
//! * [`trace`] — recorded runs, used by specification checkers.
//! * [`PidMap`] — structural renaming of identifiers, used by the symmetry
//!   arguments behind the paper's lower bounds (Theorem 3.4).
//! * [`fingerprint`] — deterministic 64-bit state hashing, shared by the
//!   model checker's interning tables so parallel workers agree on state
//!   identity.
//! * [`canon`] — orbit canonicalization: byte-stable state encodings,
//!   first-occurrence identifier renumbering and the view-compatible
//!   permutation group, used by the explorer's symmetry reduction.
//! * [`structural`] — stable 128-bit structural keys over machines,
//!   configurations and exploration options, used by the proof-carrying
//!   reachability cache to decide when a certificate is still valid.
//!
//! # Example
//!
//! A trivial machine that writes its identifier into local register 0 and
//! halts:
//!
//! ```
//! use anonreg_model::{Machine, Pid, Step};
//!
//! #[derive(Clone, Debug, PartialEq, Eq, Hash)]
//! struct WriteOnce {
//!     pid: Pid,
//!     done: bool,
//! }
//!
//! impl Machine for WriteOnce {
//!     type Value = u64;
//!     type Event = ();
//!
//!     fn pid(&self) -> Pid { self.pid }
//!     fn register_count(&self) -> usize { 1 }
//!
//!     fn resume(&mut self, _read: Option<u64>) -> Step<u64, ()> {
//!         if self.done {
//!             Step::Halt
//!         } else {
//!             self.done = true;
//!             Step::Write(0, self.pid.get())
//!         }
//!     }
//! }
//!
//! let mut m = WriteOnce { pid: Pid::new(7).unwrap(), done: false };
//! assert_eq!(m.resume(None), Step::Write(0, 7));
//! assert_eq!(m.resume(None), Step::Halt);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod machine;
mod pid;
mod value;
mod view;

pub mod canon;
pub mod fingerprint;
pub mod rng;
pub mod structural;
pub mod trace;

pub use canon::SymmetryMode;
pub use fingerprint::{fingerprint_of, Fnv64};
pub use machine::{Machine, Step};
pub use pid::{ParsePidError, Pid, PidMap};
pub use value::RegisterValue;
pub use view::{View, ViewError};
