//! Every lint must catch its negative fixture and pass the positive
//! control — and *only* its own fixture's defect class is asserted, so a
//! fixture tripping an unrelated lint is a test failure here, not an
//! accident.

use anonreg_lint::cfg::CfgConfig;
use anonreg_lint::fixtures::{
    Asymmetric, Diverger, Flicker, Messy, OutOfBounds, WellBehaved, WideWriter, Zombie,
};
use anonreg_lint::lints::{exit_restores_memory, solo_termination, symmetry, Analysis};
use anonreg_lint::report::LintId;
use anonreg_lint::Verdict;
use anonreg_model::Pid;

fn pid(n: u64) -> Pid {
    Pid::new(n).unwrap()
}

fn config() -> CfgConfig<u64> {
    CfgConfig::new(vec![0, 1, 2])
}

fn control() -> WellBehaved {
    WellBehaved::new(pid(1))
}

fn expect_fail(verdict: &Verdict, lint: LintId) {
    match verdict {
        Verdict::Fail(findings) => {
            assert!(!findings.is_empty());
            for finding in findings {
                assert_eq!(finding.lint, lint);
                assert!(
                    !finding.witness.is_empty(),
                    "every finding must carry a replayable witness"
                );
            }
        }
        other => panic!("expected {lint:?} to fail, got {other:?}"),
    }
}

// --- L1: index bounds -----------------------------------------------------

#[test]
fn l1_passes_on_the_control() {
    assert!(Analysis::new(&control(), &config()).index_bounds().passed());
}

#[test]
fn l1_catches_out_of_bounds_indices() {
    let verdict = Analysis::new(&OutOfBounds::new(3), &config()).index_bounds();
    expect_fail(&verdict, LintId::IndexBounds);
    let Verdict::Fail(findings) = verdict else {
        unreachable!()
    };
    assert!(findings[0].message.contains("index 3"));
    assert!(findings[0].message.contains("register_count = 3"));
}

// --- L2: protocol conformance --------------------------------------------

#[test]
fn l2_passes_on_the_control() {
    assert!(Analysis::new(&control(), &config()).protocol().passed());
}

#[test]
fn l2_catches_nondeterministic_resume() {
    let verdict = Analysis::new(&Flicker::new(), &config()).protocol();
    expect_fail(&verdict, LintId::Protocol);
    let Verdict::Fail(findings) = verdict else {
        unreachable!()
    };
    assert!(findings
        .iter()
        .any(|f| f.message.contains("not deterministic")));
}

#[test]
fn l2_catches_steps_after_halt() {
    let verdict = Analysis::new(&Zombie::new(), &config()).protocol();
    expect_fail(&verdict, LintId::Protocol);
    let Verdict::Fail(findings) = verdict else {
        unreachable!()
    };
    assert!(findings.iter().any(|f| f.message.contains("after Halt")));
}

// --- L3: symmetry ---------------------------------------------------------

/// The pid-substitution map for two u64-valued processes: swap the two
/// identifiers, fix everything else.
fn swap(a: u64, b: u64) -> impl Fn(&u64) -> u64 {
    move |&v| {
        if v == a {
            b
        } else if v == b {
            a
        } else {
            v
        }
    }
}

#[test]
fn l3_passes_on_the_control() {
    let verdict = symmetry(
        &WellBehaved::new(pid(1)),
        &WellBehaved::new(pid(2)),
        swap(1, 2),
        &config(),
    );
    assert!(verdict.passed(), "{verdict:?}");
}

#[test]
fn l3_catches_identifier_content_branching() {
    let verdict = symmetry(
        &Asymmetric::new(pid(1)),
        &Asymmetric::new(pid(2)),
        swap(1, 2),
        &config(),
    );
    expect_fail(&verdict, LintId::Symmetry);
    let Verdict::Fail(findings) = verdict else {
        unreachable!()
    };
    assert!(findings[0].message.contains("diverge"));
}

#[test]
fn l3_skips_on_empty_domain_instead_of_passing_vacuously() {
    // Zero inputs at awaiting nodes would make the lockstep check
    // vacuously true; the lint must report the misconfiguration the same
    // way Cfg::extract rejects it, never Pass.
    let verdict = symmetry(
        &WellBehaved::new(pid(1)),
        &WellBehaved::new(pid(2)),
        swap(1, 2),
        &CfgConfig::new(vec![]),
    );
    let Verdict::Skipped(why) = verdict else {
        panic!("expected Skipped on empty domain, got {verdict:?}");
    };
    assert!(why.contains("domain is empty"), "{why}");
}

// --- L4: exit restores memory --------------------------------------------

#[test]
fn l4_passes_on_the_control() {
    assert!(exit_restores_memory(control(), vec![0], 100).passed());
}

#[test]
fn l4_catches_dirty_exits() {
    let verdict = exit_restores_memory(Messy::new(), vec![0], 100);
    expect_fail(&verdict, LintId::ExitRestoresMemory);
    let Verdict::Fail(findings) = verdict else {
        unreachable!()
    };
    assert!(
        findings[0].message.contains("[0]"),
        "{}",
        findings[0].message
    );
}

#[test]
fn l4_defers_diverging_runs_to_l5() {
    // A diverging machine is L5's failure; L4 reports a skip, not a pass.
    let verdict = exit_restores_memory(Diverger::new(), vec![0], 50);
    assert!(matches!(verdict, Verdict::Skipped(_)), "{verdict:?}");
}

// --- L5: bounded solo termination -----------------------------------------

#[test]
fn l5_passes_on_the_control() {
    assert!(solo_termination(control(), vec![0], 100).passed());
}

#[test]
fn l5_catches_divergence() {
    let verdict = solo_termination(Diverger::new(), vec![0], 50);
    expect_fail(&verdict, LintId::SoloTermination);
    let Verdict::Fail(findings) = verdict else {
        unreachable!()
    };
    assert!(findings[0].message.contains("still live after 50"));
}

// --- L6: pack width --------------------------------------------------------

fn fits_u32(v: &u64) -> bool {
    *v <= u64::from(u32::MAX)
}

#[test]
fn l6_passes_on_the_control() {
    assert!(Analysis::new(&control(), &config())
        .pack_width(fits_u32)
        .passed());
}

#[test]
fn l6_catches_overwide_writes() {
    let verdict = Analysis::new(&WideWriter::new(), &config()).pack_width(fits_u32);
    expect_fail(&verdict, LintId::PackWidth);
    let Verdict::Fail(findings) = verdict else {
        unreachable!()
    };
    assert!(findings[0].message.contains("1099511627776")); // 1 << 40
}

// --- cross-cutting ----------------------------------------------------------

#[test]
fn fixtures_fail_only_their_own_lints_where_meaningful() {
    // The control is clean across the whole battery.
    let analysis = Analysis::new(&control(), &config());
    assert!(analysis.index_bounds().passed());
    assert!(analysis.protocol().passed());
    assert!(analysis.pack_width(fits_u32).passed());
    assert!(exit_restores_memory(control(), vec![0], 100).passed());
    assert!(solo_termination(control(), vec![0], 100).passed());

    // OutOfBounds is protocol-conformant and terminating: only L1 fires.
    let oob = Analysis::new(&OutOfBounds::new(3), &config());
    assert!(oob.protocol().passed());
    assert!(solo_termination(OutOfBounds::new(3), vec![0, 0, 0], 100).passed());

    // Messy is in-bounds and protocol-conformant: only L4 fires.
    let messy = Analysis::new(&Messy::new(), &config());
    assert!(messy.index_bounds().passed());
    assert!(messy.protocol().passed());
    assert!(solo_termination(Messy::new(), vec![0], 100).passed());

    // Diverger is in-bounds and deterministic: only L5 fires.
    let diverger = Analysis::new(&Diverger::new(), &config());
    assert!(diverger.index_bounds().passed());
    assert!(diverger.protocol().passed());
}

#[test]
fn reports_render_witnesses_end_to_end() {
    use anonreg_lint::LintReport;
    let mut report = LintReport::new("out-of-bounds fixture");
    report.record(
        LintId::IndexBounds,
        Analysis::new(&OutOfBounds::new(3), &config()).index_bounds(),
    );
    assert!(!report.passed());
    let rendered = report.to_string();
    assert!(rendered.contains("L1"));
    assert!(rendered.contains("FAIL"));
    assert!(rendered.contains("Write(3, 1)"), "{rendered}");
}
