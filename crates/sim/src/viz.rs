//! Graphviz export for explored state graphs.
//!
//! Small instances of the paper's algorithms have state graphs worth
//! *looking at* — the even-`m` livelock of Theorem 3.1 is a visible cycle,
//! the covering runs are visible corridors. [`to_dot`] renders a
//! [`StateGraph`] in DOT format for `dot -Tsvg`; a labeling callback
//! controls what each state displays.

use std::fmt::Write as _;
use std::hash::Hash;

use anonreg_model::Machine;

use crate::explore::StateGraph;
use crate::Simulation;

/// Options for [`to_dot`].
#[derive(Clone, Debug)]
pub struct DotOptions {
    /// Graph name.
    pub name: String,
    /// Cap on rendered states (graphs beyond a few hundred nodes are
    /// unreadable); states with ids beyond the cap are omitted, and edges
    /// to them are dropped.
    pub max_states: usize,
    /// Highlight these states (e.g. a livelock component) with a fill.
    pub highlight: Vec<usize>,
}

impl Default for DotOptions {
    fn default() -> Self {
        DotOptions {
            name: "states".into(),
            max_states: 400,
            highlight: Vec::new(),
        }
    }
}

/// What [`to_dot_with_stats`] left out of a rendering.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct DotStats {
    /// States actually rendered.
    pub shown_states: usize,
    /// States omitted because their id was at or beyond
    /// [`DotOptions::max_states`].
    pub dropped_states: usize,
    /// Edges omitted because either endpoint was an omitted state.
    pub dropped_edges: usize,
}

impl DotStats {
    /// `true` when the rendering is the whole graph.
    #[must_use]
    pub fn complete(&self) -> bool {
        self.dropped_states == 0 && self.dropped_edges == 0
    }
}

/// Renders the graph in DOT format. `label` produces each state's node
/// text; event-bearing edges are annotated with their events, crash edges
/// are dashed.
///
/// Equivalent to [`to_dot_with_stats`] with the stats discarded; the
/// rendered output still carries the truncation comment, so even a caller
/// that ignores the stats cannot mistake a truncated graph for the whole
/// state space.
///
/// # Example
///
/// ```
/// use anonreg_model::{Machine, Pid, Step, View};
/// use anonreg_sim::prelude::*;
/// use anonreg_sim::viz::{to_dot, DotOptions};
/// use anonreg_sim::Simulation;
///
/// #[derive(Clone, Debug, PartialEq, Eq, Hash)]
/// struct Once(Pid, bool);
/// impl Machine for Once {
///     type Value = u64;
///     type Event = ();
///     fn pid(&self) -> Pid { self.0 }
///     fn register_count(&self) -> usize { 1 }
///     fn resume(&mut self, _r: Option<u64>) -> Step<u64, ()> {
///         if self.1 { Step::Halt } else { self.1 = true; Step::Write(0, 1) }
///     }
/// }
///
/// let sim = Simulation::builder()
///     .process(Once(Pid::new(1).unwrap(), false), View::identity(1))
///     .build()?;
/// let graph = Explorer::new(sim).run().unwrap();
/// let dot = to_dot(&graph, &DotOptions::default(), |s| format!("{:?}", s.registers()));
/// assert!(dot.starts_with("digraph"));
/// # Ok::<(), anonreg_sim::SimError>(())
/// ```
pub fn to_dot<M, F>(graph: &StateGraph<M>, options: &DotOptions, label: F) -> String
where
    M: Machine + Eq + Hash,
    F: FnMut(&Simulation<M>) -> String,
{
    to_dot_with_stats(graph, options, label).0
}

/// Like [`to_dot`], but also reports what was dropped to honor
/// [`DotOptions::max_states`]. A truncated rendering additionally carries
/// a `// truncated: …` comment before the closing brace, so the DOT file
/// itself documents its own incompleteness.
pub fn to_dot_with_stats<M, F>(
    graph: &StateGraph<M>,
    options: &DotOptions,
    mut label: F,
) -> (String, DotStats)
where
    M: Machine + Eq + Hash,
    F: FnMut(&Simulation<M>) -> String,
{
    let shown = graph.state_count().min(options.max_states);
    let mut stats = DotStats {
        shown_states: shown,
        dropped_states: graph.state_count() - shown,
        dropped_edges: 0,
    };
    let mut out = String::new();
    let _ = writeln!(out, "digraph {} {{", options.name);
    let _ = writeln!(out, "  rankdir=LR;");
    let _ = writeln!(out, "  node [shape=box, fontsize=9];");
    for id in 0..shown {
        let state = graph.state(id);
        let text = label(state).replace('"', "'");
        let fill = if options.highlight.contains(&id) {
            ", style=filled, fillcolor=\"#ffd9d9\""
        } else if state.all_halted() {
            ", style=filled, fillcolor=\"#d9ffd9\""
        } else {
            ""
        };
        let _ = writeln!(out, "  s{id} [label=\"{id}: {text}\"{fill}];");
    }
    for id in 0..shown {
        for edge in graph.edges(id) {
            if edge.target >= shown {
                stats.dropped_edges += 1;
                continue;
            }
            let mut attrs = vec![format!("label=\"p{}\"", edge.proc)];
            if !edge.events.is_empty() {
                attrs.push(format!(
                    "color=blue, fontcolor=blue, label=\"p{} {:?}\"",
                    edge.proc, edge.events
                ));
            }
            if edge.crash {
                attrs.push("style=dashed, color=red".into());
            }
            let _ = writeln!(out, "  s{id} -> s{} [{}];", edge.target, attrs.join(", "));
        }
    }
    // Edges *from* omitted states are dropped wholesale.
    for id in shown..graph.state_count() {
        stats.dropped_edges += graph.edges(id).len();
    }
    if !stats.complete() {
        let _ = writeln!(
            out,
            "  // truncated: {} of {} states and {} of {} edges omitted (max_states = {})",
            stats.dropped_states,
            graph.state_count(),
            stats.dropped_edges,
            graph.edge_count(),
            options.max_states
        );
    }
    let _ = writeln!(out, "}}");
    (out, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::explore::Explorer;
    use anonreg_model::{Pid, Step, View};

    #[derive(Clone, Debug, PartialEq, Eq, Hash)]
    struct Twice {
        pid: Pid,
        left: u8,
    }

    impl Machine for Twice {
        type Value = u64;
        type Event = &'static str;

        fn pid(&self) -> Pid {
            self.pid
        }

        fn register_count(&self) -> usize {
            1
        }

        fn resume(&mut self, _read: Option<u64>) -> Step<u64, &'static str> {
            match self.left {
                0 => Step::Halt,
                1 => {
                    self.left = 0;
                    Step::Event("done")
                }
                n => {
                    self.left = n - 1;
                    Step::Write(0, self.pid.get())
                }
            }
        }
    }

    fn graph() -> StateGraph<Twice> {
        let sim = Simulation::builder()
            .process(
                Twice {
                    pid: Pid::new(1).unwrap(),
                    left: 2,
                },
                View::identity(1),
            )
            .build()
            .unwrap();
        Explorer::new(sim).run().unwrap()
    }

    #[test]
    fn dot_renders_nodes_edges_and_events() {
        let g = graph();
        let dot = to_dot(&g, &DotOptions::default(), |s| {
            format!("r={:?}", s.registers())
        });
        assert!(dot.starts_with("digraph states {"));
        assert!(dot.trim_end().ends_with('}'));
        assert!(dot.contains("s0 ["));
        assert!(dot.contains("->"));
        assert!(dot.contains("done"), "event labels present");
        // Terminal states get the halted fill.
        assert!(dot.contains("#d9ffd9"));
    }

    #[test]
    fn highlight_and_cap_are_respected() {
        let g = graph();
        let dot = to_dot(
            &g,
            &DotOptions {
                name: "demo".into(),
                max_states: 1,
                highlight: vec![0],
            },
            |_| "x".into(),
        );
        assert!(dot.contains("digraph demo"));
        assert!(dot.contains("#ffd9d9"));
        assert!(!dot.contains("s1 ["), "states beyond the cap are omitted");
    }

    #[test]
    fn stats_account_for_every_dropped_state_and_edge() {
        let g = graph();
        // Uncapped: everything shown, no truncation comment.
        let (dot, stats) = to_dot_with_stats(&g, &DotOptions::default(), |_| "x".into());
        assert!(stats.complete());
        assert_eq!(stats.shown_states, g.state_count());
        assert!(!dot.contains("truncated"));
        // Capped to one state: the rest (and their edges) are counted.
        let (dot, stats) = to_dot_with_stats(
            &g,
            &DotOptions {
                max_states: 1,
                ..DotOptions::default()
            },
            |_| "x".into(),
        );
        assert!(!stats.complete());
        assert_eq!(stats.shown_states, 1);
        assert_eq!(stats.dropped_states, g.state_count() - 1);
        assert_eq!(stats.dropped_edges, g.edge_count());
        assert!(dot.contains("// truncated:"), "DOT carries the comment");
        // The comment is inside the graph body (before the closing brace),
        // so the file is still valid DOT.
        let brace = dot.rfind('}').unwrap();
        assert!(dot.find("// truncated:").unwrap() < brace);
    }

    #[test]
    fn quotes_in_labels_are_escaped() {
        let g = graph();
        let dot = to_dot(&g, &DotOptions::default(), |_| "say \"hi\"".into());
        assert!(!dot.contains("\"say \"hi\"\""));
        assert!(dot.contains("say 'hi'"));
    }
}
