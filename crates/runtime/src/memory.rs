//! Shared anonymous register arrays and per-thread views.

use std::fmt;
use std::sync::Arc;

use anonreg_model::rng::Rng64;
use anonreg_model::View;

use crate::Register;

/// A shared array of `m` registers with **no agreed names**: threads access
/// it only through [`MemoryView`]s, each of which renumbers the registers
/// through its own permutation.
///
/// `AnonymousMemory` is cheaply cloneable (it is an `Arc` around the
/// register array); all clones refer to the same physical registers.
pub struct AnonymousMemory<R> {
    registers: Arc<Vec<R>>,
}

impl<R> Clone for AnonymousMemory<R> {
    fn clone(&self) -> Self {
        AnonymousMemory {
            registers: Arc::clone(&self.registers),
        }
    }
}

impl<R> AnonymousMemory<R> {
    /// Allocates `m` registers, each holding `V::default()` — the paper's
    /// "registers which are initially in a known state".
    ///
    /// # Panics
    ///
    /// Panics if `m == 0`.
    #[must_use]
    pub fn new<V: Default>(m: usize) -> Self
    where
        R: Register<V>,
    {
        assert!(m > 0, "anonymous memory needs at least one register");
        AnonymousMemory {
            registers: Arc::new((0..m).map(|_| R::new_register(V::default())).collect()),
        }
    }

    /// Wraps pre-built registers — the entry point for register types
    /// whose construction needs shared context (e.g. the sanitizer's
    /// registers, which must attach to one checking context so
    /// happens-before edges compose across registers).
    ///
    /// # Panics
    ///
    /// Panics if `registers` is empty.
    #[must_use]
    pub fn from_registers(registers: Vec<R>) -> Self {
        assert!(
            !registers.is_empty(),
            "anonymous memory needs at least one register"
        );
        AnonymousMemory {
            registers: Arc::new(registers),
        }
    }

    /// The number of registers.
    #[must_use]
    pub fn len(&self) -> usize {
        self.registers.len()
    }

    /// `true` if the array is empty (never, for constructed memories).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.registers.is_empty()
    }

    /// A view with an explicit permutation (mainly for tests and
    /// experiments that need controlled anonymity).
    ///
    /// # Panics
    ///
    /// Panics if the view's size differs from the register count.
    #[must_use]
    pub fn view(&self, view: View) -> MemoryView<R> {
        assert_eq!(
            view.len(),
            self.registers.len(),
            "view size must match the register count"
        );
        MemoryView {
            memory: self.clone(),
            view,
        }
    }

    /// A view with a **fresh uniformly random permutation** — the honest
    /// default: no thread may assume its numbering agrees with anyone
    /// else's.
    #[must_use]
    pub fn random_view(&self, rng: &mut Rng64) -> MemoryView<R> {
        let perm = rng.permutation(self.registers.len());
        self.view(View::from_perm(perm).expect("a shuffled range is a permutation"))
    }
}

impl<R> fmt::Debug for AnonymousMemory<R> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("AnonymousMemory")
            .field("registers", &self.registers.len())
            .finish()
    }
}

/// One thread's handle onto an [`AnonymousMemory`]: all accesses go through
/// the thread's private register numbering.
pub struct MemoryView<R> {
    memory: AnonymousMemory<R>,
    view: View,
}

impl<R> MemoryView<R> {
    /// Atomically reads local register `local`.
    ///
    /// # Panics
    ///
    /// Panics if `local` is out of range.
    #[must_use]
    pub fn read<V>(&self, local: usize) -> V
    where
        R: Register<V>,
    {
        self.memory.registers[self.view.physical(local)].read()
    }

    /// Atomically writes local register `local`.
    ///
    /// # Panics
    ///
    /// Panics if `local` is out of range.
    pub fn write<V>(&self, local: usize, value: V)
    where
        R: Register<V>,
    {
        self.memory.registers[self.view.physical(local)].write(value);
    }

    /// Hint-reads local register `local` — see [`Register::peek`]: may be
    /// stale, establishes no happens-before edge, and must only be used
    /// for change-detection (certificate `ORD-RT-PEEK-001`).
    ///
    /// # Panics
    ///
    /// Panics if `local` is out of range.
    #[must_use]
    pub fn peek<V>(&self, local: usize) -> V
    where
        R: Register<V>,
    {
        self.memory.registers[self.view.physical(local)].peek()
    }

    /// The permutation this view applies.
    #[must_use]
    pub fn permutation(&self) -> &View {
        &self.view
    }

    /// The underlying shared memory.
    #[must_use]
    pub fn memory(&self) -> &AnonymousMemory<R> {
        &self.memory
    }
}

impl<R> fmt::Debug for MemoryView<R> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("MemoryView")
            .field("view", &self.view)
            .field("registers", &self.memory.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::PackedAtomicRegister;

    type Mem = AnonymousMemory<PackedAtomicRegister<u64>>;

    #[test]
    fn views_share_physical_memory() {
        let mem: Mem = AnonymousMemory::new(4);
        let a = mem.view(View::identity(4));
        let b = mem.view(View::rotated(4, 1));
        a.write(0, 9u64);
        // b's local 3 is physical 0.
        assert_eq!(b.read::<u64>(3), 9);
    }

    #[test]
    fn random_views_are_permutations() {
        let mem: Mem = AnonymousMemory::new(8);
        let mut rng = Rng64::seed_from_u64(1);
        for _ in 0..10 {
            let v = mem.random_view(&mut rng);
            let mut seen = [false; 8];
            for local in 0..8 {
                let phys = v.permutation().physical(local);
                assert!(!seen[phys]);
                seen[phys] = true;
            }
        }
    }

    #[test]
    #[should_panic(expected = "at least one register")]
    fn zero_registers_panics() {
        let _: Mem = AnonymousMemory::new(0);
    }

    #[test]
    #[should_panic(expected = "view size")]
    fn mismatched_view_panics() {
        let mem: Mem = AnonymousMemory::new(4);
        let _ = mem.view(View::identity(3));
    }

    #[test]
    fn from_registers_and_peek() {
        use crate::Register;
        let regs: Vec<PackedAtomicRegister<u64>> =
            (0..3).map(|i| Register::new_register(i * 10)).collect();
        let mem = AnonymousMemory::from_registers(regs);
        assert_eq!(mem.len(), 3);
        let v = mem.view(View::rotated(3, 1));
        assert_eq!(v.read::<u64>(0), 10);
        assert_eq!(v.peek::<u64>(0), 10);
        v.write(0, 77u64);
        assert_eq!(v.peek::<u64>(0), 77);
    }

    #[test]
    #[should_panic(expected = "at least one register")]
    fn from_no_registers_panics() {
        let _: Mem = AnonymousMemory::from_registers(vec![]);
    }

    #[test]
    fn clones_alias() {
        let mem: Mem = AnonymousMemory::new(2);
        let other = mem.clone();
        mem.view(View::identity(2)).write(1, 5u64);
        assert_eq!(other.view(View::identity(2)).read::<u64>(1), 5);
        assert_eq!(mem.len(), 2);
        assert!(!mem.is_empty());
    }
}
