//! E1 — the mutex parity table (Theorem 3.1).
//!
//! For each register count `m`, exhaustively model-check the Figure 1
//! algorithm for two processes under every rotation view (and, for even
//! `m`, specifically the ring adversary's spacing): report state-space
//! size, whether mutual exclusion held in every reachable state, and
//! whether a fair livelock exists. The paper predicts SAFE+LIVE exactly
//! for odd `m ≥ 3`, livelock for even `m`, and a safety violation for
//! `m = 1` (Theorem 3.1 requires `m ≥ 2`).

use anonreg::mutex::{AnonMutex, MutexEvent, Section};
use anonreg::{Pid, View};
use anonreg_sim::prelude::*;
use anonreg_sim::Simulation;

use crate::benchjson::{flag, BenchMetric};
use crate::table::Table;

/// One row of the parity table.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Row {
    /// Register count.
    pub m: usize,
    /// Rotation views checked (exhaustive per view).
    pub views_checked: usize,
    /// Largest reachable state count among the checked views.
    pub max_states: usize,
    /// Mutual exclusion held in every reachable state of every view.
    pub safe: bool,
    /// No fair livelock exists in any checked view.
    pub live: bool,
    /// The paper's prediction for this `m`.
    pub expected: &'static str,
}

impl Row {
    /// Does the measured outcome match Theorem 3.1's prediction?
    #[must_use]
    pub fn matches_paper(&self) -> bool {
        match self.expected {
            "safe+live" => self.safe && self.live,
            "livelock" => self.safe && !self.live,
            "unsafe" => !self.safe,
            _ => false,
        }
    }
}

fn expected_for(m: usize) -> &'static str {
    if m == 1 {
        // m = 1 is excluded by the theorem's m ≥ 2; the covering run of
        // Theorem 6.2 shows it is actually unsafe even for two processes.
        "unsafe"
    } else if m % 2 == 1 {
        "safe+live"
    } else {
        "livelock"
    }
}

/// Runs the parity experiment for `m` in `1..=max_m`.
///
/// For `m ≤ 5` every rotation of the second process's view is checked; for
/// larger `m` (state spaces in the millions) only the ring-adversary
/// spacing `⌊m/2⌋` is checked, which is where the theorem's construction
/// lives.
#[must_use]
pub fn rows(max_m: usize) -> Vec<Row> {
    (1..=max_m).map(row_for).collect()
}

fn row_for(m: usize) -> Row {
    let shifts: Vec<usize> = if m <= 5 {
        (0..m).collect()
    } else {
        vec![m / 2]
    };
    let mut safe = true;
    let mut live = true;
    let mut max_states = 0;
    for &shift in &shifts {
        let sim = Simulation::builder()
            .process(
                AnonMutex::new(Pid::new(1).unwrap(), m).expect("m >= 1"),
                View::identity(m),
            )
            .process(
                AnonMutex::new(Pid::new(2).unwrap(), m).expect("m >= 1"),
                View::rotated(m, shift),
            )
            .build()
            .expect("uniform configuration");
        let graph = Explorer::new(sim)
            .max_states(4_000_000)
            .crashes(false)
            .run()
            .expect("two-process mutex state spaces fit in the limit");
        max_states = max_states.max(graph.state_count());
        let both_in_cs = graph.find_state(|s| {
            s.machines()
                .filter(|mach| mach.section() == Section::Critical)
                .count()
                >= 2
        });
        if both_in_cs.is_some() {
            safe = false;
        }
        let livelock = graph.find_fair_livelock(
            |mach| mach.section() == Section::Entry,
            |event| *event == MutexEvent::Enter,
        );
        if livelock.is_some() {
            live = false;
        }
    }
    Row {
        m,
        views_checked: shifts.len(),
        max_states,
        safe,
        live,
        expected: expected_for(m),
    }
}

/// Renders the table for the given rows.
#[must_use]
pub fn render(rows: &[Row]) -> String {
    let mut t = Table::new(vec![
        "m",
        "views",
        "max states",
        "mutual excl",
        "deadlock-free",
        "paper says",
        "match",
    ]);
    for r in rows {
        t.row(vec![
            r.m.to_string(),
            r.views_checked.to_string(),
            r.max_states.to_string(),
            if r.safe { "HOLDS" } else { "VIOLATED" }.into(),
            if r.live { "HOLDS" } else { "LIVELOCK" }.into(),
            r.expected.into(),
            if r.matches_paper() { "yes" } else { "NO" }.into(),
        ]);
    }
    t.render()
}

/// Machine-readable metrics for the given rows (one set per `m`).
#[must_use]
pub fn metrics(rows: &[Row]) -> Vec<BenchMetric> {
    let mut out = Vec::new();
    for r in rows {
        let m = r.m;
        out.push(BenchMetric::new(
            "E1",
            "mutex",
            format!("m{m}_views"),
            r.views_checked as f64,
            "views",
        ));
        out.push(BenchMetric::new(
            "E1",
            "mutex",
            format!("m{m}_max_states"),
            r.max_states as f64,
            "states",
        ));
        out.push(BenchMetric::new(
            "E1",
            "mutex",
            format!("m{m}_safe"),
            flag(r.safe),
            "bool",
        ));
        out.push(BenchMetric::new(
            "E1",
            "mutex",
            format!("m{m}_live"),
            flag(r.live),
            "bool",
        ));
        out.push(BenchMetric::new(
            "E1",
            "mutex",
            format!("m{m}_matches_paper"),
            flag(r.matches_paper()),
            "bool",
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_ms_match_theorem_3_1() {
        for row in rows(4) {
            assert!(row.matches_paper(), "m={}: {row:?}", row.m);
        }
    }

    #[test]
    fn m1_is_unsafe() {
        let row = row_for(1);
        assert!(!row.safe);
        assert_eq!(row.expected, "unsafe");
        assert!(row.matches_paper());
    }

    #[test]
    fn render_contains_all_rows() {
        let rs = rows(3);
        let s = render(&rs);
        assert!(s.contains("HOLDS"));
        assert_eq!(s.lines().count(), 2 + rs.len());
    }
}
