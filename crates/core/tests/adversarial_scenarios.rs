//! Hand-picked adversarial scenarios, written in the schedule DSL
//! (`anonreg_sim::script`): each test is one of the paper's informal
//! stories, told as a one-line schedule and checked against the real
//! implementations.

use anonreg::consensus::AnonConsensus;
use anonreg::mutex::{AnonMutex, MutexEvent, Section};
use anonreg::renaming::AnonRenaming;
use anonreg::spec::{check_consensus, check_mutual_exclusion, check_renaming};
use anonreg::{Pid, View};
use anonreg_sim::{script, Simulation};

fn pid(n: u64) -> Pid {
    Pid::new(n).unwrap()
}

#[test]
fn mutex_contention_exactly_one_loser() {
    // Both processes scan-and-claim in lock step; with m = 3 one of them
    // ends up below the majority, gives up and waits. 20 alternating steps
    // are plenty for both to finish their first scan+view.
    let mut sim = Simulation::builder()
        .process(AnonMutex::new(pid(1), 3).unwrap(), View::identity(3))
        .process(AnonMutex::new(pid(2), 3).unwrap(), View::rotated(3, 1))
        .build()
        .unwrap();
    script::run(&mut sim, "0 1 0 1 0 1 0 1 0 1 0 1 0 1 0 1 0 1 0 1").unwrap();
    // Let each run a bounded burst: the winner must get in.
    script::run(&mut sim, "0*40 1*40 0*40").unwrap();
    let stats = check_mutual_exclusion(sim.trace()).unwrap();
    assert!(stats.total_entries() >= 1, "someone entered");
}

#[test]
fn mutex_winner_releases_loser_proceeds() {
    // Winner enters and exits; the waiting loser must then get in. Solo-run
    // tokens make the story precise: p0 alone to its critical section, two
    // more sections worth of steps, then p1 alone.
    let mut sim = Simulation::builder()
        .process(
            AnonMutex::new(pid(1), 3).unwrap().with_cycles(1),
            View::identity(3),
        )
        .process(
            AnonMutex::new(pid(2), 3).unwrap().with_cycles(1),
            View::rotated(3, 2),
        )
        .build()
        .unwrap();
    // p1 claims nothing yet; p0 runs its entire cycle alone, then p1 runs
    // its entire cycle alone.
    script::run(&mut sim, "0> 1>").unwrap();
    let stats = check_mutual_exclusion(sim.trace()).unwrap();
    assert_eq!(stats.total_entries(), 2);
    assert_eq!(stats.entries[&0], 1);
    assert_eq!(stats.entries[&1], 1);
}

#[test]
fn consensus_interleaved_halves_still_agree() {
    // Two proposers with different inputs, interleaved mid-scan in every
    // combination of short bursts, then run to completion.
    for burst in 1..=6 {
        let mut sim = Simulation::builder()
            .process(
                AnonConsensus::new(pid(1), 2, 10).unwrap(),
                View::identity(3),
            )
            .process(
                AnonConsensus::new(pid(2), 2, 20).unwrap(),
                View::rotated(3, 1),
            )
            .build()
            .unwrap();
        let script_text = format!("0*{burst} 1*{burst} 0*{burst} 1*{burst} 0> 1>");
        script::run(&mut sim, &script_text).unwrap();
        assert!(sim.all_halted());
        let stats = check_consensus(sim.trace(), &[10, 20]).unwrap();
        assert_eq!(stats.deciders.len(), 2, "burst {burst}");
    }
}

#[test]
fn consensus_block_write_cannot_fool_full_provisioning() {
    // The Theorem 6.3 attack shape against a *correctly* provisioned
    // instance (n = 2, 3 registers): cover one register, let the victim
    // decide, release — the survivor must still adopt the victim's value,
    // because one overwrite cannot erase a 3-register unanimity.
    let mut sim = Simulation::builder()
        .process(
            AnonConsensus::new(pid(1), 2, 10).unwrap(),
            View::identity(3),
        )
        .process(
            AnonConsensus::new(pid(2), 2, 20).unwrap(),
            View::rotated(3, 2),
        )
        .build()
        .unwrap();
    script::run(&mut sim, "1! 0> 1+ 1>").unwrap();
    let stats = check_consensus(sim.trace(), &[10, 20]).unwrap();
    assert_eq!(
        stats.decision,
        Some(10),
        "the coverer adopts the victim's value"
    );
    assert_eq!(stats.deciders.len(), 2);
}

#[test]
fn renaming_crash_after_winning_does_not_orphan_the_name() {
    // Process 0 wins round 1 and crashes immediately after acquiring its
    // name; the survivor must settle for name 2 — the history field keeps
    // round 1 taken even though its winner is gone.
    let mut sim = Simulation::builder()
        .process(AnonRenaming::new(pid(1), 2).unwrap(), View::identity(3))
        .process(AnonRenaming::new(pid(2), 2).unwrap(), View::rotated(3, 1))
        .build()
        .unwrap();
    script::run(&mut sim, "0> 0# 1>").unwrap();
    let stats = check_renaming(sim.trace(), 2).unwrap();
    let mut names: Vec<u32> = stats.names.iter().map(|&(_, n)| n).collect();
    names.sort_unstable();
    assert_eq!(names, vec![1, 2]);
}

#[test]
fn mutex_m1_two_process_violation_as_a_one_liner() {
    // The covering run that makes m = 1 unsafe (E1's first row), written
    // as a schedule: p1 reads the single register as 0 and is poised to
    // claim it; p0 enters; p1's write lands and p1 sails in too.
    let mut sim = Simulation::builder()
        .process(AnonMutex::new(pid(1), 1).unwrap(), View::identity(1))
        .process(AnonMutex::new(pid(2), 1).unwrap(), View::identity(1))
        .build()
        .unwrap();
    // p1 covers; p0 runs to its critical section (3 ops + Enter event =
    // 4 scheduler grants); p1 releases its write, scans (1 read) and
    // enters (1 event step).
    script::run(&mut sim, "1! 0*4 1+ 1*2").unwrap();
    assert_eq!(sim.machine(0).section(), Section::Critical);
    assert_eq!(sim.machine(1).section(), Section::Critical);
    let violation = check_mutual_exclusion(sim.trace()).unwrap_err();
    assert!(matches!(
        violation,
        anonreg::spec::SpecViolation::MutualExclusion { .. }
    ));
    // Both Enter events are on the record.
    let enters = sim
        .trace()
        .events()
        .filter(|(_, _, e)| **e == MutexEvent::Enter)
        .count();
    assert_eq!(enters, 2);
}
