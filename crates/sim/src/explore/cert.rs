//! Proof-carrying exploration: certificate emission and the cached-run
//! driver.
//!
//! [`Explorer::certify`](super::Explorer::certify) makes a finished run
//! durable — the reachable set, the edge multiset and the named verdicts
//! land in an `anonreg-cache` certificate keyed by the problem's
//! [`structural hash`](super::Explorer::structural_hash). The glue here
//! turns that into an incremental-verification workflow:
//!
//! * [`write_graph`] serializes a [`StateGraph`] into the certificate
//!   format (canonical-code sort gives every state a stable index, so
//!   certificates from the race-ordered parallel engine are
//!   byte-comparable to sequential ones).
//! * [`run_cached`] is the warm/cold driver: replay the stored
//!   certificate when a valid one exists, otherwise explore cold,
//!   certify, and replay the fresh certificate once as an emission
//!   self-check. The `ANONREG_NO_CACHE` escape hatch
//!   ([`anonreg_cache::cache_disabled`]) forces cold runs while still
//!   refreshing the store.

use std::hash::Hash;
use std::time::{Duration, Instant};

use anonreg_cache::{CacheStore, CertError, CertWriter};
use anonreg_model::fingerprint::Fp128;
use anonreg_model::Machine;
use anonreg_obs::Probe;

use crate::canon::StateEncoder;

use super::{ExploreError, Explorer, StateGraph};

/// A named verdict predicate evaluated on the finished graph.
pub(crate) type VerdictFn<M> = Box<dyn Fn(&StateGraph<M>) -> bool>;

/// What [`Explorer::replay_certificate`](super::Explorer::replay_certificate)
/// re-validated, plus how long the streaming pass took.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ReplayReport {
    /// Distinct states in the certified reachable set.
    pub states: u64,
    /// Transitions in the certified edge multiset.
    pub edges: u64,
    /// The named verdicts pinned by the certificate, in recorded order.
    pub verdicts: Vec<(String, bool)>,
    /// Wall-clock duration of the replay pass.
    pub elapsed: Duration,
}

/// The result of [`run_cached`]: either a warm replay or a cold
/// explore-and-certify, normalized to the same shape.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CachedOutcome {
    /// `true` when a stored certificate was replayed instead of
    /// exploring.
    pub warm: bool,
    /// Distinct states in the (certified) reachable set.
    pub states: u64,
    /// Transitions in the (certified) edge multiset.
    pub edges: u64,
    /// The named verdicts, in registration order.
    pub verdicts: Vec<(String, bool)>,
    /// Wall-clock duration of the replay (warm) or the exploration
    /// including certificate emission (cold).
    pub elapsed: Duration,
}

/// Serializes `graph` into a certificate at `path`.
///
/// States are re-encoded with the run's own encoder (so symmetry-reduced
/// graphs record orbit-representative codes) and sorted; each state's
/// rank in that order is its canonical index, making the output
/// independent of the engine's discovery order.
pub(crate) fn write_graph<M>(
    graph: &StateGraph<M>,
    encoder: &StateEncoder<M>,
    structural: Fp128,
    verdicts: &[(String, VerdictFn<M>)],
    path: &std::path::Path,
) -> Result<(), CertError>
where
    M: Machine + Eq + Hash,
{
    let codes: Vec<Box<[u8]>> = graph.states.iter().map(|s| encoder.encode(s).0).collect();
    let mut order: Vec<usize> = (0..codes.len()).collect();
    order.sort_unstable_by(|&a, &b| codes[a].cmp(&codes[b]));
    let mut rank = vec![0u64; codes.len()];
    for (r, &id) in order.iter().enumerate() {
        rank[id] = r as u64;
    }

    let mut writer = CertWriter::create(path, structural)?;
    for &id in &order {
        writer.push_code(&codes[id])?;
    }

    let mut edges: Vec<(u64, u64, u64, bool)> = Vec::with_capacity(graph.edge_count());
    for (id, _) in graph.states() {
        for edge in graph.edges(id) {
            edges.push((rank[id], rank[edge.target], edge.proc as u64, edge.crash));
        }
    }
    edges.sort_unstable();
    for (src, tgt, proc, crash) in edges {
        writer.push_edge(src, tgt, proc, crash)?;
    }

    let evaluated: Vec<(String, bool)> = verdicts
        .iter()
        .map(|(name, pred)| (name.clone(), pred(graph)))
        .collect();
    writer.finish(&evaluated)
}

/// The warm/cold driver for proof-carrying exploration.
///
/// `make` builds the explorer — configuration, symmetry mode and
/// [`verdict`](super::Explorer::verdict)s included — and may be called
/// up to three times (key derivation, the run itself, the replay).
/// The flow:
///
/// 1. Key the problem by [`structural_hash`](super::Explorer::structural_hash)
///    and look it up in `store`.
/// 2. **Warm**: a stored certificate that replays cleanly answers
///    without any exploration. A certificate that fails to replay —
///    stale key, damaged file — is deleted and the run falls through to
///    cold, so corruption degrades to a recomputation, never an error.
/// 3. **Cold**: explore with certificate emission, then replay the
///    fresh certificate once as an emission self-check (the returned
///    counts and verdicts always come from a *verified* certificate,
///    whichever path ran). `elapsed` covers the exploration and
///    emission, not the self-check.
///
/// With `ANONREG_NO_CACHE` set, step 2 is skipped but step 3 still
/// refreshes the store.
///
/// # Errors
///
/// Exploration errors pass through; a fresh certificate that fails its
/// own self-check surfaces as [`ExploreError::Certificate`].
pub fn run_cached<'p, M, P, F>(store: &CacheStore, make: F) -> Result<CachedOutcome, ExploreError>
where
    M: Machine + Eq + Hash,
    P: Probe + 'p,
    F: Fn() -> Explorer<'p, M, P>,
{
    let key = make().structural_hash();
    let path = store.path(key);
    if !anonreg_cache::cache_disabled() && path.exists() {
        match make().replay_certificate(&path) {
            Ok(report) => {
                return Ok(CachedOutcome {
                    warm: true,
                    states: report.states,
                    edges: report.edges,
                    verdicts: report.verdicts,
                    elapsed: report.elapsed,
                });
            }
            Err(_) => {
                // Stale or damaged: drop it and recompute.
                let _ = std::fs::remove_file(&path);
            }
        }
    }
    let start = Instant::now();
    make().certify(&path).run()?;
    let elapsed = start.elapsed();
    let report = make()
        .replay_certificate(&path)
        .map_err(|e| ExploreError::Certificate {
            message: format!("fresh certificate failed its self-check: {e}"),
        })?;
    Ok(CachedOutcome {
        warm: false,
        states: report.states,
        edges: report.edges,
        verdicts: report.verdicts,
        elapsed,
    })
}
