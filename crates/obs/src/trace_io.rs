//! Lossless JSONL export/import for [`Trace`]s.
//!
//! A serialized trace is a shareable artifact: a `trace_meta` header line
//! followed by one `op` line per recorded step, all schema-v1 (see
//! [`crate::schema`]). Because machines are deterministic, the schedule
//! recovered from a trace ([`schedule_of`]) replays the whole run — export
//! a counterexample on one machine, `check obs --replay` it on another.

use anonreg_model::trace::{Trace, TraceOp};
use anonreg_model::Pid;

use crate::json::{Json, JsonDecode, JsonEncode, JsonError};
use crate::schema::SCHEMA_VERSION;

/// Summary facts about a serialized trace, from its header line.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TraceMeta {
    /// Number of process slots (max `proc` + 1).
    pub procs: u64,
    /// Number of physical registers touched (max `physical` + 1; 0 if the
    /// run never touched memory).
    pub registers: u64,
    /// Number of recorded steps.
    pub ops: u64,
}

fn line(fields: Vec<(&str, Json)>) -> Json {
    let mut all = vec![("v".to_string(), Json::U64(SCHEMA_VERSION))];
    all.extend(fields.into_iter().map(|(k, v)| (k.to_string(), v)));
    Json::Obj(all)
}

/// Computes the header facts for a trace.
#[must_use]
pub fn trace_meta<V, E>(trace: &Trace<V, E>) -> TraceMeta {
    let mut procs = 0u64;
    let mut registers = 0u64;
    for entry in trace {
        procs = procs.max(entry.proc as u64 + 1);
        if let TraceOp::Read { physical, .. } | TraceOp::Write { physical, .. } = entry.op {
            registers = registers.max(physical as u64 + 1);
        }
    }
    TraceMeta {
        procs,
        registers,
        ops: trace.len() as u64,
    }
}

/// Serializes a trace to schema-v1 JSONL: one `trace_meta` header line,
/// then one `op` line per step, each newline-terminated.
#[must_use]
pub fn trace_to_jsonl<V: JsonEncode, E: JsonEncode>(trace: &Trace<V, E>) -> String {
    let meta = trace_meta(trace);
    let mut out = String::new();
    out.push_str(
        &line(vec![
            ("t", Json::Str("trace_meta".into())),
            ("procs", Json::U64(meta.procs)),
            ("registers", Json::U64(meta.registers)),
            ("ops", Json::U64(meta.ops)),
        ])
        .render(),
    );
    out.push('\n');
    for entry in trace {
        let mut fields = vec![
            ("t", Json::Str("op".into())),
            ("proc", Json::U64(entry.proc as u64)),
            ("pid", Json::U64(entry.pid.get())),
        ];
        match &entry.op {
            TraceOp::Read {
                local,
                physical,
                value,
            } => {
                fields.push(("kind", Json::Str("read".into())));
                fields.push(("local", Json::U64(*local as u64)));
                fields.push(("physical", Json::U64(*physical as u64)));
                fields.push(("value", value.to_json()));
            }
            TraceOp::Write {
                local,
                physical,
                value,
            } => {
                fields.push(("kind", Json::Str("write".into())));
                fields.push(("local", Json::U64(*local as u64)));
                fields.push(("physical", Json::U64(*physical as u64)));
                fields.push(("value", value.to_json()));
            }
            TraceOp::Event(e) => {
                fields.push(("kind", Json::Str("event".into())));
                fields.push(("payload", e.to_json()));
            }
            TraceOp::Halt => {
                fields.push(("kind", Json::Str("halt".into())));
            }
        }
        out.push_str(&line(fields).render());
        out.push('\n');
    }
    out
}

fn field_err(reason: &'static str) -> JsonError {
    JsonError { pos: 0, reason }
}

fn get_u64(obj: &Json, key: &str, reason: &'static str) -> Result<u64, JsonError> {
    obj.get(key).and_then(Json::as_u64).ok_or(field_err(reason))
}

fn get_usize(obj: &Json, key: &str, reason: &'static str) -> Result<usize, JsonError> {
    usize::try_from(get_u64(obj, key, reason)?).map_err(|_| field_err(reason))
}

/// Deserializes a trace previously written by [`trace_to_jsonl`].
///
/// The header is checked against the op lines that follow (declared `ops`
/// must match), so a truncated file is rejected rather than silently
/// yielding a shorter run.
///
/// # Errors
///
/// Returns a [`JsonError`] on malformed JSON, a missing/mismatched
/// header, an unknown op kind, or undecodable values.
pub fn trace_from_jsonl<V: JsonDecode, E: JsonDecode>(
    text: &str,
) -> Result<Trace<V, E>, JsonError> {
    let mut lines = text.lines().filter(|l| !l.trim().is_empty());
    let header = lines.next().ok_or(field_err("empty document"))?;
    let header = Json::parse(header)?;
    if header.get("t").and_then(Json::as_str) != Some("trace_meta") {
        return Err(field_err("first line is not a trace_meta header"));
    }
    if get_u64(&header, "v", "missing schema version")? != SCHEMA_VERSION {
        return Err(field_err("unsupported schema version"));
    }
    let declared_ops = get_u64(&header, "ops", "missing `ops` in header")?;
    let mut trace = Trace::new();
    for raw in lines {
        let obj = Json::parse(raw)?;
        if obj.get("t").and_then(Json::as_str) != Some("op") {
            return Err(field_err("non-op line after header"));
        }
        let proc = get_usize(&obj, "proc", "missing or invalid `proc`")?;
        let pid = Pid::new(get_u64(&obj, "pid", "missing `pid`")?)
            .ok_or(field_err("pid must be nonzero"))?;
        let kind = obj
            .get("kind")
            .and_then(Json::as_str)
            .ok_or(field_err("missing `kind`"))?;
        let op = match kind {
            "read" | "write" => {
                let local = get_usize(&obj, "local", "missing or invalid `local`")?;
                let physical = get_usize(&obj, "physical", "missing or invalid `physical`")?;
                let value = V::from_json(obj.get("value").ok_or(field_err("missing `value`"))?)?;
                if kind == "read" {
                    TraceOp::Read {
                        local,
                        physical,
                        value,
                    }
                } else {
                    TraceOp::Write {
                        local,
                        physical,
                        value,
                    }
                }
            }
            "event" => TraceOp::Event(E::from_json(
                obj.get("payload").ok_or(field_err("missing `payload`"))?,
            )?),
            "halt" => TraceOp::Halt,
            _ => return Err(field_err("unknown op kind")),
        };
        trace.record(proc, pid, op);
    }
    if trace.len() as u64 != declared_ops {
        return Err(field_err(
            "op count does not match header (truncated file?)",
        ));
    }
    Ok(trace)
}

/// Recovers the replay schedule from a trace: the sequence of process
/// slots, one per recorded step. Feeding this back to the simulator
/// reproduces the run exactly (machines are deterministic).
#[must_use]
pub fn schedule_of<V, E>(trace: &Trace<V, E>) -> Vec<usize> {
    trace.iter().map(|entry| entry.proc).collect()
}

/// Per-physical-register activity derived from a trace — the input to the
/// contention heatmap.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct RegisterStats {
    /// `reads[r]` counts reads of physical register `r`.
    pub reads: Vec<u64>,
    /// `writes[r]` counts writes of physical register `r`.
    pub writes: Vec<u64>,
    /// `contention[r]` counts contended reads of `r`: reads that observed
    /// a value different from the last value the *same process* read from
    /// or wrote to `r` — evidence some other process wrote in between,
    /// which is exactly what the covering arguments (§6) build on.
    pub contention: Vec<u64>,
}

/// Computes [`RegisterStats`] for a trace.
#[must_use]
pub fn register_stats<V: Clone + PartialEq, E>(trace: &Trace<V, E>) -> RegisterStats {
    let meta = trace_meta(trace);
    let registers = meta.registers as usize;
    let procs = meta.procs as usize;
    let mut stats = RegisterStats {
        reads: vec![0; registers],
        writes: vec![0; registers],
        contention: vec![0; registers],
    };
    // last[proc][reg]: the last value this process read from / wrote to reg.
    let mut last: Vec<Vec<Option<V>>> = vec![vec![None; registers]; procs];
    for entry in trace {
        match &entry.op {
            TraceOp::Read {
                physical, value, ..
            } => {
                stats.reads[*physical] += 1;
                if let Some(prev) = &last[entry.proc][*physical] {
                    if prev != value {
                        stats.contention[*physical] += 1;
                    }
                }
                last[entry.proc][*physical] = Some(value.clone());
            }
            TraceOp::Write {
                physical, value, ..
            } => {
                stats.writes[*physical] += 1;
                last[entry.proc][*physical] = Some(value.clone());
            }
            TraceOp::Event(_) | TraceOp::Halt => {}
        }
    }
    stats
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pid(n: u64) -> Pid {
        Pid::new(n).unwrap()
    }

    fn sample() -> Trace<u64, u32> {
        let mut t = Trace::new();
        t.record(
            0,
            pid(10),
            TraceOp::Write {
                local: 0,
                physical: 2,
                value: 7,
            },
        );
        t.record(
            1,
            pid(20),
            TraceOp::Read {
                local: 1,
                physical: 2,
                value: 7,
            },
        );
        t.record(0, pid(10), TraceOp::Event(99));
        t.record(1, pid(20), TraceOp::Halt);
        t
    }

    #[test]
    fn round_trips_losslessly() {
        let t = sample();
        let jsonl = trace_to_jsonl(&t);
        let back: Trace<u64, u32> = trace_from_jsonl(&jsonl).unwrap();
        assert_eq!(back, t);
    }

    #[test]
    fn meta_counts_procs_registers_ops() {
        let meta = trace_meta(&sample());
        assert_eq!(
            meta,
            TraceMeta {
                procs: 2,
                registers: 3,
                ops: 4
            }
        );
    }

    #[test]
    fn schedule_is_proc_sequence() {
        assert_eq!(schedule_of(&sample()), vec![0, 1, 0, 1]);
    }

    #[test]
    fn rejects_truncation() {
        let jsonl = trace_to_jsonl(&sample());
        let truncated: String = jsonl.lines().take(3).collect::<Vec<_>>().join("\n");
        let err = trace_from_jsonl::<u64, u32>(&truncated).unwrap_err();
        assert!(err.reason.contains("truncated"));
    }

    #[test]
    fn rejects_missing_header() {
        let jsonl = trace_to_jsonl(&sample());
        let body: String = jsonl.lines().skip(1).collect::<Vec<_>>().join("\n");
        assert!(trace_from_jsonl::<u64, u32>(&body).is_err());
        assert!(trace_from_jsonl::<u64, u32>("").is_err());
    }

    #[test]
    fn register_stats_count_contention() {
        let mut t: Trace<u64, u32> = Trace::new();
        // p0 writes 5 to reg 0; p1 reads 5 (first sight, no contention),
        // p0 writes 9, p1 reads 9 (differs from its last view: contended).
        t.record(
            0,
            pid(1),
            TraceOp::Write {
                local: 0,
                physical: 0,
                value: 5,
            },
        );
        t.record(
            1,
            pid(2),
            TraceOp::Read {
                local: 0,
                physical: 0,
                value: 5,
            },
        );
        t.record(
            0,
            pid(1),
            TraceOp::Write {
                local: 0,
                physical: 0,
                value: 9,
            },
        );
        t.record(
            1,
            pid(2),
            TraceOp::Read {
                local: 0,
                physical: 0,
                value: 9,
            },
        );
        let stats = register_stats(&t);
        assert_eq!(stats.reads, vec![2]);
        assert_eq!(stats.writes, vec![2]);
        assert_eq!(stats.contention, vec![1]);
    }

    #[test]
    fn empty_trace_round_trips() {
        let t: Trace<u64, u32> = Trace::new();
        let back: Trace<u64, u32> = trace_from_jsonl(&trace_to_jsonl(&t)).unwrap();
        assert_eq!(back, t);
        assert!(register_stats(&t).reads.is_empty());
    }
}
