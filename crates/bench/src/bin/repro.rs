//! `repro` — regenerates every experiment table of the reproduction.
//!
//! ```text
//! cargo run --release -p anonreg-bench --bin repro            # everything
//! cargo run --release -p anonreg-bench --bin repro -- --quick # smaller sweeps
//! cargo run --release -p anonreg-bench --bin repro -- e1 e4   # selected experiments
//! ```

use std::env;
use std::time::Instant;

use anonreg_bench::{
    e10_solo_steps, e11_hybrid, e12_starvation, e13_ordered, e1_parity, e2_ring, e3_consensus,
    e4_consensus_space, e5_renaming, e6_renaming_space, e7_unknown_n, e8_election, e9_threads,
};

struct Config {
    quick: bool,
    selected: Vec<String>,
}

impl Config {
    fn wants(&self, id: &str) -> bool {
        self.selected.is_empty() || self.selected.iter().any(|s| s == id)
    }
}

fn main() {
    let mut config = Config {
        quick: false,
        selected: Vec::new(),
    };
    for arg in env::args().skip(1) {
        match arg.as_str() {
            "--quick" => config.quick = true,
            "--help" | "-h" => {
                println!(
                    "usage: repro [--quick] [e1 .. e13]\n\
                     Regenerates the experiment tables of the PODC'17\n\
                     'Coordination Without Prior Agreement' reproduction."
                );
                return;
            }
            other => config
                .selected
                .push(other.trim_start_matches("--").to_string()),
        }
    }

    let section = |id: &str, title: &str, body: &dyn Fn() -> String| {
        if !config.wants(id) {
            return;
        }
        let start = Instant::now();
        let rendered = body();
        println!("== {} — {title}", id.to_uppercase());
        println!("{rendered}");
        println!("({id} took {:?})\n", start.elapsed());
    };

    let q = config.quick;

    section(
        "e1",
        "mutex register parity (Theorem 3.1), exhaustive model checking",
        &|| e1_parity::render(&e1_parity::rows(if q { 4 } else { 6 })),
    );
    section("e2", "lock-step ring starvation (Theorem 3.4)", &|| {
        e2_ring::render(&e2_ring::rows(
            if q { 8 } else { 12 },
            4,
            if q { 300 } else { 2_000 },
        ))
    });
    section(
        "e3",
        "consensus agreement/validity sweeps (Theorems 4.1, 4.2)",
        &|| {
            e3_consensus::render(&e3_consensus::rows(
                if q { 4 } else { 6 },
                if q { 50 } else { 400 },
            ))
        },
    );
    section(
        "e4",
        "consensus space lower bound via covering (Theorem 6.3)",
        &|| e4_consensus_space::render(&e4_consensus_space::rows(if q { 5 } else { 8 })),
    );
    section(
        "e5",
        "renaming uniqueness + adaptivity (Theorems 5.1–5.3)",
        &|| {
            e5_renaming::render(&e5_renaming::rows(
                if q { 4 } else { 6 },
                if q { 30 } else { 200 },
            ))
        },
    );
    section(
        "e6",
        "renaming space lower bound via covering (Theorem 6.5)",
        &|| e6_renaming_space::render(&e6_renaming_space::rows(if q { 5 } else { 8 })),
    );
    section("e7", "unknown process count attacks (Theorem 6.2)", &|| {
        e7_unknown_n::render(&e7_unknown_n::rows(if q { 4 } else { 7 }))
    });
    section("e8", "election sweeps (§4 note)", &|| {
        e8_election::render(&e8_election::rows(
            if q { 4 } else { 6 },
            if q { 30 } else { 200 },
        ))
    });
    section(
        "e9",
        "real-thread throughput vs named baselines (§1 plasticity)",
        &|| {
            let (entries, reps) = if q { (2_000, 20) } else { (20_000, 200) };
            e9_threads::render(&e9_threads::rows(entries, reps, reps))
        },
    );
    section("e10", "solo step complexity vs proof bounds", &|| {
        e10_solo_steps::render(&e10_solo_steps::rows(if q { 6 } else { 10 }))
    });
    section(
        "e11",
        "hybrid model: m anonymous + 1 named register (§8)",
        &|| e11_hybrid::render(&e11_hybrid::rows(if q { 3 } else { 4 })),
    );
    section(
        "e12",
        "fair starvation across mutual exclusion algorithms (§8)",
        &|| e12_starvation::render(&e12_starvation::rows()),
    );
    section(
        "e13",
        "arbitrary-comparisons model: id order breaks ties (§2)",
        &|| e13_ordered::render(&e13_ordered::rows(if q { 3 } else { 4 })),
    );
}
