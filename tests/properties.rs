//! Property-based tests over the core invariants.
//!
//! Each property quantifies over the *adversary's* choices — register
//! permutations, schedules, process counts, identifiers — and asserts the
//! paper's guarantees survive all of them.
//!
//! Randomized with the workspace's seeded [`Rng64`] (fixed seeds, fully
//! replayable, no external dependencies).

use anonreg::consensus::AnonConsensus;
use anonreg::mutex::AnonMutex;
use anonreg::renaming::AnonRenaming;
use anonreg::spec::{check_consensus, check_mutual_exclusion, check_renaming};
use anonreg::{Pid, View};
use anonreg_model::rng::Rng64;
use anonreg_sim::{sched, Simulation};

const CASES: usize = 64;

fn pid(n: u64) -> Pid {
    Pid::new(n).unwrap()
}

/// A uniformly random permutation view of `0..m`.
fn perm(rng: &mut Rng64, m: usize) -> View {
    View::from_perm(rng.permutation(m)).expect("shuffled range is a permutation")
}

/// View algebra: inverse and composition behave like a permutation group.
#[test]
fn view_inverse_round_trips() {
    let mut rng = Rng64::seed_from_u64(0x71E);
    for _ in 0..CASES {
        let m = rng.gen_range_inclusive(1, 11);
        let view = perm(&mut rng, m);
        assert_eq!(view.compose(&view.inverse()), View::identity(m));
        assert_eq!(view.inverse().compose(&view), View::identity(m));
        assert_eq!(view.inverse().inverse(), view.clone());
        for local in 0..m {
            assert_eq!(view.local(view.physical(local)), local);
        }
    }
}

/// Figure 1 safety: under ANY pair of views and ANY seeded schedule, two
/// processes with an odd register count never overlap in the critical
/// section.
#[test]
fn mutex_safety_under_random_views_and_schedules() {
    let mut rng = Rng64::seed_from_u64(0x3AFE);
    for _ in 0..CASES {
        let m = [3, 5][rng.gen_index(2)];
        let view_a = perm(&mut rng, m);
        let view_b = perm(&mut rng, m);
        let seed = rng.next_u64();
        let mut sim = Simulation::builder()
            .process(AnonMutex::new(pid(1), m).unwrap(), view_a)
            .process(AnonMutex::new(pid(2), m).unwrap(), view_b)
            .build()
            .unwrap();
        sched::random(&mut sim, seed, 4_000);
        let stats = check_mutual_exclusion(sim.trace())
            .unwrap_or_else(|v| panic!("m={m} seed={seed}: {v}"));
        // Under a fair-ish random schedule someone usually gets in, but
        // safety is the property under test; entries may be 0 on adversarial
        // prefixes.
        let _ = stats;
    }
}

/// Figure 2 agreement + validity under random views, schedules, and inputs.
#[test]
fn consensus_agreement_under_random_everything() {
    let mut rng = Rng64::seed_from_u64(0xC0A6);
    for _ in 0..CASES {
        let n = rng.gen_range_inclusive(2, 4);
        let seed = rng.next_u64();
        let inputs: Vec<u64> = (0..n)
            .map(|_| rng.gen_range_inclusive(1, 99) as u64)
            .collect();
        let machines: Vec<AnonConsensus> = inputs
            .iter()
            .enumerate()
            .map(|(i, &input)| AnonConsensus::new(pid(50 + i as u64), n, input).unwrap())
            .collect();
        let m = 2 * n - 1;
        let views = anonreg_bench::workload::random_views(m, n, seed);
        let mut builder = Simulation::builder();
        for (machine, view) in machines.into_iter().zip(views) {
            builder = builder.process(machine, view);
        }
        let mut sim = builder.build().unwrap();
        sched::random_bursts(&mut sim, seed, 8 * n, 60_000 * n);
        check_consensus(sim.trace(), &inputs).unwrap_or_else(|v| panic!("n={n} seed={seed}: {v}"));
    }
}

/// Figure 3 uniqueness + adaptivity under random participation.
#[test]
fn renaming_adaptivity_under_random_everything() {
    let mut rng = Rng64::seed_from_u64(0x4E4A);
    for _ in 0..CASES {
        let n = rng.gen_range_inclusive(2, 4);
        let k = rng.gen_range_inclusive(1, 4).min(n);
        let seed = rng.next_u64();
        let machines: Vec<AnonRenaming> = (0..k)
            .map(|i| AnonRenaming::new(pid(300 + 7 * i as u64), n).unwrap())
            .collect();
        let m = 2 * n - 1;
        let views = anonreg_bench::workload::random_views(m, k, seed);
        let mut builder = Simulation::builder();
        for (machine, view) in machines.into_iter().zip(views) {
            builder = builder.process(machine, view);
        }
        let mut sim = builder.build().unwrap();
        sched::random_bursts(&mut sim, seed, 16 * n, 80_000 * n);
        let stats = check_renaming(sim.trace(), k as u32)
            .unwrap_or_else(|v| panic!("n={n} k={k} seed={seed}: {v}"));
        assert!(stats.max_name() <= k as u32);
    }
}

/// Determinism: the same seed reproduces the same run, byte for byte.
#[test]
fn seeded_runs_replay_identically() {
    let mut rng = Rng64::seed_from_u64(0xDE7);
    for _ in 0..CASES {
        let seed = rng.next_u64();
        let run = |seed: u64| {
            let mut sim = Simulation::builder()
                .process(AnonMutex::new(pid(1), 3).unwrap(), View::identity(3))
                .process(AnonMutex::new(pid(2), 3).unwrap(), View::rotated(3, 1))
                .build()
                .unwrap();
            sched::random(&mut sim, seed, 500);
            format!("{}", sim.trace())
        };
        assert_eq!(run(seed), run(seed));
    }
}

/// Static analysis is view-blind: wrapping a shipped algorithm in ANY
/// register permutation (`Viewed`) leaves every lint passing. This is the
/// model's core claim — a view permutes addresses, never behavior — made
/// a property of the analyzer.
#[test]
fn lints_pass_on_randomly_viewed_mutexes() {
    use anonreg_lint::{
        exit_restores_memory, solo_termination, symmetry, Analysis, CfgConfig, Viewed,
    };
    let mut rng = Rng64::seed_from_u64(0x11A7);
    for _ in 0..24 {
        let m = [3, 5][rng.gen_index(2)];
        let view = perm(&mut rng, m);
        let config = CfgConfig::new(vec![0u64, 1, 2]);
        // Both processes share the view: their code (view included) is
        // identical, as §2 symmetry demands.
        let a = Viewed::new(
            AnonMutex::new(pid(1), m).unwrap().with_cycles(1),
            view.clone(),
        );
        let b = Viewed::new(
            AnonMutex::new(pid(2), m).unwrap().with_cycles(1),
            view.clone(),
        );
        let analysis = Analysis::new(&a, &config);
        assert!(analysis.index_bounds().passed(), "m={m} view={view:?}");
        assert!(analysis.protocol().passed(), "m={m} view={view:?}");
        assert!(analysis.pack_width(|v| *v <= u64::from(u32::MAX)).passed());
        let swap = |v: &u64| match *v {
            1 => 2,
            2 => 1,
            other => other,
        };
        assert!(symmetry(&a, &b, swap, &config).passed(), "view={view:?}");
        assert!(exit_restores_memory(a.clone(), vec![0; m], 160).passed());
        assert!(solo_termination(a, vec![0; m], 160).passed());
    }
}

/// Same property over the one-shot side: randomly viewed consensus
/// machines stay lint-clean (minus L4, which is a mutex obligation).
#[test]
fn lints_pass_on_randomly_viewed_consensus() {
    use anonreg::consensus::ConsRecord;
    use anonreg_lint::{solo_termination, symmetry, Analysis, CfgConfig, Viewed};
    let mut rng = Rng64::seed_from_u64(0x5EED);
    for _ in 0..16 {
        let n = rng.gen_range_inclusive(2, 3);
        let m = 2 * n - 1;
        let view = perm(&mut rng, m);
        let config = CfgConfig::new(vec![
            ConsRecord::default(),
            ConsRecord { id: 1, val: 7 },
            ConsRecord { id: 2, val: 7 },
        ]);
        let a = Viewed::new(AnonConsensus::new(pid(1), n, 7).unwrap(), view.clone());
        let b = Viewed::new(AnonConsensus::new(pid(2), n, 7).unwrap(), view.clone());
        let analysis = Analysis::new(&a, &config);
        assert!(analysis.index_bounds().passed(), "n={n} view={view:?}");
        assert!(analysis.protocol().passed(), "n={n} view={view:?}");
        assert!(analysis
            .pack_width(|r| r.id <= u64::from(u32::MAX) && r.val <= u64::from(u32::MAX))
            .passed());
        let map = |r: &ConsRecord| ConsRecord {
            id: match r.id {
                1 => 2,
                2 => 1,
                other => other,
            },
            val: r.val,
        };
        assert!(symmetry(&a, &b, map, &config).passed(), "view={view:?}");
        let budget = 4 * (m as u64) * (m as u64 + 2) + 64;
        assert!(solo_termination(a, vec![ConsRecord::default(); m], budget).passed());
    }
}

/// The abstract CFG is invariant under views: permuting register
/// addresses relabels edges but cannot create or destroy abstract states.
#[test]
fn cfg_size_is_view_invariant() {
    use anonreg_lint::{Analysis, CfgConfig, Viewed};
    let mut rng = Rng64::seed_from_u64(0xCF6);
    for _ in 0..16 {
        let m = [3, 5][rng.gen_index(2)];
        let view = perm(&mut rng, m);
        let config = CfgConfig::new(vec![0u64, 1, 2]);
        let bare = AnonMutex::new(pid(1), m).unwrap().with_cycles(1);
        let wrapped = Viewed::new(bare.clone(), view.clone());
        let bare_nodes = Analysis::new(&bare, &config)
            .cfg()
            .expect("finite abstract space")
            .len();
        let wrapped_nodes = Analysis::new(&wrapped, &config)
            .cfg()
            .expect("finite abstract space")
            .len();
        assert_eq!(bare_nodes, wrapped_nodes, "m={m} view={view:?}");
    }
}

/// Packing: consensus records with 32-bit fields round-trip through the
/// atomic encoding.
#[test]
fn cons_record_pack_round_trips() {
    use anonreg::consensus::ConsRecord;
    use anonreg_runtime::Pack64;
    let mut rng = Rng64::seed_from_u64(0xBAC);
    for _ in 0..256 {
        let id = rng.next_u64() & u64::from(u32::MAX);
        let val = rng.next_u64() & u64::from(u32::MAX);
        let record = ConsRecord { id, val };
        assert_eq!(ConsRecord::unpack(record.pack()), record);
    }
    for record in [
        ConsRecord { id: 0, val: 0 },
        ConsRecord {
            id: u64::from(u32::MAX),
            val: u64::from(u32::MAX),
        },
    ] {
        assert_eq!(ConsRecord::unpack(record.pack()), record);
    }
}
