//! Live streaming export: schema-v2 delta records from a running
//! [`MemProbe`].
//!
//! A [`StreamExporter`] owns a background thread that periodically
//! snapshots a shared probe, diffs against the previous snapshot, and
//! appends one `{"v":2,"t":"delta",...}` record per tick to a JSONL
//! sink — counters as *deltas*, gauge/histogram stats as overwrites,
//! new spans and events verbatim — followed by a `progress` record
//! derived from the explorer's standard metrics. [`StreamExporter::finish`]
//! writes the last delta, any [`Profiler`] frames as `profile` records,
//! a `snapshot` end-marker, and then the complete plain **v1** snapshot,
//! so a v1-only consumer that skips `v:2` lines still reads the final
//! state (see [`crate::schema::validate_jsonl_v1`]).
//!
//! Replaying every delta in order reconstructs the final snapshot
//! exactly: [`DeltaReplayer`] implements that, and [`replay_stream`]
//! checks a whole stream file end to end. [`stream_status`] classifies
//! a stream file as complete or detectably truncated (a killed run
//! leaves either a partial last line or no end-marker — never a file
//! that silently looks finished).

use std::collections::BTreeMap;
use std::fs::File;
use std::io::{self, BufWriter, Write as _};
use std::path::Path;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use crate::emit::snapshot_to_jsonl;
use crate::json::Json;
use crate::probe::{MemProbe, Metric, MetricsSnapshot};
use crate::profile::Profiler;
use crate::schema::{meta_line, SchemaError, SCHEMA_VERSION, STREAM_SCHEMA_VERSION};

fn v2_envelope(t: &str, seq: u64, run: &str, elapsed_ms: u64) -> Vec<(&'static str, Json)> {
    vec![
        ("v", Json::U64(STREAM_SCHEMA_VERSION)),
        ("t", Json::Str(t.to_string())),
        ("seq", Json::U64(seq)),
        ("run", Json::Str(run.to_string())),
        ("elapsed_ms", Json::U64(elapsed_ms)),
    ]
}

/// Trims trailing empty buckets, mirroring the v1 `hist` emitter so
/// replayed and final representations agree byte for byte.
fn trim_buckets(buckets: &[u64]) -> Vec<u64> {
    let filled = buckets.iter().rposition(|&b| b != 0).map_or(0, |i| i + 1);
    buckets[..filled].to_vec()
}

/// Builds one schema-v2 `delta` record: everything that changed in
/// `curr` relative to `prev`. Counters carry the increment; gauges and
/// histograms carry their full new stat (overwrite semantics); spans
/// and events carry only the records appended since `prev`.
#[must_use]
pub fn delta_record(
    prev: &MetricsSnapshot,
    curr: &MetricsSnapshot,
    seq: u64,
    run: &str,
    elapsed_ms: u64,
) -> Json {
    let prev_counters: BTreeMap<(Metric, u64), u64> =
        prev.counters.iter().map(|&(m, k, v)| ((m, k), v)).collect();
    let counters = curr
        .counters
        .iter()
        .filter_map(|&(m, k, v)| {
            let before = prev_counters.get(&(m, k)).copied();
            // New keys are reported even at zero so a replayer learns
            // about them; known keys only when they moved.
            let delta = v - before.unwrap_or(0);
            (before.is_none() || delta > 0).then(|| {
                Json::obj(vec![
                    ("name", Json::Str(metric_wire_name(m))),
                    ("key", Json::U64(k)),
                    ("delta", Json::U64(delta)),
                ])
            })
        })
        .collect();
    let prev_gauges: BTreeMap<(Metric, u64), _> =
        prev.gauges.iter().map(|&(m, k, g)| ((m, k), g)).collect();
    let gauges = curr
        .gauges
        .iter()
        .filter(|&&(m, k, g)| prev_gauges.get(&(m, k)) != Some(&g))
        .map(|&(m, k, g)| {
            Json::obj(vec![
                ("name", Json::Str(metric_wire_name(m))),
                ("key", Json::U64(k)),
                ("last", Json::U64(g.last)),
                ("max", Json::U64(g.max)),
                ("samples", Json::U64(g.samples)),
            ])
        })
        .collect();
    let prev_hists: BTreeMap<(Metric, u64), _> = prev
        .histograms
        .iter()
        .map(|(m, k, h)| ((*m, *k), h))
        .collect();
    let hists = curr
        .histograms
        .iter()
        .filter(|(m, k, h)| prev_hists.get(&(*m, *k)) != Some(&h))
        .map(|(m, k, h)| {
            Json::obj(vec![
                ("name", Json::Str(metric_wire_name(*m))),
                ("key", Json::U64(*k)),
                ("count", Json::U64(h.count)),
                ("sum", Json::U64(h.sum)),
                ("min", Json::U64(h.min)),
                ("max", Json::U64(h.max)),
                (
                    "buckets",
                    Json::Arr(
                        trim_buckets(&h.buckets)
                            .into_iter()
                            .map(Json::U64)
                            .collect(),
                    ),
                ),
            ])
        })
        .collect();
    let spans = curr.spans[prev.spans.len().min(curr.spans.len())..]
        .iter()
        .map(|s| {
            Json::obj(vec![
                ("name", Json::Str(s.span.name().to_string())),
                ("key", Json::U64(s.key)),
                ("length", Json::U64(s.length)),
            ])
        })
        .collect();
    let events = curr.events[prev.events.len().min(curr.events.len())..]
        .iter()
        .map(|e| {
            Json::obj(vec![
                ("name", Json::Str(e.name.to_string())),
                (
                    "fields",
                    Json::Obj(
                        e.fields
                            .iter()
                            .map(|&(k, v)| (k.to_string(), Json::U64(v)))
                            .collect(),
                    ),
                ),
            ])
        })
        .collect();
    let mut fields = v2_envelope("delta", seq, run, elapsed_ms);
    fields.push(("counters", Json::Arr(counters)));
    fields.push(("gauges", Json::Arr(gauges)));
    fields.push(("hists", Json::Arr(hists)));
    fields.push(("spans", Json::Arr(spans)));
    fields.push(("events", Json::Arr(events)));
    fields.push(("dropped_spans", Json::U64(curr.dropped_spans)));
    fields.push(("dropped_events", Json::U64(curr.dropped_events)));
    Json::obj(fields)
}

fn metric_wire_name(m: Metric) -> String {
    m.name().to_string()
}

/// Live run statistics distilled from one snapshot, for `progress`
/// records and human one-liners.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct Progress {
    /// Distinct states discovered so far.
    pub states: u64,
    /// Current frontier size (sum over workers' last-sampled gauges).
    pub frontier: u64,
    /// Deepest discovery depth sampled so far.
    pub depth: u64,
    /// Discovery rate since the previous observation.
    pub states_per_sec: f64,
    /// Fraction of transitions that landed on an already-known state.
    pub dedup_rate: f64,
    /// Completion estimate from the frontier drain trend, `0` when the
    /// frontier is still growing (no estimate).
    pub eta_ms: u64,
}

impl Progress {
    /// Renders the schema-v2 `progress` record.
    #[must_use]
    pub fn record(&self, seq: u64, run: &str, elapsed_ms: u64) -> Json {
        let mut fields = v2_envelope("progress", seq, run, elapsed_ms);
        fields.push(("states", Json::U64(self.states)));
        fields.push(("frontier", Json::U64(self.frontier)));
        fields.push(("depth", Json::U64(self.depth)));
        fields.push(("eta_ms", Json::U64(self.eta_ms)));
        fields.push(("states_per_sec", Json::F64(self.states_per_sec)));
        fields.push(("dedup_rate", Json::F64(self.dedup_rate)));
        Json::obj(fields)
    }

    /// Renders the human live line the CLI echoes to stderr.
    #[must_use]
    pub fn human(&self, elapsed_ms: u64) -> String {
        let eta = if self.eta_ms == 0 {
            "eta ?".to_string()
        } else {
            format!("eta {:.1}s", self.eta_ms as f64 / 1000.0)
        };
        format!(
            "[{:7.1}s] {} states ({:.0}/s) frontier {} depth {} dedup {:.0}% {eta}",
            elapsed_ms as f64 / 1000.0,
            self.states,
            self.states_per_sec,
            self.frontier,
            self.depth,
            self.dedup_rate * 100.0,
        )
    }
}

/// Derives [`Progress`] observations from successive snapshots,
/// remembering just enough history for rates and the frontier trend.
#[derive(Debug, Default)]
pub struct ProgressTracker {
    last_states: u64,
    last_frontier: u64,
    last_elapsed_ms: u64,
    seeded: bool,
}

impl ProgressTracker {
    /// Creates a fresh tracker.
    #[must_use]
    pub fn new() -> Self {
        ProgressTracker::default()
    }

    /// Observes one snapshot taken `elapsed_ms` into the run.
    pub fn observe(&mut self, snap: &MetricsSnapshot, elapsed_ms: u64) -> Progress {
        let states = snap.counter_total(Metric::ExploreStates);
        let frontier: u64 = snap
            .gauges
            .iter()
            .filter(|(m, _, _)| *m == Metric::ExploreFrontier)
            .map(|(_, _, g)| g.last)
            .sum();
        let depth = snap
            .gauges
            .iter()
            .filter(|(m, _, _)| *m == Metric::ExploreDepth)
            .map(|(_, _, g)| g.last)
            .max()
            .unwrap_or(0);
        let edges = snap.counter_total(Metric::ExploreEdges);
        let dedup = snap.counter_total(Metric::ExploreDedup);
        let dt_ms = elapsed_ms.saturating_sub(self.last_elapsed_ms);
        let states_per_sec = if self.seeded && dt_ms > 0 {
            (states.saturating_sub(self.last_states)) as f64 * 1000.0 / dt_ms as f64
        } else {
            0.0
        };
        // ETA from the frontier trend: a draining frontier at the
        // current drain rate empties in frontier / rate ticks.
        let eta_ms = if self.seeded && frontier > 0 && frontier < self.last_frontier && dt_ms > 0 {
            let drain_per_ms = (self.last_frontier - frontier) as f64 / dt_ms as f64;
            (frontier as f64 / drain_per_ms) as u64
        } else {
            0
        };
        self.last_states = states;
        self.last_frontier = frontier;
        self.last_elapsed_ms = elapsed_ms;
        self.seeded = true;
        Progress {
            states,
            frontier,
            depth,
            states_per_sec,
            dedup_rate: if edges > 0 {
                dedup as f64 / edges as f64
            } else {
                0.0
            },
            eta_ms,
        }
    }
}

/// Options for [`StreamExporter::start`].
#[derive(Clone, Debug)]
pub struct StreamOptions {
    /// Tool name stamped into the leading v1 `meta` line.
    pub tool: String,
    /// Run identifier carried by every v2 record.
    pub run: String,
    /// Snapshot/emit period.
    pub interval: Duration,
    /// Echo the human progress line to stderr on every tick.
    pub echo: bool,
}

impl StreamOptions {
    /// Sensible defaults: 50 ms ticks (so even sub-second runs emit
    /// several deltas), no echo.
    #[must_use]
    pub fn new(tool: &str, run: &str) -> Self {
        StreamOptions {
            tool: tool.to_string(),
            run: run.to_string(),
            interval: Duration::from_millis(50),
            echo: false,
        }
    }
}

/// What [`StreamExporter::finish`] reports back.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct StreamSummary {
    /// `delta` records written (including the final flush delta).
    pub deltas: u64,
    /// Total v2 records written (deltas + progress + profiles + marker).
    pub records: u64,
    /// Wall-clock covered by the stream.
    pub elapsed_ms: u64,
}

/// The background streaming exporter. Construct with
/// [`StreamExporter::start`] *before* the instrumented run begins and
/// call [`StreamExporter::finish`] after it ends (and after any
/// profiler timers have been flushed).
#[derive(Debug)]
pub struct StreamExporter {
    stop: Arc<AtomicBool>,
    handle: Option<JoinHandle<io::Result<StreamSummary>>>,
}

impl StreamExporter {
    /// Opens `path`, writes the v1 `meta` header, and spawns the
    /// exporter thread over `probe` (and optionally `profiler`, whose
    /// flushed frames become `profile` records at finish time).
    ///
    /// # Errors
    ///
    /// Propagates file creation/write errors.
    pub fn start(
        path: impl AsRef<Path>,
        opts: StreamOptions,
        probe: Arc<MemProbe>,
        profiler: Option<Arc<Profiler>>,
    ) -> io::Result<StreamExporter> {
        let mut writer = BufWriter::new(File::create(path)?);
        let header = meta_line(
            &opts.tool,
            &[
                ("run", Json::Str(opts.run.clone())),
                (
                    "stream_interval_ms",
                    Json::U64(opts.interval.as_millis() as u64),
                ),
            ],
        );
        writer.write_all(header.render().as_bytes())?;
        writer.write_all(b"\n")?;
        writer.flush()?;
        let stop = Arc::new(AtomicBool::new(false));
        let thread_stop = Arc::clone(&stop);
        let handle = std::thread::Builder::new()
            .name("obs-stream".to_string())
            .spawn(move || {
                stream_loop(
                    &mut writer,
                    &opts,
                    &probe,
                    profiler.as_deref(),
                    &thread_stop,
                )
            })
            .expect("spawn exporter thread");
        Ok(StreamExporter {
            stop,
            handle: Some(handle),
        })
    }

    /// Stops the exporter: writes the final delta, profile records, the
    /// `snapshot` end-marker and the full v1 snapshot, then joins.
    ///
    /// # Errors
    ///
    /// Propagates any write error the exporter thread hit.
    ///
    /// # Panics
    ///
    /// Panics if the exporter thread itself panicked.
    pub fn finish(mut self) -> io::Result<StreamSummary> {
        self.stop.store(true, Ordering::Release);
        self.handle
            .take()
            .expect("finish called once")
            .join()
            .expect("exporter thread panicked")
    }
}

impl Drop for StreamExporter {
    fn drop(&mut self) {
        // A dropped (not finished) exporter still stops its thread; the
        // stream is left without an end-marker, i.e. detectably
        // truncated — see [`stream_status`].
        self.stop.store(true, Ordering::Release);
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

fn stream_loop(
    writer: &mut BufWriter<File>,
    opts: &StreamOptions,
    probe: &MemProbe,
    profiler: Option<&Profiler>,
    stop: &AtomicBool,
) -> io::Result<StreamSummary> {
    let start = Instant::now();
    let mut prev = MetricsSnapshot::default();
    let mut tracker = ProgressTracker::new();
    let mut seq = 0u64;
    let mut deltas = 0u64;
    let mut tick = |writer: &mut BufWriter<File>,
                    prev: &mut MetricsSnapshot,
                    seq: &mut u64,
                    deltas: &mut u64|
     -> io::Result<()> {
        let elapsed_ms = start.elapsed().as_millis() as u64;
        let curr = probe.snapshot();
        let delta = delta_record(prev, &curr, *seq, &opts.run, elapsed_ms);
        *seq += 1;
        *deltas += 1;
        writer.write_all(delta.render().as_bytes())?;
        writer.write_all(b"\n")?;
        let progress = tracker.observe(&curr, elapsed_ms);
        let record = progress.record(*seq, &opts.run, elapsed_ms);
        *seq += 1;
        writer.write_all(record.render().as_bytes())?;
        writer.write_all(b"\n")?;
        writer.flush()?;
        if opts.echo {
            eprintln!("{}", progress.human(elapsed_ms));
        }
        *prev = curr;
        Ok(())
    };
    while !stop.load(Ordering::Acquire) {
        // Sleep in short slices so finish() is prompt even with long
        // intervals.
        let deadline = Instant::now() + opts.interval;
        while Instant::now() < deadline && !stop.load(Ordering::Acquire) {
            std::thread::sleep(Duration::from_millis(2).min(opts.interval));
        }
        if stop.load(Ordering::Acquire) {
            break;
        }
        tick(writer, &mut prev, &mut seq, &mut deltas)?;
    }
    // Final flush: one last delta so nothing recorded after the last
    // tick is lost, then profiles, marker, and the v1 snapshot.
    tick(writer, &mut prev, &mut seq, &mut deltas)?;
    let elapsed_ms = start.elapsed().as_millis() as u64;
    if let Some(profiler) = profiler {
        for line in profiler.profile_lines(seq, &opts.run, elapsed_ms) {
            seq += 1;
            writer.write_all(line.render().as_bytes())?;
            writer.write_all(b"\n")?;
        }
    }
    let marker = Json::obj(v2_envelope("snapshot", seq, &opts.run, elapsed_ms));
    seq += 1;
    writer.write_all(marker.render().as_bytes())?;
    writer.write_all(b"\n")?;
    writer.write_all(snapshot_to_jsonl(&prev).as_bytes())?;
    writer.flush()?;
    Ok(StreamSummary {
        deltas,
        records: seq,
        elapsed_ms,
    })
}

/// Histogram stats as reconstructed by replay: `(count, sum, min, max,
/// trimmed buckets)`.
pub type ReplayHist = (u64, u64, u64, u64, Vec<u64>);

/// A fully string-keyed snapshot reconstruction — the common ground on
/// which a delta replay and the stream's trailing v1 snapshot can be
/// compared exactly (v1 lines carry wire names, not [`Metric`] values).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ReplaySnapshot {
    /// Counter totals by `(wire name, key)`.
    pub counters: BTreeMap<(String, u64), u64>,
    /// Gauge stats `(last, max, samples)` by `(wire name, key)`.
    pub gauges: BTreeMap<(String, u64), (u64, u64, u64)>,
    /// Histogram stats `(count, sum, min, max, trimmed buckets)` by
    /// `(wire name, key)`.
    pub hists: BTreeMap<(String, u64), ReplayHist>,
    /// Spans `(wire name, key, length)` in close order.
    pub spans: Vec<(String, u64, u64)>,
    /// Events `(name, fields)` in announce order.
    pub events: Vec<(String, Vec<(String, u64)>)>,
    /// Spans dropped beyond the probe cap.
    pub dropped_spans: u64,
    /// Events dropped beyond the probe cap.
    pub dropped_events: u64,
}

fn bad(line: usize, reason: impl Into<String>) -> SchemaError {
    SchemaError {
        line,
        reason: reason.into(),
    }
}

fn field_u64(obj: &Json, field: &str, line: usize) -> Result<u64, SchemaError> {
    obj.get(field)
        .and_then(Json::as_u64)
        .ok_or_else(|| bad(line, format!("missing or non-u64 field `{field}`")))
}

fn field_str(obj: &Json, field: &str, line: usize) -> Result<String, SchemaError> {
    obj.get(field)
        .and_then(Json::as_str)
        .map(str::to_string)
        .ok_or_else(|| bad(line, format!("missing or non-string field `{field}`")))
}

fn event_fields(obj: &Json, line: usize) -> Result<Vec<(String, u64)>, SchemaError> {
    match obj.get("fields") {
        Some(Json::Obj(entries)) => entries
            .iter()
            .map(|(k, v)| {
                v.as_u64()
                    .map(|v| (k.clone(), v))
                    .ok_or_else(|| bad(line, "non-u64 value in `fields`"))
            })
            .collect(),
        _ => Err(bad(line, "missing or non-object field `fields`")),
    }
}

impl ReplaySnapshot {
    /// Parses the v1 snapshot section of a stream (or any v1 JSONL
    /// document): `counter`/`gauge`/`hist`/`span`/`event` lines are
    /// loaded, the synthetic `records_dropped` event becomes the drop
    /// counters, and every other v1 line type is ignored.
    ///
    /// # Errors
    ///
    /// Returns a [`SchemaError`] for malformed JSON or field shapes.
    pub fn from_v1_jsonl(text: &str) -> Result<ReplaySnapshot, SchemaError> {
        let mut snap = ReplaySnapshot::default();
        for (idx, raw) in text.lines().enumerate() {
            let line = idx + 1;
            if raw.trim().is_empty() {
                continue;
            }
            let value = Json::parse(raw).map_err(|e| {
                bad(
                    line,
                    format!("invalid JSON at byte {}: {}", e.pos, e.reason),
                )
            })?;
            if field_u64(&value, "v", line)? != SCHEMA_VERSION {
                continue;
            }
            snap.load_v1_value(&value, line)?;
        }
        Ok(snap)
    }

    fn load_v1_value(&mut self, value: &Json, line: usize) -> Result<(), SchemaError> {
        match field_str(value, "t", line)?.as_str() {
            "counter" => {
                let key = (
                    field_str(value, "name", line)?,
                    field_u64(value, "key", line)?,
                );
                *self.counters.entry(key).or_insert(0) += field_u64(value, "value", line)?;
            }
            "gauge" => {
                let key = (
                    field_str(value, "name", line)?,
                    field_u64(value, "key", line)?,
                );
                self.gauges.insert(
                    key,
                    (
                        field_u64(value, "last", line)?,
                        field_u64(value, "max", line)?,
                        field_u64(value, "samples", line)?,
                    ),
                );
            }
            "hist" => {
                let key = (
                    field_str(value, "name", line)?,
                    field_u64(value, "key", line)?,
                );
                let buckets = value
                    .get("buckets")
                    .and_then(Json::as_arr)
                    .ok_or_else(|| bad(line, "missing or non-array field `buckets`"))?
                    .iter()
                    .map(|b| {
                        b.as_u64()
                            .ok_or_else(|| bad(line, "non-u64 entry in `buckets`"))
                    })
                    .collect::<Result<Vec<u64>, _>>()?;
                self.hists.insert(
                    key,
                    (
                        field_u64(value, "count", line)?,
                        field_u64(value, "sum", line)?,
                        field_u64(value, "min", line)?,
                        field_u64(value, "max", line)?,
                        trim_buckets(&buckets),
                    ),
                );
            }
            "span" => {
                self.spans.push((
                    field_str(value, "name", line)?,
                    field_u64(value, "key", line)?,
                    field_u64(value, "length", line)?,
                ));
            }
            "event" => {
                let name = field_str(value, "name", line)?;
                let fields = event_fields(value, line)?;
                if name == "records_dropped" {
                    // The v1 emitter folds the drop counters into a
                    // synthetic event; unfold it here.
                    for (k, v) in fields {
                        match k.as_str() {
                            "spans" => self.dropped_spans = v,
                            "events" => self.dropped_events = v,
                            _ => {}
                        }
                    }
                } else {
                    self.events.push((name, fields));
                }
            }
            _ => {}
        }
        Ok(())
    }
}

/// Reconstructs a [`ReplaySnapshot`] by applying `delta` records in
/// sequence order. Counters accumulate, gauge/hist stats overwrite,
/// spans/events append — the exact inverse of [`delta_record`].
#[derive(Debug, Default)]
pub struct DeltaReplayer {
    snap: ReplaySnapshot,
    next_seq: Option<u64>,
    applied: u64,
}

impl DeltaReplayer {
    /// Creates an empty replayer.
    #[must_use]
    pub fn new() -> Self {
        DeltaReplayer::default()
    }

    /// Number of delta records applied so far.
    #[must_use]
    pub fn applied(&self) -> u64 {
        self.applied
    }

    /// Applies one parsed v2 `delta` record.
    ///
    /// # Errors
    ///
    /// Rejects malformed records and sequence-number regressions (a
    /// `seq` at or below the previous delta's means a corrupt or
    /// re-ordered stream).
    pub fn apply(&mut self, delta: &Json, line: usize) -> Result<(), SchemaError> {
        let seq = field_u64(delta, "seq", line)?;
        if let Some(prev) = self.next_seq {
            if seq < prev {
                return Err(bad(
                    line,
                    format!("sequence regression: {seq} after {prev}"),
                ));
            }
        }
        self.next_seq = Some(seq + 1);
        for entry in delta.get("counters").and_then(Json::as_arr).unwrap_or(&[]) {
            let key = (
                field_str(entry, "name", line)?,
                field_u64(entry, "key", line)?,
            );
            *self.snap.counters.entry(key).or_insert(0) += field_u64(entry, "delta", line)?;
        }
        for entry in delta.get("gauges").and_then(Json::as_arr).unwrap_or(&[]) {
            let key = (
                field_str(entry, "name", line)?,
                field_u64(entry, "key", line)?,
            );
            self.snap.gauges.insert(
                key,
                (
                    field_u64(entry, "last", line)?,
                    field_u64(entry, "max", line)?,
                    field_u64(entry, "samples", line)?,
                ),
            );
        }
        for entry in delta.get("hists").and_then(Json::as_arr).unwrap_or(&[]) {
            let key = (
                field_str(entry, "name", line)?,
                field_u64(entry, "key", line)?,
            );
            let buckets = entry
                .get("buckets")
                .and_then(Json::as_arr)
                .ok_or_else(|| bad(line, "missing or non-array field `buckets`"))?
                .iter()
                .map(|b| {
                    b.as_u64()
                        .ok_or_else(|| bad(line, "non-u64 entry in `buckets`"))
                })
                .collect::<Result<Vec<u64>, _>>()?;
            self.snap.hists.insert(
                key,
                (
                    field_u64(entry, "count", line)?,
                    field_u64(entry, "sum", line)?,
                    field_u64(entry, "min", line)?,
                    field_u64(entry, "max", line)?,
                    trim_buckets(&buckets),
                ),
            );
        }
        for entry in delta.get("spans").and_then(Json::as_arr).unwrap_or(&[]) {
            self.snap.spans.push((
                field_str(entry, "name", line)?,
                field_u64(entry, "key", line)?,
                field_u64(entry, "length", line)?,
            ));
        }
        for entry in delta.get("events").and_then(Json::as_arr).unwrap_or(&[]) {
            self.snap
                .events
                .push((field_str(entry, "name", line)?, event_fields(entry, line)?));
        }
        if let Some(v) = delta.get("dropped_spans").and_then(Json::as_u64) {
            self.snap.dropped_spans = v;
        }
        if let Some(v) = delta.get("dropped_events").and_then(Json::as_u64) {
            self.snap.dropped_events = v;
        }
        self.applied += 1;
        Ok(())
    }

    /// The reconstructed snapshot.
    #[must_use]
    pub fn finish(self) -> ReplaySnapshot {
        self.snap
    }
}

/// The outcome of replaying a whole stream file.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct StreamReplay {
    /// The snapshot reconstructed from the delta records alone.
    pub replayed: ReplaySnapshot,
    /// The final v1 snapshot section after the `snapshot` marker.
    pub final_snapshot: ReplaySnapshot,
    /// Number of delta records applied.
    pub deltas: u64,
}

impl StreamReplay {
    /// Whether the delta replay reconstructs the final snapshot exactly
    /// — the stream's core integrity invariant.
    #[must_use]
    pub fn reconstructs_exactly(&self) -> bool {
        self.replayed == self.final_snapshot
    }
}

/// Replays a complete stream file: applies every `delta`, locates the
/// `snapshot` end-marker, parses the trailing v1 snapshot, and returns
/// both sides for comparison.
///
/// # Errors
///
/// Rejects malformed lines, sequence regressions, and streams without
/// an end-marker (i.e. truncated streams).
pub fn replay_stream(text: &str) -> Result<StreamReplay, SchemaError> {
    let mut replayer = DeltaReplayer::new();
    let mut v1_tail = String::new();
    let mut after_marker = false;
    for (idx, raw) in text.lines().enumerate() {
        let line = idx + 1;
        if raw.trim().is_empty() {
            continue;
        }
        if after_marker {
            v1_tail.push_str(raw);
            v1_tail.push('\n');
            continue;
        }
        let value = Json::parse(raw).map_err(|e| {
            bad(
                line,
                format!("invalid JSON at byte {}: {}", e.pos, e.reason),
            )
        })?;
        if field_u64(&value, "v", line)? != STREAM_SCHEMA_VERSION {
            continue;
        }
        match field_str(&value, "t", line)?.as_str() {
            "delta" => replayer.apply(&value, line)?,
            "snapshot" => after_marker = true,
            _ => {}
        }
    }
    if !after_marker {
        return Err(bad(0, "stream has no `snapshot` end-marker (truncated?)"));
    }
    let deltas = replayer.applied();
    Ok(StreamReplay {
        replayed: replayer.finish(),
        final_snapshot: ReplaySnapshot::from_v1_jsonl(&v1_tail)?,
        deltas,
    })
}

/// Integrity classification of a stream file — what a reader can tell
/// about a run that may have been killed mid-stream.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum StreamStatus {
    /// The stream carries its `snapshot` end-marker and every line is
    /// complete: the run finished and the v1 tail is authoritative.
    Complete {
        /// `delta` records seen.
        deltas: u64,
    },
    /// No end-marker (and possibly a torn final line): the run died
    /// mid-stream. Every complete `delta` up to the tear is still
    /// usable.
    Truncated {
        /// Complete, parseable lines before the tear.
        complete_lines: u64,
        /// Whether the final line itself is torn (no trailing newline
        /// or unparseable JSON).
        torn_tail: bool,
    },
}

/// Classifies a stream file's integrity. A file ending without the v2
/// `snapshot` marker — or with a torn last line — is reported as
/// [`StreamStatus::Truncated`], never silently treated as finished;
/// this is the streaming analogue of the trace reader's declared-count
/// truncation check.
#[must_use]
pub fn stream_status(text: &str) -> StreamStatus {
    let torn_tail = !text.is_empty() && !text.ends_with('\n') || {
        text.lines()
            .rfind(|l| !l.trim().is_empty())
            .is_some_and(|l| Json::parse(l).is_err())
    };
    let mut complete_lines = 0u64;
    let mut deltas = 0u64;
    let mut saw_marker = false;
    for raw in text.lines() {
        if raw.trim().is_empty() {
            continue;
        }
        let Ok(value) = Json::parse(raw) else { break };
        complete_lines += 1;
        if value.get("v").and_then(Json::as_u64) == Some(STREAM_SCHEMA_VERSION) {
            match value.get("t").and_then(Json::as_str) {
                Some("delta") => deltas += 1,
                Some("snapshot") => saw_marker = true,
                _ => {}
            }
        }
    }
    if saw_marker && !torn_tail {
        StreamStatus::Complete { deltas }
    } else {
        StreamStatus::Truncated {
            complete_lines,
            torn_tail,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::probe::{Probe, Span};
    use crate::schema::validate_jsonl;

    fn snap(probe: &MemProbe) -> MetricsSnapshot {
        probe.snapshot()
    }

    #[test]
    fn delta_record_reports_only_changes() {
        let probe = MemProbe::new();
        probe.counter(Metric::ExploreStates, 0, 10);
        probe.gauge(Metric::ExploreFrontier, 0, 4);
        let first = snap(&probe);
        probe.counter(Metric::ExploreStates, 0, 5);
        probe.span_close(Span::Explore, 0, 15);
        let second = snap(&probe);
        let d = delta_record(&first, &second, 3, "r", 100);
        crate::schema::validate_value(&d, 1).unwrap();
        let counters = d.get("counters").and_then(Json::as_arr).unwrap();
        assert_eq!(counters.len(), 1);
        assert_eq!(counters[0].get("delta").and_then(Json::as_u64), Some(5));
        // The gauge did not change between snapshots: not re-sent.
        assert!(d.get("gauges").and_then(Json::as_arr).unwrap().is_empty());
        assert_eq!(d.get("spans").and_then(Json::as_arr).unwrap().len(), 1);
    }

    #[test]
    fn replaying_deltas_reconstructs_final_snapshot() {
        let probe = MemProbe::new();
        let mut prev = MetricsSnapshot::default();
        let mut replayer = DeltaReplayer::new();
        // Three "ticks" of recording, diffing, and replaying.
        for tick in 0..3u64 {
            probe.counter(Metric::ExploreStates, 0, 7 + tick);
            probe.counter(Metric::ExploreEdges, tick, 2);
            probe.gauge(Metric::ExploreFrontier, 0, 10 - tick);
            probe.histogram(Metric::BackoffSpins, 0, 1 << tick);
            probe.span_close(Span::Explore, tick, tick + 1);
            probe.event("explore_done", &[("states", tick)]);
            let curr = snap(&probe);
            let d = delta_record(&prev, &curr, tick, "r", tick * 50);
            replayer.apply(&d, 1).unwrap();
            prev = curr;
        }
        let replayed = replayer.finish();
        let from_v1 = ReplaySnapshot::from_v1_jsonl(&snapshot_to_jsonl(&prev)).unwrap();
        assert_eq!(replayed, from_v1);
    }

    #[test]
    fn replayer_rejects_sequence_regression() {
        let probe = MemProbe::new();
        probe.counter(Metric::RegRead, 0, 1);
        let curr = snap(&probe);
        let base = MetricsSnapshot::default();
        let d5 = delta_record(&base, &curr, 5, "r", 0);
        let d4 = delta_record(&base, &curr, 4, "r", 0);
        let mut replayer = DeltaReplayer::new();
        replayer.apply(&d5, 1).unwrap();
        assert!(replayer.apply(&d4, 2).is_err());
    }

    #[test]
    fn exporter_end_to_end_stream_is_valid_and_replayable() {
        let dir = std::env::temp_dir().join(format!("obs_export_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("stream.jsonl");
        let probe = Arc::new(MemProbe::new());
        let opts = StreamOptions {
            interval: Duration::from_millis(10),
            ..StreamOptions::new("test", "run-exporter")
        };
        let exporter = StreamExporter::start(&path, opts, Arc::clone(&probe), None).unwrap();
        for i in 0..20 {
            probe.counter(Metric::ExploreStates, 0, 3);
            probe.gauge(Metric::ExploreFrontier, 0, 20 - i);
            std::thread::sleep(Duration::from_millis(5));
        }
        let summary = exporter.finish().unwrap();
        assert!(summary.deltas >= 3, "expected >= 3 deltas: {summary:?}");
        let text = std::fs::read_to_string(&path).unwrap();
        // Every line (v1 and v2) validates.
        validate_jsonl(&text).unwrap();
        // A v1-only consumer skips the stream records without error.
        let (v1, skipped) = crate::schema::validate_jsonl_v1(&text).unwrap();
        assert!(v1 >= 2 && skipped as u64 >= summary.deltas);
        // And the delta replay reconstructs the final snapshot exactly.
        let replay = replay_stream(&text).unwrap();
        assert!(replay.reconstructs_exactly());
        assert_eq!(replay.deltas, summary.deltas);
        assert_eq!(
            stream_status(&text),
            StreamStatus::Complete {
                deltas: summary.deltas
            }
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn killed_stream_is_detectably_truncated() {
        let probe = MemProbe::new();
        probe.counter(Metric::ExploreStates, 0, 4);
        let curr = snap(&probe);
        let base = MetricsSnapshot::default();
        let mut text = String::from("{\"v\":1,\"t\":\"meta\",\"tool\":\"test\"}\n");
        text.push_str(&delta_record(&base, &curr, 0, "r", 10).render());
        text.push('\n');
        // Killed mid-write: the second delta is torn.
        let torn = delta_record(&curr, &curr, 1, "r", 20).render();
        text.push_str(&torn[..torn.len() / 2]);
        match stream_status(&text) {
            StreamStatus::Truncated {
                complete_lines,
                torn_tail,
            } => {
                assert_eq!(complete_lines, 2);
                assert!(torn_tail);
            }
            other => panic!("expected truncation, got {other:?}"),
        }
        // Killed between lines: whole lines, but no end-marker.
        let mut clean_cut = String::from("{\"v\":1,\"t\":\"meta\",\"tool\":\"test\"}\n");
        clean_cut.push_str(&delta_record(&base, &curr, 0, "r", 10).render());
        clean_cut.push('\n');
        match stream_status(&clean_cut) {
            StreamStatus::Truncated {
                complete_lines,
                torn_tail,
            } => {
                assert_eq!(complete_lines, 2);
                assert!(!torn_tail);
            }
            other => panic!("expected truncation, got {other:?}"),
        }
        assert!(replay_stream(&clean_cut).is_err());
    }

    #[test]
    fn progress_tracker_rates_and_eta() {
        let probe = MemProbe::new();
        probe.counter(Metric::ExploreStates, 0, 100);
        probe.counter(Metric::ExploreEdges, 0, 200);
        probe.counter(Metric::ExploreDedup, 0, 50);
        probe.gauge(Metric::ExploreFrontier, 0, 40);
        probe.gauge(Metric::ExploreDepth, 0, 7);
        let mut tracker = ProgressTracker::new();
        let first = tracker.observe(&snap(&probe), 100);
        assert_eq!(first.states, 100);
        assert_eq!(first.frontier, 40);
        assert_eq!(first.depth, 7);
        assert!((first.dedup_rate - 0.25).abs() < 1e-9);
        assert_eq!(first.eta_ms, 0); // no history yet
        probe.counter(Metric::ExploreStates, 0, 100);
        probe.gauge(Metric::ExploreFrontier, 0, 20);
        let second = tracker.observe(&snap(&probe), 200);
        assert!((second.states_per_sec - 1000.0).abs() < 1e-6);
        // Frontier drained 40 -> 20 in 100 ms: ~100 ms to empty.
        assert_eq!(second.eta_ms, 100);
        let rec = second.record(9, "r", 200);
        crate::schema::validate_value(&rec, 1).unwrap();
        assert!(second.human(200).contains("states"));
    }
}
