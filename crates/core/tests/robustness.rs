//! Robustness properties: the machines must behave sanely — in-range
//! register indices, no panics, protocol-conformant steps — even when the
//! shared memory holds arbitrary garbage (e.g. values written by unrelated
//! processes with wild identifiers).

use anonreg::consensus::{AnonConsensus, ConsRecord};
use anonreg::hybrid::HybridMutex;
use anonreg::mutex::AnonMutex;
use anonreg::ordered::OrderedMutex;
use anonreg::renaming::{AnonRenaming, RenRecord};
use anonreg::{Machine, Pid, Step};
use proptest::prelude::*;

/// Drives a machine for `budget` steps against arbitrary register contents,
/// checking every emitted index is in range and the protocol is respected.
fn drive_against<M: Machine>(
    mut machine: M,
    mut registers: Vec<M::Value>,
    budget: usize,
) -> Result<(), TestCaseError> {
    let m = machine.register_count();
    prop_assert_eq!(registers.len(), m);
    let mut pending: Option<M::Value> = None;
    for _ in 0..budget {
        match machine.resume(pending.take()) {
            Step::Read(j) => {
                prop_assert!(j < m, "read index {j} out of range (m={m})");
                pending = Some(registers[j].clone());
            }
            Step::Write(j, v) => {
                prop_assert!(j < m, "write index {j} out of range (m={m})");
                registers[j] = v;
            }
            Step::Event(_) => {}
            Step::Halt => break,
        }
    }
    Ok(())
}

fn arbitrary_u64_regs(m: usize) -> impl Strategy<Value = Vec<u64>> {
    proptest::collection::vec(proptest::option::of(1u64..50).prop_map(|o| o.unwrap_or(0)), m)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn mutex_tolerates_garbage_memory(
        m in 1usize..7,
        seed_regs in arbitrary_u64_regs(6),
    ) {
        let regs: Vec<u64> = seed_regs.into_iter().take(m).collect();
        prop_assume!(regs.len() == m);
        let machine = AnonMutex::new(Pid::new(9).unwrap(), m).unwrap().with_cycles(2);
        drive_against(machine, regs, 5_000)?;
    }

    #[test]
    fn ordered_mutex_tolerates_garbage_memory(
        m in 2usize..7,
        seed_regs in arbitrary_u64_regs(6),
    ) {
        let regs: Vec<u64> = seed_regs.into_iter().take(m).collect();
        prop_assume!(regs.len() == m);
        let machine = OrderedMutex::new(Pid::new(9).unwrap(), m).unwrap().with_cycles(2);
        drive_against(machine, regs, 5_000)?;
    }

    #[test]
    fn hybrid_mutex_tolerates_garbage_memory(
        m in 2usize..6,
        seed_regs in arbitrary_u64_regs(7),
    ) {
        let regs: Vec<u64> = seed_regs.into_iter().take(m + 1).collect();
        prop_assume!(regs.len() == m + 1);
        let machine = HybridMutex::new(Pid::new(9).unwrap(), m).unwrap().with_cycles(2);
        drive_against(machine, regs, 5_000)?;
    }

    #[test]
    fn consensus_tolerates_garbage_memory(
        n in 1usize..5,
        ids in proptest::collection::vec(0u64..20, 9),
        vals in proptest::collection::vec(0u64..20, 9),
    ) {
        let m = 2 * n - 1;
        let regs: Vec<ConsRecord> = ids
            .into_iter()
            .zip(vals)
            .take(m)
            .map(|(id, val)| ConsRecord { id, val })
            .collect();
        prop_assume!(regs.len() == m);
        let machine = AnonConsensus::new(Pid::new(9).unwrap(), n, 7).unwrap();
        drive_against(machine, regs, 10_000)?;
    }

    #[test]
    fn renaming_tolerates_garbage_memory(
        n in 1usize..4,
        ids in proptest::collection::vec(0u64..20, 7),
        rounds in proptest::collection::vec(0u32..6, 7),
        hist_id in 1u64..20,
        hist_round in 1u32..6,
    ) {
        let m = 2 * n - 1;
        let regs: Vec<RenRecord> = ids
            .iter()
            .zip(&rounds)
            .take(m)
            .map(|(&id, &round)| {
                let mut record = RenRecord {
                    id,
                    val: id,
                    round,
                    history: Default::default(),
                };
                if round > 1 {
                    record.history.insert((hist_id, hist_round));
                }
                record
            })
            .collect();
        prop_assume!(regs.len() == m);
        let machine = AnonRenaming::new(Pid::new(9).unwrap(), n).unwrap();
        drive_against(machine, regs, 20_000)?;
    }

    /// The machines never hand out a `Some` read result unprompted: after a
    /// Write or Event the next resume must accept `None` (this is implicit
    /// in `drive_against`, which always passes `None` there — a machine
    /// that panics on that protocol violates the `Machine` contract).
    #[test]
    fn consensus_under_provisioned_still_behaves(
        n in 2usize..5,
        r in 1usize..4,
    ) {
        let registers = r.min(2 * n - 2);
        let machine = AnonConsensus::new(Pid::new(3).unwrap(), n, 5)
            .unwrap()
            .with_registers(registers);
        let regs = vec![ConsRecord::default(); registers];
        drive_against(machine, regs, 10_000)?;
    }
}
