//! `anonreg-lint`: a static protocol analyzer for memory-anonymous
//! machines.
//!
//! The paper's proofs lean on unstated well-formedness preconditions: the
//! algorithm is *symmetric* (identifiers compared only for equality, §2),
//! its exit code *restores* the registers it dirtied (Figure 1), solo runs
//! *terminate* (obstruction freedom), and — in this reproduction —
//! machines honor the [`Machine`](anonreg_model::Machine) coroutine
//! contract and stay within their declared register count. Violating any
//! of these silently voids the theorems while the code still "mostly
//! works". This crate checks them *statically*: no simulator schedules,
//! no threads.
//!
//! # How
//!
//! The analyzer [extracts a control-flow graph](cfg::Cfg::extract) from
//! any machine by **exhaustive abstract resumption**: it resumes clones
//! of the machine with every read result drawn from a caller-supplied
//! finite value domain, deduplicating states, until the reachable
//! abstract state space is exhausted. Six lints then run over that graph
//! (or over exact solo replays):
//!
//! | lint | property |
//! |------|----------|
//! | [`L1`](report::LintId::IndexBounds) | register indices in range |
//! | [`L2`](report::LintId::Protocol) | deterministic, panic-free, halt-stable coroutine |
//! | [`L3`](report::LintId::Symmetry) | CFGs isomorphic under pid substitution |
//! | [`L4`](report::LintId::ExitRestoresMemory) | solo runs restore initial register values |
//! | [`L5`](report::LintId::SoloTermination) | solo runs halt within a stated bound |
//! | [`L6`](report::LintId::PackWidth) | written values fit the packed register width |
//!
//! Every failure carries a **replayable witness**: the exact
//! `resume(input) => step` sequence from the initial state that exhibits
//! the violation.
//!
//! # Example
//!
//! ```
//! use anonreg_lint::cfg::CfgConfig;
//! use anonreg_lint::fixtures::{OutOfBounds, WellBehaved};
//! use anonreg_lint::lints::Analysis;
//! use anonreg_model::Pid;
//!
//! let config = CfgConfig::new(vec![0u64, 1, 2]);
//!
//! let good = Analysis::new(&WellBehaved::new(Pid::new(1).unwrap()), &config);
//! assert!(good.index_bounds().passed());
//!
//! let bad = Analysis::new(&OutOfBounds::new(3), &config);
//! assert!(bad.index_bounds().failed());
//! ```
#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cfg;
pub mod fixtures;
pub mod lints;
pub mod report;
pub mod solo;
pub mod viewed;

pub use cfg::{Cfg, CfgConfig, CfgError};
pub use lints::{exit_restores_memory, solo_termination, symmetry, Analysis};
pub use report::{Finding, LintId, LintReport, Verdict};
pub use solo::{solo_run, SoloEnd, SoloRun};
pub use viewed::Viewed;
