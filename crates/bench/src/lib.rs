//! Experiment harness: every table of the reproduction, as code.
//!
//! The paper is theory — its "evaluation" is a set of theorems. Each
//! experiment module here regenerates one of the tables defined in
//! `EXPERIMENTS.md`, turning a theorem into measured rows:
//!
//! | module | experiment | paper artifact |
//! |--------|-----------|----------------|
//! | [`e1_parity`] | E1 | Theorem 3.1 — odd/even register-count dichotomy, by exhaustive model checking |
//! | [`e2_ring`] | E2 | Theorem 3.4 — lock-step ring starvation across `(m, ℓ)` |
//! | [`e3_consensus`] | E3 | Theorems 4.1/4.2 — randomized adversary sweeps |
//! | [`e4_consensus_space`] | E4 | Theorem 6.3 — constructed disagreements below `2n − 1` registers |
//! | [`e5_renaming`] | E5 | Theorems 5.1–5.3 — uniqueness + adaptivity sweeps |
//! | [`e6_renaming_space`] | E6 | Theorem 6.5 — constructed duplicate names |
//! | [`e7_unknown_n`] | E7 | Theorem 6.2 — unknown process count attacks |
//! | [`e8_election`] | E8 | §4 note — election sweeps |
//! | [`e9_threads`] | E9 | §1 plasticity — real-thread throughput vs named baselines |
//! | [`e10_solo_steps`] | E10 | proof bounds — solo step complexity vs `n` |
//! | [`e11_hybrid`] | E11 | §8 exploration — one named register restores even-`m` mutual exclusion, model-checked |
//! | [`e12_starvation`] | E12 | §8 open-problem context — deadlock-freedom vs starvation-freedom, separated mechanically |
//! | [`e13_ordered`] | E13 | §2 variant — identifier order breaks the even-`m` wall with zero extra registers, model-checked |
//! | [`e14_scaling`] | E14 | parallel model checking — `Explorer` thread scaling on the Figure 2 consensus space |
//! | [`e15_faults`] | E15 | §2 failure model — seeded fault-injection stress sweeps across every family |
//! | [`e16_symmetry`] | E16 | §2 anonymity + Theorem 3.4 symmetry — orbit-canonicalized exploration reductions |
//! | [`e17_ordering`] | E17 | §2 atomic-register model — vector-clock sanitizer certifies minimal memory orderings per family |
//! | [`e18_profile`] | E18 | §2 operations on the clock — per-worker wall-clock phase profiles of exploration and the runtime driver |
//! | [`e19_scale`] | E19 | model checking at scale — stats-mode exploration with POR and disk spill |
//! | [`e20_incremental`] | E20 | proof-carrying exploration — cold explore vs warm certificate replay across the seven families |
//!
//! `cargo run --release -p anonreg-bench --bin repro` prints them all; the
//! Criterion benches in `benches/` time the underlying machinery.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod e10_solo_steps;
pub mod e11_hybrid;
pub mod e12_starvation;
pub mod e13_ordered;
pub mod e14_scaling;
pub mod e15_faults;
pub mod e16_symmetry;
pub mod e17_ordering;
pub mod e18_profile;
pub mod e19_scale;
pub mod e1_parity;
pub mod e20_incremental;
pub mod e2_ring;
pub mod e3_consensus;
pub mod e4_consensus_space;
pub mod e5_renaming;
pub mod e6_renaming_space;
pub mod e7_unknown_n;
pub mod e8_election;
pub mod e9_threads;

pub mod benchdiff;
pub mod benchjson;
pub mod lintsuite;
pub mod live;
pub mod table;
pub mod timing;
pub mod workload;
