//! The obstruction-freedom checker.
//!
//! "Obstruction-freedom guarantees that an active process will be able to
//! complete its pending operations in a finite number of its own steps, if
//! all the other processes 'hold still' long enough" (§2). Over a finite
//! [`StateGraph`] this is decidable exactly: from **every** reachable
//! configuration, every live process running **alone** must halt within a
//! bounded number of its own steps. [`check_obstruction_freedom`] performs
//! that check and reports the worst-case solo completion cost it saw —
//! which experiment E3 compares against the `O(n²)` bound from the proof of
//! Theorem 4.1.

use std::fmt;
use std::hash::Hash;

use anonreg_model::Machine;
use anonreg_obs::{Metric, NoopProbe, Probe, Span};

use crate::explore::StateGraph;

/// A refutation of obstruction freedom: from a reachable state, a process
/// ran alone for the full budget without halting.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ObstructionViolation {
    /// The state (id in the graph) from which the solo run was started.
    pub state: usize,
    /// The process that failed to finish.
    pub proc: usize,
    /// The solo-step budget that was exhausted.
    pub budget: usize,
}

impl fmt::Display for ObstructionViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "process {} ran alone for {} steps from state {} without terminating",
            self.proc, self.budget, self.state
        )
    }
}

impl std::error::Error for ObstructionViolation {}

/// Summary of a successful obstruction-freedom check.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ObstructionReport {
    /// Number of (state, process) solo runs performed.
    pub solo_runs: usize,
    /// The largest number of solo steps any process needed to halt.
    pub max_solo_ops: usize,
}

/// Verifies obstruction freedom over every reachable state: each live
/// process, running alone from each state, must halt within `budget` of its
/// own atomic steps.
///
/// # Errors
///
/// Returns an [`ObstructionViolation`] naming the state and process for
/// which the budget was insufficient. (For a correct obstruction-free
/// algorithm, pass a budget safely above its worst-case solo cost; the
/// returned [`ObstructionReport::max_solo_ops`] tells you how tight it
/// was.)
pub fn check_obstruction_freedom<M>(
    graph: &StateGraph<M>,
    budget: usize,
) -> Result<ObstructionReport, ObstructionViolation>
where
    M: Machine + Eq + Hash,
{
    check_obstruction_freedom_probed(graph, budget, &NoopProbe)
}

/// [`check_obstruction_freedom`] with a live [`Probe`].
///
/// Every solo run emits a `solo_run` span (keyed by process slot, length
/// in memory operations) and a `solo_ops` histogram sample, so the
/// *distribution* of solo completion costs — not just the maximum the
/// report keeps — is observable. With [`NoopProbe`] this is exactly
/// [`check_obstruction_freedom`].
///
/// # Errors
///
/// Returns an [`ObstructionViolation`] naming the state and process for
/// which the budget was insufficient.
pub fn check_obstruction_freedom_probed<M, P>(
    graph: &StateGraph<M>,
    budget: usize,
    probe: &P,
) -> Result<ObstructionReport, ObstructionViolation>
where
    M: Machine + Eq + Hash,
    P: Probe,
{
    let mut report = ObstructionReport::default();
    for (id, state) in graph.states() {
        for proc in 0..state.process_count() {
            if state.is_halted(proc) {
                continue;
            }
            let mut solo = state.clone();
            if P::ENABLED {
                probe.span_open(Span::SoloRun, proc as u64);
            }
            let (ops, halted) = solo.run_solo(proc, budget).expect("slot is valid");
            report.solo_runs += 1;
            if P::ENABLED {
                probe.span_close(Span::SoloRun, proc as u64, ops as u64);
                probe.histogram(Metric::SoloOps, 0, ops as u64);
            }
            if !halted {
                return Err(ObstructionViolation {
                    state: id,
                    proc,
                    budget,
                });
            }
            report.max_solo_ops = report.max_solo_ops.max(ops);
        }
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::explore::Explorer;
    use crate::Simulation;
    use anonreg_model::{Pid, Step, View};

    /// Halts after its first write.
    #[derive(Clone, Debug, PartialEq, Eq, Hash)]
    struct OneShot {
        pid: Pid,
        done: bool,
    }

    impl Machine for OneShot {
        type Value = u64;
        type Event = ();

        fn pid(&self) -> Pid {
            self.pid
        }

        fn register_count(&self) -> usize {
            1
        }

        fn resume(&mut self, _read: Option<u64>) -> Step<u64, ()> {
            if self.done {
                Step::Halt
            } else {
                self.done = true;
                Step::Write(0, self.pid.get())
            }
        }
    }

    /// Never halts: reads forever.
    #[derive(Clone, Debug, PartialEq, Eq, Hash)]
    struct Forever {
        pid: Pid,
    }

    impl Machine for Forever {
        type Value = u64;
        type Event = ();

        fn pid(&self) -> Pid {
            self.pid
        }

        fn register_count(&self) -> usize {
            1
        }

        fn resume(&mut self, _read: Option<u64>) -> Step<u64, ()> {
            Step::Read(0)
        }
    }

    fn pid(n: u64) -> Pid {
        Pid::new(n).unwrap()
    }

    #[test]
    fn one_shot_machines_are_obstruction_free() {
        let sim = Simulation::builder()
            .process(
                OneShot {
                    pid: pid(1),
                    done: false,
                },
                View::identity(1),
            )
            .process(
                OneShot {
                    pid: pid(2),
                    done: false,
                },
                View::identity(1),
            )
            .build()
            .unwrap();
        let graph = Explorer::new(sim).run().unwrap();
        let report = check_obstruction_freedom(&graph, 10).unwrap();
        assert!(report.solo_runs > 0);
        assert_eq!(report.max_solo_ops, 1);
    }

    #[test]
    fn probed_check_samples_every_solo_run() {
        use anonreg_obs::MemProbe;
        let sim = Simulation::builder()
            .process(
                OneShot {
                    pid: pid(1),
                    done: false,
                },
                View::identity(1),
            )
            .process(
                OneShot {
                    pid: pid(2),
                    done: false,
                },
                View::identity(1),
            )
            .build()
            .unwrap();
        let graph = Explorer::new(sim).run().unwrap();
        let probe = MemProbe::new();
        let report = check_obstruction_freedom_probed(&graph, 10, &probe).unwrap();
        let snap = probe.into_snapshot();
        let hist = snap.histogram_stat(Metric::SoloOps).unwrap();
        assert_eq!(hist.count, report.solo_runs as u64);
        assert_eq!(hist.max, report.max_solo_ops as u64);
        assert_eq!(snap.spans.len(), report.solo_runs);
        // Identical result to the unprobed checker.
        assert_eq!(check_obstruction_freedom(&graph, 10).unwrap(), report);
    }

    #[test]
    fn spinner_violates_obstruction_freedom() {
        let sim = Simulation::builder()
            .process(Forever { pid: pid(1) }, View::identity(1))
            .build()
            .unwrap();
        let graph = Explorer::new(sim).run().unwrap();
        let violation = check_obstruction_freedom(&graph, 5).unwrap_err();
        assert_eq!(violation.proc, 0);
        assert_eq!(violation.budget, 5);
        assert!(!violation.to_string().is_empty());
    }
}
