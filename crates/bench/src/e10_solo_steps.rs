//! E10 — solo step complexity vs the proofs' bounds.
//!
//! The proofs of Theorems 4.1 and 5.1 bound the cost of a solo run: a lone
//! consensus process writes each of the `2n − 1` registers once, paying
//! `2n − 1` reads per write; a lone renaming participant does the same for
//! one round. This table measures the exact solo memory-operation counts
//! of our implementations against those bounds — the measured counts must
//! sit *on or under* the analytical line.

use anonreg::consensus::AnonConsensus;
use anonreg::mutex::AnonMutex;
use anonreg::renaming::AnonRenaming;
use anonreg::Pid;
use anonreg_model::View;
use anonreg_sim::Simulation;

use crate::benchjson::{flag, slug, BenchMetric};
use crate::table::Table;

/// One row of the solo-complexity table.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Row {
    /// Algorithm measured.
    pub algo: &'static str,
    /// Processes the instance is sized for.
    pub n: usize,
    /// Registers.
    pub registers: usize,
    /// Measured solo memory operations to completion.
    pub measured: usize,
    /// The analytical bound.
    pub bound: usize,
}

impl Row {
    /// Is the measurement within the proof's bound?
    #[must_use]
    pub fn within_bound(&self) -> bool {
        self.measured <= self.bound
    }
}

fn solo_ops<M: anonreg_model::Machine>(machine: M) -> usize {
    let m = machine.register_count();
    let mut sim = Simulation::builder()
        .process(machine, View::identity(m))
        .build()
        .expect("single-process simulation");
    let (ops, halted) = sim.run_solo(0, 1_000_000).expect("slot 0 exists");
    assert!(halted, "solo runs terminate (obstruction freedom)");
    ops
}

/// Measures solo completion cost for `n ∈ 1..=max_n`.
#[must_use]
pub fn rows(max_n: usize) -> Vec<Row> {
    let mut out = Vec::new();
    for n in 1..=max_n {
        let m = 2 * n - 1;
        // Consensus: each of the m write-iterations costs m reads + 1
        // write, plus the final all-read scan.
        out.push(Row {
            algo: "consensus (Fig.2)",
            n,
            registers: m,
            measured: solo_ops(AnonConsensus::new(Pid::new(5).unwrap(), n, 9).unwrap()),
            bound: m * (m + 1) + m,
        });
        // Renaming: one solo round of the same shape (the participant wins
        // round 1 immediately).
        out.push(Row {
            algo: "renaming (Fig.3)",
            n,
            registers: m,
            measured: solo_ops(AnonRenaming::new(Pid::new(5).unwrap(), n).unwrap()),
            bound: m * (m + 1) + m,
        });
    }
    for m in [3usize, 5, 7, 9, 15] {
        // Mutex solo entry+exit: m reads + m writes (claim scan) + m view
        // reads + m exit writes = 4m.
        out.push(Row {
            algo: "mutex (Fig.1), 1 cycle",
            n: 2,
            registers: m,
            measured: solo_ops(
                AnonMutex::new(Pid::new(5).unwrap(), m)
                    .unwrap()
                    .with_cycles(1),
            ),
            bound: 4 * m,
        });
    }
    out
}

/// Renders the table for the given rows.
#[must_use]
pub fn render(rows: &[Row]) -> String {
    let mut t = Table::new(vec![
        "algorithm",
        "n",
        "regs",
        "measured ops",
        "bound",
        "within",
    ]);
    for r in rows {
        t.row(vec![
            r.algo.into(),
            r.n.to_string(),
            r.registers.to_string(),
            r.measured.to_string(),
            r.bound.to_string(),
            if r.within_bound() { "yes" } else { "NO" }.into(),
        ]);
    }
    t.render()
}

fn family_of(algo: &str) -> &'static str {
    if algo.starts_with("consensus") {
        "consensus"
    } else if algo.starts_with("renaming") {
        "renaming"
    } else {
        "mutex"
    }
}

/// Machine-readable metrics for the given rows.
#[must_use]
pub fn metrics(rows: &[Row]) -> Vec<BenchMetric> {
    let mut out = Vec::new();
    for r in rows {
        let family = family_of(r.algo);
        let base = format!("{}_n{}_r{}", slug(r.algo), r.n, r.registers);
        out.push(BenchMetric::new(
            "E10",
            family,
            format!("{base}_measured"),
            r.measured as f64,
            "ops",
        ));
        out.push(BenchMetric::new(
            "E10",
            family,
            format!("{base}_bound"),
            r.bound as f64,
            "ops",
        ));
        out.push(BenchMetric::new(
            "E10",
            family,
            format!("{base}_within_bound"),
            flag(r.within_bound()),
            "bool",
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_measurements_respect_the_bounds() {
        for row in rows(6) {
            assert!(row.within_bound(), "{row:?}");
            assert!(row.measured > 0);
        }
    }

    #[test]
    fn mutex_solo_cost_is_exactly_4m() {
        for row in rows(2) {
            if row.algo.starts_with("mutex") {
                assert_eq!(row.measured, 4 * row.registers);
            }
        }
    }
}
