//! The wall-clock profiler: per-worker, per-phase self-time.
//!
//! A [`Profiler`] is shared (usually behind an `Arc`) by every worker of
//! an instrumented run. Each worker drives its own [`PhaseTimer`] — a
//! lock-free phase *stack* whose top frame accrues self-time between
//! transitions — and flushes the finished [`WorkerProfile`] back into
//! the profiler exactly once, at worker exit. The hot path therefore
//! never takes a lock: a transition is two `Instant::now()` reads and
//! one map bump keyed by a packed path integer.
//!
//! Two export shapes come out the other end:
//!
//! * schema-v2 `profile` records (one per worker, see
//!   [`crate::schema`]) via [`Profiler::profile_lines`], and
//! * collapsed-stack flamegraph text via [`Profiler::collapsed`] —
//!   `worker0;step 12345` per line, the format `inferno` and
//!   speedscope both ingest directly.
//!
//! The phase vocabulary is a closed enum, mirroring [`crate::Metric`]:
//! the engines charge `step`/`canon`/`dedup`/`steal`/`idle`, the
//! runtime driver charges `doorway`/`waiting`/`critical`.

use std::collections::BTreeMap;
use std::sync::Mutex;
use std::time::Instant;

use crate::json::Json;
use crate::schema::STREAM_SCHEMA_VERSION;

/// One phase of an instrumented worker's life. The wire name of each
/// variant is part of schema v2 — renaming one is a schema bump.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[non_exhaustive]
pub enum Phase {
    /// Cloning a state and stepping the machine (both engines).
    Step,
    /// Canonical orbit encoding of a reached state.
    Canon,
    /// Dedup lookup/insert against the intern table or shards.
    Dedup,
    /// Stealing work from another worker's frontier (parallel engine).
    Steal,
    /// Spinning/yielding with nothing to do (parallel engine).
    Idle,
    /// A runtime process executing its entry or exit protocol.
    Doorway,
    /// A runtime process inside randomized backoff, waiting out
    /// contention.
    Waiting,
    /// A runtime process inside its critical section.
    Critical,
    /// Dedup lookup/insert against the spill-backed code store — the
    /// lock-free table probe plus the LRU/disk verification tier. The
    /// parallel engine charges interns here instead of
    /// [`Phase::Dedup`] when spilling is on, so profiles separate table
    /// time from IO.
    Spill,
}

/// All phases, in wire order. `Phase::from_code` relies on this; new
/// phases append so existing packed codes stay stable.
const PHASES: [Phase; 9] = [
    Phase::Step,
    Phase::Canon,
    Phase::Dedup,
    Phase::Steal,
    Phase::Idle,
    Phase::Doorway,
    Phase::Waiting,
    Phase::Critical,
    Phase::Spill,
];

impl Phase {
    /// The stable wire name (schema v2 `profile` frames).
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Phase::Step => "step",
            Phase::Canon => "canon",
            Phase::Dedup => "dedup",
            Phase::Steal => "steal",
            Phase::Idle => "idle",
            Phase::Doorway => "doorway",
            Phase::Waiting => "waiting",
            Phase::Critical => "critical",
            Phase::Spill => "spill",
        }
    }

    /// Packed 5-bit code (1-based so `0` can terminate a path).
    fn code(self) -> u64 {
        PHASES.iter().position(|&p| p == self).unwrap() as u64 + 1
    }

    fn from_code(code: u64) -> Option<Phase> {
        PHASES.get(code.checked_sub(1)? as usize).copied()
    }
}

/// Phase stacks are packed 5 bits per frame into a `u64` path key, so a
/// timer transition is a map bump on an integer, not a `Vec` clone.
const PATH_BITS: u32 = 5;
const MAX_DEPTH: usize = (u64::BITS / PATH_BITS) as usize;

fn path_key(stack: &[Phase]) -> u64 {
    stack
        .iter()
        .fold(0u64, |acc, p| (acc << PATH_BITS) | p.code())
}

fn decode_path(mut key: u64) -> Vec<Phase> {
    let mut rev = Vec::new();
    while key != 0 {
        let code = key & ((1 << PATH_BITS) - 1);
        rev.push(Phase::from_code(code).expect("invalid packed phase path"));
        key >>= PATH_BITS;
    }
    rev.reverse();
    rev
}

/// One worker's finished per-phase self-time, flushed into a
/// [`Profiler`] at worker exit.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct WorkerProfile {
    /// The worker index (0 for single-threaded runs / the sequential
    /// engine; the runtime uses process slots).
    pub worker: u64,
    /// `(stack, self_ns)` pairs, one per distinct phase stack, sorted
    /// by stack path. The stack string is `;`-joined phase names
    /// *without* the worker root frame — [`Profiler::collapsed`]
    /// prepends `worker{n}`.
    pub frames: Vec<(String, u64)>,
}

impl WorkerProfile {
    /// Total self-time across every frame — by construction this is the
    /// worker's measured wall-clock between its first phase push and
    /// its flush.
    #[must_use]
    pub fn total_self_ns(&self) -> u64 {
        self.frames.iter().map(|(_, ns)| ns).sum()
    }
}

/// A per-worker phase stack accruing self-time to its top frame.
///
/// Not `Sync` on purpose: one timer belongs to one worker thread. All
/// methods are O(stack depth) with no allocation on the steady path.
#[derive(Debug)]
pub struct PhaseTimer {
    worker: u64,
    stack: Vec<Phase>,
    last: Instant,
    self_ns: BTreeMap<u64, u64>,
}

impl PhaseTimer {
    /// Creates a timer for `worker`, with an empty stack (time before
    /// the first push is not charged to anything).
    #[must_use]
    pub fn new(worker: u64) -> Self {
        PhaseTimer {
            worker,
            stack: Vec::with_capacity(4),
            last: Instant::now(),
            self_ns: BTreeMap::new(),
        }
    }

    /// Charges the interval since the previous transition to the
    /// current top of stack (or to nothing when the stack is empty).
    fn charge(&mut self) {
        let now = Instant::now();
        if !self.stack.is_empty() {
            let key = path_key(&self.stack);
            *self.self_ns.entry(key).or_insert(0) +=
                now.duration_since(self.last).as_nanos() as u64;
        }
        self.last = now;
    }

    /// Pushes a nested phase.
    ///
    /// # Panics
    ///
    /// Panics if the stack would exceed the packed-path depth limit
    /// (12 frames) — phase trees here are shallow by design.
    pub fn push(&mut self, phase: Phase) {
        assert!(self.stack.len() < MAX_DEPTH, "phase stack too deep");
        self.charge();
        self.stack.push(phase);
    }

    /// Pops the current phase, returning to its parent.
    pub fn pop(&mut self) {
        self.charge();
        self.stack.pop();
    }

    /// Replaces the top of stack (or pushes onto an empty stack): the
    /// cheap flat-phase transition both engines use.
    pub fn switch(&mut self, phase: Phase) {
        if self.stack.last() == Some(&phase) {
            return;
        }
        self.charge();
        match self.stack.last_mut() {
            Some(top) => *top = phase,
            None => self.stack.push(phase),
        }
    }

    /// The current top of stack, if any.
    #[must_use]
    pub fn current(&self) -> Option<Phase> {
        self.stack.last().copied()
    }

    /// Charges the final interval and collapses into a
    /// [`WorkerProfile`].
    #[must_use]
    pub fn finish(mut self) -> WorkerProfile {
        self.charge();
        let frames = self
            .self_ns
            .iter()
            .map(|(&key, &ns)| {
                let names: Vec<&str> = decode_path(key).iter().map(|p| p.name()).collect();
                (names.join(";"), ns)
            })
            .collect::<BTreeMap<String, u64>>()
            .into_iter()
            .collect();
        WorkerProfile {
            worker: self.worker,
            frames,
        }
    }
}

/// The shared collector: workers flush [`WorkerProfile`]s in, exports
/// come out. Cheap to share behind an `Arc`; the lock is only touched
/// once per worker lifetime (plus at export).
#[derive(Debug, Default)]
pub struct Profiler {
    workers: Mutex<Vec<WorkerProfile>>,
}

impl Profiler {
    /// Creates an empty profiler.
    #[must_use]
    pub fn new() -> Self {
        Profiler::default()
    }

    /// Starts a [`PhaseTimer`] for `worker`. Purely a convenience —
    /// the timer holds no reference back; flush it with
    /// [`Profiler::record`].
    #[must_use]
    pub fn timer(&self, worker: u64) -> PhaseTimer {
        PhaseTimer::new(worker)
    }

    /// Flushes one worker's finished profile.
    ///
    /// # Panics
    ///
    /// Panics if a recording thread panicked while holding the lock.
    pub fn record(&self, profile: WorkerProfile) {
        self.workers
            .lock()
            .expect("profiler lock poisoned")
            .push(profile);
    }

    /// Everything flushed so far, sorted by worker index.
    ///
    /// # Panics
    ///
    /// Panics if a recording thread panicked while holding the lock.
    #[must_use]
    pub fn profiles(&self) -> Vec<WorkerProfile> {
        let mut out = self.workers.lock().expect("profiler lock poisoned").clone();
        out.sort_by_key(|w| w.worker);
        out
    }

    /// Total self-time across every worker and frame.
    #[must_use]
    pub fn total_self_ns(&self) -> u64 {
        self.profiles()
            .iter()
            .map(WorkerProfile::total_self_ns)
            .sum()
    }

    /// Collapsed-stack flamegraph text: one `worker{n};phase[;…] ns`
    /// line per frame, ready for `inferno-flamegraph` or speedscope.
    #[must_use]
    pub fn collapsed(&self) -> String {
        let mut out = String::new();
        for w in self.profiles() {
            for (stack, ns) in &w.frames {
                out.push_str(&format!("worker{};{stack} {ns}\n", w.worker));
            }
        }
        out
    }

    /// Schema-v2 `profile` records, one per worker, with sequence
    /// numbers `seq_base..`. The caller supplies the stream envelope
    /// (`run` id and elapsed milliseconds).
    #[must_use]
    pub fn profile_lines(&self, seq_base: u64, run: &str, elapsed_ms: u64) -> Vec<Json> {
        self.profiles()
            .iter()
            .enumerate()
            .map(|(i, w)| {
                let frames = w
                    .frames
                    .iter()
                    .map(|(stack, ns)| {
                        Json::obj(vec![
                            ("stack", Json::Str(stack.clone())),
                            ("self_ns", Json::U64(*ns)),
                        ])
                    })
                    .collect();
                Json::obj(vec![
                    ("v", Json::U64(STREAM_SCHEMA_VERSION)),
                    ("t", Json::Str("profile".to_string())),
                    ("seq", Json::U64(seq_base + i as u64)),
                    ("run", Json::Str(run.to_string())),
                    ("elapsed_ms", Json::U64(elapsed_ms)),
                    ("worker", Json::U64(w.worker)),
                    ("frames", Json::Arr(frames)),
                ])
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::validate_value;

    #[test]
    fn phase_names_are_stable() {
        // Schema v2 vocabulary — a rename here is a schema bump.
        assert_eq!(Phase::Step.name(), "step");
        assert_eq!(Phase::Canon.name(), "canon");
        assert_eq!(Phase::Dedup.name(), "dedup");
        assert_eq!(Phase::Steal.name(), "steal");
        assert_eq!(Phase::Idle.name(), "idle");
        assert_eq!(Phase::Doorway.name(), "doorway");
        assert_eq!(Phase::Waiting.name(), "waiting");
        assert_eq!(Phase::Critical.name(), "critical");
        assert_eq!(Phase::Spill.name(), "spill");
    }

    #[test]
    fn path_pack_roundtrips() {
        let stack = [Phase::Doorway, Phase::Waiting, Phase::Critical];
        assert_eq!(decode_path(path_key(&stack)), stack.to_vec());
        assert_eq!(decode_path(0), Vec::<Phase>::new());
    }

    #[test]
    fn timer_accrues_self_time_to_the_top_frame() {
        let mut t = PhaseTimer::new(3);
        t.push(Phase::Doorway);
        std::thread::sleep(std::time::Duration::from_millis(2));
        t.push(Phase::Waiting);
        std::thread::sleep(std::time::Duration::from_millis(2));
        t.pop();
        let profile = t.finish();
        assert_eq!(profile.worker, 3);
        let stacks: Vec<&str> = profile.frames.iter().map(|(s, _)| s.as_str()).collect();
        assert_eq!(stacks, vec!["doorway", "doorway;waiting"]);
        // Both frames saw their ~2 ms of *self* time.
        assert!(profile.frames.iter().all(|&(_, ns)| ns >= 1_000_000));
    }

    #[test]
    fn switch_is_flat_and_idempotent() {
        let mut t = PhaseTimer::new(0);
        t.switch(Phase::Step);
        t.switch(Phase::Step); // no-op
        t.switch(Phase::Canon);
        t.switch(Phase::Dedup);
        let profile = t.finish();
        let stacks: Vec<&str> = profile.frames.iter().map(|(s, _)| s.as_str()).collect();
        assert_eq!(stacks, vec!["canon", "dedup", "step"]);
    }

    #[test]
    fn finish_total_matches_wall_clock() {
        let start = Instant::now();
        let mut t = PhaseTimer::new(0);
        t.push(Phase::Step);
        std::thread::sleep(std::time::Duration::from_millis(5));
        t.switch(Phase::Canon);
        std::thread::sleep(std::time::Duration::from_millis(5));
        let profile = t.finish();
        let wall = start.elapsed().as_nanos() as u64;
        let total = profile.total_self_ns();
        // Self-times partition the timer's lifetime: the sum can only
        // lag wall-clock by the (sub-microsecond) gaps outside frames.
        assert!(total <= wall);
        assert!(total >= wall / 2, "self-time {total} vs wall {wall}");
    }

    #[test]
    fn collapsed_and_profile_lines_are_schema_valid() {
        let profiler = Profiler::new();
        let mut t = profiler.timer(1);
        t.switch(Phase::Step);
        std::thread::sleep(std::time::Duration::from_millis(1));
        profiler.record(t.finish());
        let mut t0 = profiler.timer(0);
        t0.switch(Phase::Idle);
        profiler.record(t0.finish());

        let collapsed = profiler.collapsed();
        assert!(collapsed.contains("worker1;step "));
        assert!(collapsed.lines().all(|l| {
            let mut parts = l.rsplitn(2, ' ');
            parts.next().unwrap().parse::<u64>().is_ok()
        }));

        let lines = profiler.profile_lines(7, "run-1", 42);
        assert_eq!(lines.len(), 2);
        for (i, line) in lines.iter().enumerate() {
            validate_value(line, 1).unwrap();
            assert_eq!(line.get("seq").and_then(Json::as_u64), Some(7 + i as u64));
        }
        assert!(profiler.total_self_ns() >= 1_000_000);
    }
}
