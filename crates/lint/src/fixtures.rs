//! Negative fixtures: minimal machines that each violate exactly one
//! lint, plus a positive control.
//!
//! These are the analyzer's regression suite — every lint must catch its
//! fixture and pass the control — and double as documentation of what
//! each lint actually rejects. They live in the library (not `#[cfg(test)]`)
//! so downstream crates (`anonreg-bench`'s `check lint` subcommand, the
//! workspace property tests) can demonstrate the failure paths too.

use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use anonreg_model::{Machine, Pid, Step};

fn fixture_pid(n: u64) -> Pid {
    Pid::new(n).expect("fixture pids are nonzero")
}

/// **L1 violator**: claims `m` registers but writes to local index `m`.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct OutOfBounds {
    pid: Pid,
    m: usize,
    done: bool,
}

impl OutOfBounds {
    /// A machine over `m` registers whose first step writes to index `m`.
    #[must_use]
    pub fn new(m: usize) -> Self {
        OutOfBounds {
            pid: fixture_pid(1),
            m,
            done: false,
        }
    }
}

impl Machine for OutOfBounds {
    type Value = u64;
    type Event = ();

    fn pid(&self) -> Pid {
        self.pid
    }

    fn register_count(&self) -> usize {
        self.m
    }

    fn resume(&mut self, _read: Option<u64>) -> Step<u64, ()> {
        if self.done {
            Step::Halt
        } else {
            self.done = true;
            Step::Write(self.m, 1) // one past the end
        }
    }
}

/// **L2 violator (determinism)**: consults a shared counter that its
/// `Eq`/`Hash` deliberately ignore, so two resumptions of "the same"
/// state step differently — `resume` is not a pure function of (state,
/// input).
#[derive(Clone, Debug)]
pub struct Flicker {
    pid: Pid,
    phase: u8,
    coin: Arc<AtomicUsize>,
}

impl Flicker {
    /// A machine whose first step depends on hidden shared state.
    #[must_use]
    pub fn new() -> Self {
        Flicker {
            pid: fixture_pid(1),
            phase: 0,
            coin: Arc::new(AtomicUsize::new(0)),
        }
    }
}

impl Default for Flicker {
    fn default() -> Self {
        Flicker::new()
    }
}

impl PartialEq for Flicker {
    fn eq(&self, other: &Self) -> bool {
        // The coin is hidden from state identity — that is the bug.
        self.pid == other.pid && self.phase == other.phase
    }
}

impl Eq for Flicker {}

impl Hash for Flicker {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.pid.hash(state);
        self.phase.hash(state);
    }
}

impl Machine for Flicker {
    type Value = u64;
    type Event = ();

    fn pid(&self) -> Pid {
        self.pid
    }

    fn register_count(&self) -> usize {
        1
    }

    fn resume(&mut self, _read: Option<u64>) -> Step<u64, ()> {
        if self.phase > 0 {
            return Step::Halt;
        }
        self.phase = 1;
        // Clones share the coin, so replaying the "same" state flips it.
        if self.coin.fetch_add(1, Ordering::Relaxed).is_multiple_of(2) {
            Step::Write(0, 1)
        } else {
            Step::Write(0, 2)
        }
    }
}

/// **L2 violator (halt stability)**: emits `Halt`, then keeps issuing
/// writes if resumed again — its "halt" is not terminal.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct Zombie {
    pid: Pid,
    halted_once: bool,
}

impl Zombie {
    /// A machine that halts, then rises again.
    #[must_use]
    pub fn new() -> Self {
        Zombie {
            pid: fixture_pid(1),
            halted_once: false,
        }
    }
}

impl Default for Zombie {
    fn default() -> Self {
        Zombie::new()
    }
}

impl Machine for Zombie {
    type Value = u64;
    type Event = ();

    fn pid(&self) -> Pid {
        self.pid
    }

    fn register_count(&self) -> usize {
        1
    }

    fn resume(&mut self, _read: Option<u64>) -> Step<u64, ()> {
        if self.halted_once {
            Step::Write(0, 666)
        } else {
            self.halted_once = true;
            Step::Halt
        }
    }
}

/// **L3 violator**: branches on the *numeric content* of its identifier
/// (its parity) — forbidden by the §2 symmetry restriction, which allows
/// identifiers to be compared only for equality. Processes with pids of
/// different parity write to different registers.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct Asymmetric {
    pid: Pid,
    done: bool,
}

impl Asymmetric {
    /// A machine whose control flow depends on `pid % 2`.
    #[must_use]
    pub fn new(pid: Pid) -> Self {
        Asymmetric { pid, done: false }
    }
}

impl Machine for Asymmetric {
    type Value = u64;
    type Event = ();

    fn pid(&self) -> Pid {
        self.pid
    }

    fn register_count(&self) -> usize {
        2
    }

    fn resume(&mut self, _read: Option<u64>) -> Step<u64, ()> {
        if self.done {
            Step::Halt
        } else {
            self.done = true;
            // Branching on identifier content, not equality:
            let target = (self.pid.get() % 2) as usize;
            Step::Write(target, self.pid.get())
        }
    }
}

/// **L4 violator**: marks a register and halts without cleaning up — a
/// mutex whose exit code forgot the paper's "write 0 into all registers
/// written" obligation.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct Messy {
    pid: Pid,
    done: bool,
}

impl Messy {
    /// A machine that leaves register 0 dirty.
    #[must_use]
    pub fn new() -> Self {
        Messy {
            pid: fixture_pid(1),
            done: false,
        }
    }
}

impl Default for Messy {
    fn default() -> Self {
        Messy::new()
    }
}

impl Machine for Messy {
    type Value = u64;
    type Event = ();

    fn pid(&self) -> Pid {
        self.pid
    }

    fn register_count(&self) -> usize {
        1
    }

    fn resume(&mut self, _read: Option<u64>) -> Step<u64, ()> {
        if self.done {
            Step::Halt
        } else {
            self.done = true;
            Step::Write(0, 7)
        }
    }
}

/// **L5 violator**: re-reads register 0 forever; never halts, even solo —
/// not obstruction-free.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct Diverger {
    pid: Pid,
}

impl Diverger {
    /// A machine that spins on reads unconditionally.
    #[must_use]
    pub fn new() -> Self {
        Diverger {
            pid: fixture_pid(1),
        }
    }
}

impl Default for Diverger {
    fn default() -> Self {
        Diverger::new()
    }
}

impl Machine for Diverger {
    type Value = u64;
    type Event = ();

    fn pid(&self) -> Pid {
        self.pid
    }

    fn register_count(&self) -> usize {
        1
    }

    fn resume(&mut self, _read: Option<u64>) -> Step<u64, ()> {
        Step::Read(0)
    }
}

/// **L6 violator**: writes a value that needs more than 32 bits, which
/// would panic inside `Pack64::pack` at deployment time.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct WideWriter {
    pid: Pid,
    done: bool,
}

impl WideWriter {
    /// A machine that writes `1 << 40`.
    #[must_use]
    pub fn new() -> Self {
        WideWriter {
            pid: fixture_pid(1),
            done: false,
        }
    }
}

impl Default for WideWriter {
    fn default() -> Self {
        WideWriter::new()
    }
}

impl Machine for WideWriter {
    type Value = u64;
    type Event = ();

    fn pid(&self) -> Pid {
        self.pid
    }

    fn register_count(&self) -> usize {
        1
    }

    fn resume(&mut self, _read: Option<u64>) -> Step<u64, ()> {
        if self.done {
            Step::Halt
        } else {
            self.done = true;
            Step::Write(0, 1 << 40)
        }
    }
}

/// **Positive control**: reads register 0, stamps it with its identifier,
/// restores the initial 0, halts. Passes every lint (pids below
/// `u32::MAX` assumed for L6; use small pids).
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct WellBehaved {
    pid: Pid,
    phase: u8,
}

impl WellBehaved {
    /// A lint-clean machine with the given identifier.
    #[must_use]
    pub fn new(pid: Pid) -> Self {
        WellBehaved { pid, phase: 0 }
    }
}

impl Machine for WellBehaved {
    type Value = u64;
    type Event = ();

    fn pid(&self) -> Pid {
        self.pid
    }

    fn register_count(&self) -> usize {
        1
    }

    fn resume(&mut self, read: Option<u64>) -> Step<u64, ()> {
        match self.phase {
            0 => {
                self.phase = 1;
                Step::Read(0)
            }
            1 => {
                let _observed = read.expect("read result after Step::Read");
                self.phase = 2;
                Step::Write(0, self.pid.get())
            }
            2 => {
                self.phase = 3;
                Step::Write(0, 0)
            }
            _ => Step::Halt,
        }
    }
}
