//! Deterministic sanitized execution: machines driven over
//! [`SanitizedRegister`]s with explicit slots, a seeded scheduler, and
//! [`FaultPlan`] crash/stall/restart injection.
//!
//! The thread runtime drives machines in real time, so its interleavings
//! are not replayable; the sanitizer needs replayable witnesses. This
//! executor is the middle ground the e15 fault harness occupies for
//! threads, rebuilt single-threaded: one seeded RNG picks which live
//! participant performs its next machine step, every shared-memory
//! operation goes through [`SanitizedRegister::read_as`] /
//! [`write_as`](SanitizedRegister::write_as) at the context's
//! [`OrderingPlan`](crate::plan::OrderingPlan), and fault points fire
//! against per-process machine-step counters exactly as
//! [`FaultyDriver`](anonreg_runtime::FaultyDriver) fires them. Same seed,
//! same plan, same machines ⇒ the same run, operation for operation —
//! which is what makes a printed violation witness replayable.

use std::sync::Arc;

use anonreg_model::rng::Rng64;
use anonreg_model::{Machine, Step, View};
use anonreg_runtime::{FaultKind, FaultPlan, FaultPoint};

use crate::plan::OrderingPlan;
use crate::register::{CtxSnapshot, SanitizedRegister, SanitizerConfig, SanitizerCtx};

/// Factory minting incarnation `i` of a participant: its machine and the
/// view it runs under (incarnation 0 is the original process).
pub type Factory<M> = Box<dyn FnMut(u64) -> (M, View)>;

/// What one recorded execution event was.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ExecEventKind<E> {
    /// The machine announced an observable milestone.
    Event(E),
    /// A [`FaultKind::Crash`] fired: the participant never steps again.
    Crashed,
    /// A [`FaultKind::Stall`] fired: the participant paused until the
    /// recorded number of foreign steps elapsed.
    Stalled,
    /// A [`FaultKind::Restart`] fired: a fresh incarnation took over.
    Restarted,
}

/// One entry of the execution's event log.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ExecEvent<E> {
    /// Global scheduler step at which it happened.
    pub step: u64,
    /// The participant (slot) it happened to.
    pub slot: usize,
    /// What happened.
    pub kind: ExecEventKind<E>,
}

/// Outcome of a bounded sanitized run.
#[derive(Clone, Debug)]
pub struct ExecReport<E> {
    /// Machine events and fault firings, in scheduler order.
    pub events: Vec<ExecEvent<E>>,
    /// Global scheduler steps consumed.
    pub steps: u64,
    /// `true` if the step budget ran out before every live participant
    /// halted.
    pub timed_out: bool,
    /// Crash points fired.
    pub crashes: u64,
    /// Stall points fired.
    pub stalls: u64,
    /// Restart points fired.
    pub restarts: u64,
    /// The sanitizer's counters and violations at the end of the run.
    pub snapshot: CtxSnapshot,
}

impl<E> ExecReport<E> {
    /// Just the machine events, in order — what safety monitors consume.
    pub fn machine_events(&self) -> impl Iterator<Item = (usize, &E)> {
        self.events.iter().filter_map(|e| match &e.kind {
            ExecEventKind::Event(event) => Some((e.slot, event)),
            _ => None,
        })
    }
}

struct Proc<M: Machine> {
    factory: Factory<M>,
    machine: M,
    view: View,
    /// Value to feed the next `resume` (set after a `Step::Read`).
    pending: Option<M::Value>,
    halted: bool,
    crashed: bool,
    /// Machine steps performed, cumulative across incarnations — the
    /// counter fault points fire against.
    my_steps: u64,
    incarnations: u64,
    /// Global step until which this participant is stalled.
    stalled_until: u64,
    faults: Vec<FaultPoint>,
    next_fault: usize,
}

/// A deterministic sanitized execution over one shared memory.
pub struct SanitizedExec<M: Machine> {
    ctx: Arc<SanitizerCtx>,
    registers: Vec<SanitizedRegister<M::Value>>,
    procs: Vec<Proc<M>>,
    rng: Rng64,
    steps: u64,
    events: Vec<ExecEvent<M::Event>>,
    crashes: u64,
    stalls: u64,
    restarts: u64,
}

impl<M: Machine> SanitizedExec<M> {
    /// Builds an execution over `m` physical registers (all initialized to
    /// `M::Value::default()`), one participant per factory, scheduling and
    /// stale-read choice both derived from `seed`.
    ///
    /// # Panics
    ///
    /// Panics if a factory mints a view over a number of registers other
    /// than `m`.
    #[must_use]
    pub fn new(
        seed: u64,
        m: usize,
        config: SanitizerConfig,
        plan: OrderingPlan,
        factories: Vec<Factory<M>>,
    ) -> Self {
        let config = SanitizerConfig { seed, ..config };
        let ctx = Arc::new(SanitizerCtx::new(config, plan));
        let registers = (0..m)
            .map(|_| SanitizedRegister::attached(&ctx, M::Value::default()))
            .collect();
        let procs = factories
            .into_iter()
            .map(|mut factory| {
                let (machine, view) = factory(0);
                assert_eq!(view.len(), m, "view must cover the physical memory");
                Proc {
                    factory,
                    machine,
                    view,
                    pending: None,
                    halted: false,
                    crashed: false,
                    my_steps: 0,
                    incarnations: 1,
                    stalled_until: 0,
                    faults: Vec::new(),
                    next_fault: 0,
                }
            })
            .collect();
        SanitizedExec {
            ctx,
            registers,
            procs,
            rng: Rng64::seed_from_u64(seed),
            steps: 0,
            events: Vec::new(),
            crashes: 0,
            stalls: 0,
            restarts: 0,
        }
    }

    /// Adopts `plan`'s fault schedule, matching points to participants by
    /// their machines' pids (as [`FaultyDriver`](anonreg_runtime::FaultyDriver)
    /// does).
    #[must_use]
    pub fn with_fault_plan(mut self, plan: &FaultPlan) -> Self {
        for proc in &mut self.procs {
            proc.faults = plan.for_pid(proc.machine.pid());
            proc.next_fault = 0;
        }
        self
    }

    /// The shared sanitizer context.
    #[must_use]
    pub fn ctx(&self) -> &Arc<SanitizerCtx> {
        &self.ctx
    }

    /// Runs until every participant has halted or crashed, or `max_steps`
    /// scheduler steps elapse.
    #[must_use]
    pub fn run(mut self, max_steps: u64) -> ExecReport<M::Event> {
        let timed_out = loop {
            if self.procs.iter().all(|p| p.halted || p.crashed) {
                break false;
            }
            if self.steps >= max_steps {
                break true;
            }
            // A stall parks a participant until a later global step; when
            // only stalled participants remain live, fast-forward to the
            // earliest release instead of burning budget on empty picks.
            let runnable: Vec<usize> = self
                .procs
                .iter()
                .enumerate()
                .filter(|(_, p)| !p.halted && !p.crashed && p.stalled_until <= self.steps)
                .map(|(i, _)| i)
                .collect();
            if runnable.is_empty() {
                let wake = self
                    .procs
                    .iter()
                    .filter(|p| !p.halted && !p.crashed)
                    .map(|p| p.stalled_until)
                    .min()
                    .expect("a live participant exists");
                self.steps = wake.min(max_steps);
                continue;
            }
            let slot = runnable[self.rng.gen_index(runnable.len())];
            self.steps += 1;
            self.advance(slot);
        };
        ExecReport {
            events: self.events,
            steps: self.steps,
            timed_out,
            crashes: self.crashes,
            stalls: self.stalls,
            restarts: self.restarts,
            snapshot: self.ctx.snapshot(),
        }
    }

    fn record(&mut self, slot: usize, kind: ExecEventKind<M::Event>) {
        self.events.push(ExecEvent {
            step: self.steps,
            slot,
            kind,
        });
    }

    fn advance(&mut self, slot: usize) {
        // Fire every fault point due at the participant's current machine-
        // step count, in schedule order (same firing rule as FaultyDriver).
        while let Some(point) = self.procs[slot]
            .faults
            .get(self.procs[slot].next_fault)
            .copied()
        {
            if point.at_op > self.procs[slot].my_steps {
                break;
            }
            self.procs[slot].next_fault += 1;
            match point.kind {
                FaultKind::Crash => {
                    self.procs[slot].crashed = true;
                    self.crashes += 1;
                    self.record(slot, ExecEventKind::Crashed);
                    return;
                }
                FaultKind::Stall { foreign_ops } => {
                    self.procs[slot].stalled_until = self.steps + foreign_ops;
                    self.stalls += 1;
                    self.record(slot, ExecEventKind::Stalled);
                    if self.procs[slot].stalled_until > self.steps {
                        return;
                    }
                }
                FaultKind::Restart => {
                    let incarnation = self.procs[slot].incarnations;
                    let (machine, view) = (self.procs[slot].factory)(incarnation);
                    assert_eq!(view.len(), self.registers.len());
                    let proc = &mut self.procs[slot];
                    proc.machine = machine;
                    proc.view = view;
                    proc.pending = None;
                    proc.incarnations += 1;
                    self.restarts += 1;
                    self.record(slot, ExecEventKind::Restarted);
                }
            }
        }

        let pending = self.procs[slot].pending.take();
        let step = self.procs[slot].machine.resume(pending);
        match step {
            Step::Read(local) => {
                let physical = self.procs[slot].view.physical(local);
                let value = self.registers[physical].read_as(slot, self.ctx.plan().read);
                self.procs[slot].pending = Some(value);
                self.procs[slot].my_steps += 1;
            }
            Step::Write(local, value) => {
                let physical = self.procs[slot].view.physical(local);
                let ordering = self.ctx.plan().of(SanitizedRegister::classify(&value));
                self.registers[physical].write_as(slot, value, ordering);
                self.procs[slot].my_steps += 1;
            }
            Step::Event(event) => self.record(slot, ExecEventKind::Event(event)),
            Step::Halt => self.procs[slot].halted = true,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use anonreg::mutex::{AnonMutex, MutexEvent};
    use anonreg_model::Pid;

    fn pid(n: u64) -> Pid {
        Pid::new(n).unwrap()
    }

    fn mutex_factories(n: u64, m: usize) -> Vec<Factory<AnonMutex>> {
        (1..=n)
            .map(|id| {
                let f: Factory<AnonMutex> = Box::new(move |incarnation| {
                    let mut rng = Rng64::seed_from_u64(id ^ (incarnation << 32) ^ 0xfeed);
                    let view = View::from_perm(rng.permutation(m)).unwrap();
                    (AnonMutex::new(pid(id), m).unwrap().with_cycles(1), view)
                });
                f
            })
            .collect()
    }

    #[test]
    fn seqcst_mutex_run_is_clean_and_mutually_exclusive() {
        let exec = SanitizedExec::new(
            11,
            3,
            SanitizerConfig::default(),
            OrderingPlan::seq_cst(),
            mutex_factories(2, 3),
        );
        let report = exec.run(200_000);
        assert!(!report.timed_out);
        assert_eq!(report.snapshot.violation_count, 0);
        let mut inside = 0u32;
        for (_, ev) in report.machine_events() {
            match ev {
                MutexEvent::Enter => {
                    inside += 1;
                    assert_eq!(inside, 1, "mutual exclusion violated");
                }
                MutexEvent::Exit | MutexEvent::Aborted => inside -= 1,
            }
        }
    }

    #[test]
    fn same_seed_replays_the_same_run() {
        let run = |seed| {
            SanitizedExec::new(
                seed,
                3,
                SanitizerConfig::default(),
                OrderingPlan::seq_cst(),
                mutex_factories(2, 3),
            )
            .run(200_000)
        };
        let (a, b) = (run(5), run(5));
        assert_eq!(a.events, b.events);
        assert_eq!(a.steps, b.steps);
        assert_eq!(a.snapshot.reads, b.snapshot.reads);
        let c = run(6);
        assert!(a.events != c.events || a.steps != c.steps);
    }

    #[test]
    fn crash_fault_fires_and_survivor_completes() {
        let plan = FaultPlan::new(0).crash(pid(1), 2);
        let exec = SanitizedExec::new(
            3,
            3,
            SanitizerConfig::default(),
            OrderingPlan::seq_cst(),
            mutex_factories(2, 3),
        )
        .with_fault_plan(&plan);
        let report = exec.run(200_000);
        assert_eq!(report.crashes, 1);
        assert!(!report.timed_out, "survivor must still finish");
        assert!(report
            .events
            .iter()
            .any(|e| e.slot == 0 && e.kind == ExecEventKind::Crashed));
        // The survivor (slot 1) still enters and exits.
        assert!(report
            .machine_events()
            .any(|(slot, ev)| slot == 1 && *ev == MutexEvent::Enter));
    }

    #[test]
    fn stall_and_restart_fire_without_hanging() {
        let plan = FaultPlan::new(0).stall(pid(1), 1, 6).restart(pid(2), 2);
        let exec = SanitizedExec::new(
            9,
            3,
            SanitizerConfig::default(),
            OrderingPlan::seq_cst(),
            mutex_factories(2, 3),
        )
        .with_fault_plan(&plan);
        let report = exec.run(400_000);
        assert_eq!(report.stalls, 1);
        assert_eq!(report.restarts, 1);
        assert!(!report.timed_out);
    }
}
