//! Process identifiers and identifier renaming.

use std::fmt;
use std::num::NonZeroU64;
use std::str::FromStr;

/// A process identifier: a positive integer, unique per process.
///
/// The paper's model is *symmetric with equality*: a process may store,
/// retrieve and compare identifiers **for equality only**. It cannot inspect
/// the bits of an identifier, order two identifiers, or test an identifier
/// against a constant. `Pid` enforces this statically by implementing
/// [`PartialEq`]/[`Eq`]/[`Hash`] but deliberately **not** `Ord`/`PartialOrd`.
///
/// Identifiers are *not* assumed to come from `{1..n}`; any positive integer
/// is a valid identifier, and a process does not a priori know the
/// identifiers of the other processes.
///
/// Zero is reserved: the paper's algorithms use `0` as the initial "empty"
/// register content, so a `Pid` can never be zero. [`Pid::new`] returns
/// `None` for zero.
///
/// # Example
///
/// ```
/// use anonreg_model::Pid;
///
/// let a = Pid::new(42).unwrap();
/// let b = Pid::new(42).unwrap();
/// let c = Pid::new(7).unwrap();
/// assert_eq!(a, b);
/// assert_ne!(a, c);
/// assert!(Pid::new(0).is_none());
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct Pid(NonZeroU64);

impl Pid {
    /// Creates a process identifier from a positive integer.
    ///
    /// Returns `None` if `id` is zero (zero encodes "empty register" in the
    /// paper's algorithms and therefore cannot name a process).
    #[must_use]
    pub fn new(id: u64) -> Option<Self> {
        NonZeroU64::new(id).map(Pid)
    }

    /// Returns the raw integer value of the identifier.
    ///
    /// This exists so identifiers can be *stored* in registers (the paper's
    /// model permits writing identifiers to shared memory). Algorithm code
    /// must only ever compare the returned value for equality; harness and
    /// test code may of course do whatever it likes.
    #[must_use]
    pub fn get(self) -> u64 {
        self.0.get()
    }
}

impl fmt::Debug for Pid {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Pid({})", self.0)
    }
}

impl fmt::Display for Pid {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl From<NonZeroU64> for Pid {
    fn from(id: NonZeroU64) -> Self {
        Pid(id)
    }
}

impl From<Pid> for u64 {
    fn from(pid: Pid) -> Self {
        pid.get()
    }
}

/// Error returned when parsing a [`Pid`] from a string fails.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParsePidError {
    kind: ParsePidErrorKind,
}

#[derive(Clone, Debug, PartialEq, Eq)]
enum ParsePidErrorKind {
    NotAnInteger,
    Zero,
}

impl fmt::Display for ParsePidError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.kind {
            ParsePidErrorKind::NotAnInteger => write!(f, "process id must be a positive integer"),
            ParsePidErrorKind::Zero => write!(f, "process id must be nonzero"),
        }
    }
}

impl std::error::Error for ParsePidError {}

impl FromStr for Pid {
    type Err = ParsePidError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let raw: u64 = s.parse().map_err(|_| ParsePidError {
            kind: ParsePidErrorKind::NotAnInteger,
        })?;
        Pid::new(raw).ok_or(ParsePidError {
            kind: ParsePidErrorKind::Zero,
        })
    }
}

/// Structural renaming of the process identifiers embedded in a value.
///
/// The symmetry arguments behind the paper's lower bounds (Theorem 3.4 and
/// the ring adversary of `anonreg-lower`) rest on the observation that in a
/// comparison-for-equality-only model, two process states are interchangeable
/// when one can be obtained from the other by a consistent renaming of
/// identifiers. `PidMap` makes that renaming executable: the simulator's
/// symmetry checker maps one process's state through a pid bijection and
/// tests it for equality against another's.
///
/// Implementations must apply `f` to **every** identifier embedded in the
/// value — missing one silently weakens the symmetry checker.
///
/// # Example
///
/// ```
/// use anonreg_model::{Pid, PidMap};
///
/// let p = Pid::new(1).unwrap();
/// let q = Pid::new(2).unwrap();
/// let renamed = Some(p).map_pids(&mut |x| if x == p { q } else { x });
/// assert_eq!(renamed, Some(q));
/// ```
pub trait PidMap: Sized {
    /// Returns a copy of `self` with every embedded identifier replaced by
    /// `f(identifier)`.
    #[must_use]
    fn map_pids(&self, f: &mut dyn FnMut(Pid) -> Pid) -> Self;
}

impl PidMap for Pid {
    fn map_pids(&self, f: &mut dyn FnMut(Pid) -> Pid) -> Self {
        f(*self)
    }
}

impl<T: PidMap> PidMap for Option<T> {
    fn map_pids(&self, f: &mut dyn FnMut(Pid) -> Pid) -> Self {
        self.as_ref().map(|v| v.map_pids(f))
    }
}

impl<T: PidMap> PidMap for Vec<T> {
    fn map_pids(&self, f: &mut dyn FnMut(Pid) -> Pid) -> Self {
        self.iter().map(|v| v.map_pids(f)).collect()
    }
}

impl<A: PidMap, B: PidMap> PidMap for (A, B) {
    fn map_pids(&self, f: &mut dyn FnMut(Pid) -> Pid) -> Self {
        (self.0.map_pids(f), self.1.map_pids(f))
    }
}

/// `u64` values are treated as *encoded* identifiers-or-zero: zero (the empty
/// register marker) is left untouched, any other value is renamed as an
/// identifier. This matches how the paper's algorithms store identifiers in
/// registers.
impl PidMap for u64 {
    fn map_pids(&self, f: &mut dyn FnMut(Pid) -> Pid) -> Self {
        match Pid::new(*self) {
            Some(pid) => f(pid).get(),
            None => 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::hash_map::DefaultHasher;
    use std::hash::{Hash, Hasher};

    fn hash_of<T: Hash>(value: &T) -> u64 {
        let mut h = DefaultHasher::new();
        value.hash(&mut h);
        h.finish()
    }

    #[test]
    fn new_rejects_zero() {
        assert!(Pid::new(0).is_none());
        assert_eq!(Pid::new(1).map(Pid::get), Some(1));
        assert_eq!(Pid::new(u64::MAX).map(Pid::get), Some(u64::MAX));
    }

    #[test]
    fn equality_and_hash_agree() {
        let a = Pid::new(99).unwrap();
        let b = Pid::new(99).unwrap();
        assert_eq!(a, b);
        assert_eq!(hash_of(&a), hash_of(&b));
    }

    #[test]
    fn display_and_debug_are_nonempty() {
        let p = Pid::new(5).unwrap();
        assert_eq!(p.to_string(), "5");
        assert_eq!(format!("{p:?}"), "Pid(5)");
    }

    #[test]
    fn parse_round_trip() {
        let p: Pid = "17".parse().unwrap();
        assert_eq!(p.get(), 17);
        assert!("0".parse::<Pid>().is_err());
        assert!("seven".parse::<Pid>().is_err());
        assert!("-3".parse::<Pid>().is_err());
    }

    #[test]
    fn parse_errors_display() {
        let zero = "0".parse::<Pid>().unwrap_err();
        let junk = "x".parse::<Pid>().unwrap_err();
        assert!(zero.to_string().contains("nonzero"));
        assert!(junk.to_string().contains("positive integer"));
    }

    #[test]
    fn pid_map_on_u64_preserves_zero() {
        let p = Pid::new(3).unwrap();
        let q = Pid::new(4).unwrap();
        let mut swap = |x: Pid| if x == p { q } else { x };
        assert_eq!(0u64.map_pids(&mut swap), 0);
        assert_eq!(3u64.map_pids(&mut swap), 4);
        assert_eq!(9u64.map_pids(&mut swap), 9);
    }

    #[test]
    fn pid_map_composes_over_containers() {
        let p = Pid::new(1).unwrap();
        let q = Pid::new(2).unwrap();
        let mut swap = |x: Pid| if x == p { q } else { p };
        let v = vec![(p, Some(q)), (q, None)];
        let mapped = v.map_pids(&mut swap);
        assert_eq!(mapped, vec![(q, Some(p)), (p, None)]);
    }

    #[test]
    fn from_nonzero_and_into_u64() {
        let nz = NonZeroU64::new(8).unwrap();
        let p: Pid = nz.into();
        let raw: u64 = p.into();
        assert_eq!(raw, 8);
    }
}
