//! High-level thread-friendly APIs over the memory-anonymous algorithms.

use std::fmt;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

use anonreg::consensus::{AnonConsensus, ConsRecord, ConsensusEvent};
use anonreg::election::{AnonElection, ElectionEvent};
use anonreg::hybrid::{named_view, HybridMutex};
use anonreg::mutex::{AnonMutex, Section};
use anonreg::renaming::{AnonRenaming, RenRecord, RenamingEvent};
use anonreg_model::rng::Rng64;
use anonreg_model::Pid;

use crate::{
    AnonymousMemory, Backoff, DriveOutcome, Driver, FaultCell, FaultPlan, FaultRecord,
    FaultyDriver, LockRegister, MemoryView, PackedAtomicRegister,
};

/// Errors from the high-level runtime APIs.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum RuntimeError {
    /// Mutual exclusion requires an odd number of registers, at least 3
    /// (Theorem 3.1; `m = 1` admits a two-process mutual exclusion
    /// violation, and even `m` admits livelock).
    BadRegisterCount {
        /// The rejected register count.
        m: usize,
    },
    /// The algorithm needs at least one process.
    NoProcesses,
    /// A third handle was requested from a strictly-two-process mutex.
    TooManyHandles,
    /// Input value `0` is reserved for untouched registers.
    ZeroInput,
    /// Identifiers and inputs must fit in 32 bits to ride in packed atomic
    /// registers (see [`Pack64`](crate::Pack64)).
    ValueTooWide {
        /// The offending value.
        value: u64,
    },
    /// Two handles of the same object requested the same process
    /// identifier. The paper's model requires distinct identifiers — two
    /// "processes" sharing one id are indistinguishable to the symmetric
    /// algorithms and break every guarantee.
    DuplicatePid {
        /// The duplicated identifier.
        pid: Pid,
    },
}

impl fmt::Display for RuntimeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RuntimeError::BadRegisterCount { m } => {
                write!(
                    f,
                    "mutual exclusion needs an odd register count >= 3, got {m}"
                )
            }
            RuntimeError::NoProcesses => write!(f, "need at least one process"),
            RuntimeError::TooManyHandles => {
                write!(
                    f,
                    "the Figure 1 mutex supports exactly two concurrent handles"
                )
            }
            RuntimeError::ZeroInput => write!(f, "input value 0 is reserved"),
            RuntimeError::ValueTooWide { value } => {
                write!(
                    f,
                    "value {value} does not fit in 32 bits for packed registers"
                )
            }
            RuntimeError::DuplicatePid { pid } => {
                write!(f, "identifier {pid} was already claimed by another handle")
            }
        }
    }
}

impl std::error::Error for RuntimeError {}

/// Shared registry of identifiers already handed out by one coordination
/// object.
type PidRegistry = Arc<Mutex<Vec<Pid>>>;

/// RAII claim on an identifier in one object's registry. Dropping the
/// lease releases the pid, so dropping a handle and re-creating one with
/// the same identifier works — only *concurrent* duplicates are rejected,
/// which is all the paper's distinct-identifier assumption requires.
struct PidLease {
    registry: PidRegistry,
    pid: Pid,
}

impl Drop for PidLease {
    fn drop(&mut self) {
        if let Ok(mut issued) = self.registry.lock() {
            if let Some(i) = issued.iter().position(|p| *p == self.pid) {
                issued.swap_remove(i);
            }
        }
    }
}

fn claim_pid(registry: &PidRegistry, pid: Pid) -> Result<PidLease, RuntimeError> {
    let mut issued = registry.lock().expect("pid registry poisoned");
    if issued.contains(&pid) {
        return Err(RuntimeError::DuplicatePid { pid });
    }
    issued.push(pid);
    drop(issued);
    Ok(PidLease {
        registry: Arc::clone(registry),
        pid,
    })
}

/// RAII claim on one of a bounded number of handle slots (the two-process
/// mutexes). Dropping the slot frees it for a future handle.
struct HandleSlot {
    handles: Arc<AtomicUsize>,
}

impl Drop for HandleSlot {
    fn drop(&mut self) {
        // Release pairs with `claim_slot`'s AcqRel increment: everything
        // the departing handle did happens-before the claim that reuses
        // its slot (certificate ORD-RT-HANDLE-002, `check sanitize`).
        self.handles.fetch_sub(1, Ordering::Release);
    }
}

fn claim_slot(handles: &Arc<AtomicUsize>, max: usize) -> Result<(HandleSlot, usize), RuntimeError> {
    // AcqRel: the acquire half observes prior releases (slot drops), the
    // release half publishes this claim to competing claimers. The counter
    // guards only slot occupancy — the algorithms' own registers carry
    // their own ordering — so SeqCst buys nothing here (certificate
    // ORD-RT-HANDLE-002).
    let previous = handles.fetch_add(1, Ordering::AcqRel);
    if previous >= max {
        handles.fetch_sub(1, Ordering::Release);
        return Err(RuntimeError::TooManyHandles);
    }
    Ok((
        HandleSlot {
            handles: Arc::clone(handles),
        },
        previous,
    ))
}

fn check_packable(value: u64) -> Result<(), RuntimeError> {
    if value > u64::from(u32::MAX) {
        Err(RuntimeError::ValueTooWide { value })
    } else {
        Ok(())
    }
}

/// A ready-to-share view with a per-handle random permutation.
fn fresh_view<R>(memory: &AnonymousMemory<R>, pid: Pid, salt: u64) -> MemoryView<R> {
    let mut rng = Rng64::seed_from_u64(pid.get().wrapping_mul(0x9e37_79b9).wrapping_add(salt));
    memory.random_view(&mut rng)
}

// ---------------------------------------------------------------------------
// Mutual exclusion
// ---------------------------------------------------------------------------

/// The Figure 1 memory-anonymous mutual exclusion lock for **two** threads.
///
/// Each participating thread obtains a [`MutexHandle`] (at most two may
/// exist) and brackets its critical sections with
/// [`enter`](MutexHandle::enter)/the returned [`MutexGuard`]. The two
/// handles see the registers through *different random permutations* —
/// there is no agreement on names, which is the point.
///
/// # Example
///
/// ```
/// use anonreg_runtime::AnonymousMutex;
/// use anonreg_model::Pid;
///
/// let lock = AnonymousMutex::new(5)?;
/// let mut a = lock.handle(Pid::new(1).unwrap())?;
/// let mut b = lock.handle(Pid::new(2).unwrap())?;
/// let counter = std::sync::atomic::AtomicU64::new(0);
/// std::thread::scope(|s| {
///     for handle in [&mut a, &mut b] {
///         s.spawn(|| {
///             for _ in 0..100 {
///                 let _guard = handle.enter();
///                 counter.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
///             }
///         });
///     }
/// });
/// assert_eq!(counter.into_inner(), 200);
/// # Ok::<(), anonreg_runtime::RuntimeError>(())
/// ```
pub struct AnonymousMutex {
    memory: AnonymousMemory<PackedAtomicRegister<u64>>,
    handles: Arc<AtomicUsize>,
    pids: PidRegistry,
    cell: Arc<FaultCell>,
}

impl AnonymousMutex {
    /// Allocates a lock over `m` anonymous registers; `m` must be odd and
    /// at least 3 (Theorem 3.1).
    ///
    /// # Errors
    ///
    /// [`RuntimeError::BadRegisterCount`] otherwise.
    pub fn new(m: usize) -> Result<Self, RuntimeError> {
        if m < 3 || m.is_multiple_of(2) {
            return Err(RuntimeError::BadRegisterCount { m });
        }
        Ok(AnonymousMutex {
            memory: AnonymousMemory::new(m),
            handles: Arc::new(AtomicUsize::new(0)),
            pids: PidRegistry::default(),
            cell: Arc::new(FaultCell::new()),
        })
    }

    /// Creates a participant handle with a fresh random register view.
    ///
    /// Dropping a handle releases both its identifier and its slot, so a
    /// replacement handle (same pid or a new one) can be created later.
    ///
    /// # Errors
    ///
    /// [`RuntimeError::TooManyHandles`] while two handles are live — the
    /// algorithm is proven for two processes only (more is the paper's
    /// headline open problem). [`RuntimeError::DuplicatePid`] if the
    /// identifier is already held by a live handle.
    pub fn handle(&self, pid: Pid) -> Result<MutexHandle, RuntimeError> {
        let lease = claim_pid(&self.pids, pid)?;
        let (slot, previous) = claim_slot(&self.handles, 2)?;
        let machine = AnonMutex::new(pid, self.memory.len()).expect("validated register count");
        let view = fresh_view(&self.memory, pid, previous as u64);
        Ok(MutexHandle {
            driver: Driver::new(machine, view),
            _lease: lease,
            _slot: slot,
        })
    }

    /// Creates a participant handle whose execution is subjected to
    /// `plan`'s fault schedule for `pid`: crashes abandon the machine with
    /// the registers as written (§2's failure model), stalls pause it for
    /// foreign ops, restarts re-run a fresh machine under a new view.
    ///
    /// # Errors
    ///
    /// Same as [`handle`](AnonymousMutex::handle).
    pub fn faulty_handle(
        &self,
        pid: Pid,
        plan: &FaultPlan,
    ) -> Result<FaultyMutexHandle, RuntimeError> {
        let lease = claim_pid(&self.pids, pid)?;
        let (slot, previous) = claim_slot(&self.handles, 2)?;
        let m = self.memory.len();
        let memory = self.memory.clone();
        let salt = previous as u64;
        let driver = FaultyDriver::new(
            pid,
            move |incarnation| {
                let machine = AnonMutex::new(pid, m).expect("validated register count");
                let salt = salt.wrapping_add(incarnation.wrapping_mul(0x9e37_79b9_7f4a_7c15));
                (machine, fresh_view(&memory, pid, salt))
            },
            plan,
            Arc::clone(&self.cell),
        );
        Ok(FaultyMutexHandle {
            driver,
            _lease: lease,
            _slot: slot,
        })
    }
}

impl fmt::Debug for AnonymousMutex {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("AnonymousMutex")
            .field("registers", &self.memory.len())
            .finish()
    }
}

/// One thread's handle on an [`AnonymousMutex`].
pub struct MutexHandle {
    driver: Driver<AnonMutex, PackedAtomicRegister<u64>>,
    _lease: PidLease,
    _slot: HandleSlot,
}

impl MutexHandle {
    /// Enters the critical section (spinning until acquired) and returns a
    /// guard; dropping the guard leaves the critical section and runs the
    /// wait-free exit code.
    pub fn enter(&mut self) -> MutexGuard<'_> {
        let entered = self.driver.run_until(|m| m.section() == Section::Critical);
        debug_assert!(entered, "an unbounded mutex machine never halts");
        MutexGuard { handle: self }
    }

    /// Attempts to enter the critical section within roughly `max_ops`
    /// atomic operations. On timeout the entry attempt is *aborted* — the
    /// machine takes the algorithm's own giving-up path, erasing its marks
    /// so the other process is not blocked — and `None` is returned.
    ///
    /// Aborting is sound because it is exactly the Figure 1 lose move; the
    /// abortable configurations are model-checked in the `anonreg` test
    /// suite.
    pub fn try_enter(&mut self, max_ops: u64) -> Option<MutexGuard<'_>> {
        if self
            .driver
            .run_until_bounded(|m| m.section() == Section::Critical, max_ops)
        {
            return Some(MutexGuard { handle: self });
        }
        // Timed out: abort and drive the machine back to its remainder.
        // The abort path is wait-free (one cleanup pass), so this is
        // bounded.
        self.driver.machine_mut().request_abort();
        let parked = self
            .driver
            .run_until(anonreg::mutex::AnonMutex::in_remainder);
        debug_assert!(parked);
        None
    }

    /// Total atomic operations this handle has performed.
    #[must_use]
    pub fn ops(&self) -> u64 {
        self.driver.report().ops()
    }
}

impl fmt::Debug for MutexHandle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("MutexHandle")
            .field("driver", &self.driver)
            .finish()
    }
}

/// Holds the critical section; released on drop (the exit code is
/// wait-free, so the drop performs a bounded number of writes and cannot
/// block).
pub struct MutexGuard<'a> {
    handle: &'a mut MutexHandle,
}

impl Drop for MutexGuard<'_> {
    fn drop(&mut self) {
        let released = self
            .handle
            .driver
            .run_until(|m| m.section() == Section::Remainder);
        debug_assert!(released);
    }
}

impl fmt::Debug for MutexGuard<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "MutexGuard(held)")
    }
}

/// A fault-injected handle on an [`AnonymousMutex`]
/// (see [`AnonymousMutex::faulty_handle`]).
///
/// Because the process can crash at any machine step, entry and exit are
/// explicit outcome-returning calls rather than a guard: a crashed
/// process's drop could not run the exit protocol without violating §2's
/// "never writes again". Like a plain handle, dropping one releases its
/// pid and slot (a crashed process's registers stay as written — a
/// replacement handle may therefore block until its budget expires, which
/// is exactly the behavior the stress harness measures).
pub struct FaultyMutexHandle {
    driver: FaultyDriver<AnonMutex, PackedAtomicRegister<u64>>,
    _lease: PidLease,
    _slot: HandleSlot,
}

impl FaultyMutexHandle {
    /// Drives the doorway until the critical section is reached
    /// (`Satisfied`), the process crashes, or `max_steps` machine steps
    /// elapse (`OutOfBudget`; unlike [`MutexHandle::try_enter`] the
    /// attempt is *not* aborted, so the caller can retry or
    /// [`abort`](FaultyMutexHandle::abort) explicitly).
    pub fn try_enter(&mut self, max_steps: u64) -> DriveOutcome {
        self.driver
            .run_until_bounded(|m| m.section() == Section::Critical, max_steps)
    }

    /// Leaves the critical section, driving the wait-free exit code until
    /// the machine is back in its remainder (`Satisfied`) — unless a
    /// scheduled fault crashes it mid-exit.
    pub fn exit(&mut self, max_steps: u64) -> DriveOutcome {
        self.driver
            .run_until_bounded(|m| m.section() == Section::Remainder, max_steps)
    }

    /// Abandons a pending entry attempt through the algorithm's own lose
    /// path, erasing this process's marks (see
    /// [`MutexHandle::try_enter`]).
    pub fn abort(&mut self, max_steps: u64) -> DriveOutcome {
        if let Some(machine) = self.driver.machine_mut() {
            machine.request_abort();
        }
        self.driver
            .run_until_bounded(AnonMutex::in_remainder, max_steps)
    }

    /// Has the process crashed?
    #[must_use]
    pub fn is_crashed(&self) -> bool {
        self.driver.is_crashed()
    }

    /// The faults injected so far, in firing order.
    #[must_use]
    pub fn fault_log(&self) -> &[FaultRecord] {
        self.driver.fault_log()
    }

    /// Machine incarnations started (1 = never restarted).
    #[must_use]
    pub fn incarnations(&self) -> u64 {
        self.driver.incarnations()
    }
}

impl fmt::Debug for FaultyMutexHandle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("FaultyMutexHandle")
            .field("driver", &self.driver)
            .finish()
    }
}

// ---------------------------------------------------------------------------
// Hybrid mutual exclusion (§8 exploration)
// ---------------------------------------------------------------------------

/// The hybrid lock: `m` anonymous registers **plus one named register** —
/// the smallest instance of the paper's §8 "some named, some unnamed"
/// model. Works for every `m ≥ 2`, *even values included*, which the pure
/// anonymous model provably cannot achieve (Theorem 3.1).
///
/// Each handle permutes the `m` anonymous registers randomly; the named
/// tie-breaker is pinned to the same physical slot for everyone — that one
/// agreed name is the entire difference between the models.
///
/// Correctness is established by exhaustive model checking (see
/// `anonreg::hybrid` and experiment E11).
pub struct HybridAnonymousMutex {
    memory: AnonymousMemory<PackedAtomicRegister<u64>>,
    /// Anonymous register count (total is `m + 1`).
    m: usize,
    handles: Arc<AtomicUsize>,
    pids: PidRegistry,
    cell: Arc<FaultCell>,
}

impl HybridAnonymousMutex {
    /// Allocates a hybrid lock over `m ≥ 2` anonymous registers plus one
    /// named register.
    ///
    /// # Errors
    ///
    /// [`RuntimeError::BadRegisterCount`] if `m < 2`.
    pub fn new(m: usize) -> Result<Self, RuntimeError> {
        if m < 2 {
            return Err(RuntimeError::BadRegisterCount { m });
        }
        Ok(HybridAnonymousMutex {
            memory: AnonymousMemory::new(m + 1),
            m,
            handles: Arc::new(AtomicUsize::new(0)),
            pids: PidRegistry::default(),
            cell: Arc::new(FaultCell::new()),
        })
    }

    /// Creates a participant handle: random view over the anonymous
    /// registers, fixed view of the named tie-breaker. Dropping the
    /// handle releases both its identifier and its slot.
    ///
    /// # Errors
    ///
    /// [`RuntimeError::TooManyHandles`] while two handles are live
    /// (two-process algorithm).
    pub fn handle(&self, pid: Pid) -> Result<HybridMutexHandle, RuntimeError> {
        let lease = claim_pid(&self.pids, pid)?;
        let (slot, previous) = claim_slot(&self.handles, 2)?;
        let machine = HybridMutex::new(pid, self.m).expect("validated register count");
        let view = hybrid_view(self.m, pid, previous as u64);
        Ok(HybridMutexHandle {
            driver: Driver::new(machine, self.memory.view(view)),
            _lease: lease,
            _slot: slot,
        })
    }

    /// Creates a fault-injected participant handle honoring `plan`'s
    /// schedule for `pid` (see [`AnonymousMutex::faulty_handle`] — the
    /// semantics are identical, with restarts re-permuting only the
    /// anonymous registers).
    ///
    /// # Errors
    ///
    /// Same as [`handle`](HybridAnonymousMutex::handle).
    pub fn faulty_handle(
        &self,
        pid: Pid,
        plan: &FaultPlan,
    ) -> Result<FaultyHybridMutexHandle, RuntimeError> {
        let lease = claim_pid(&self.pids, pid)?;
        let (slot, previous) = claim_slot(&self.handles, 2)?;
        let m = self.m;
        let memory = self.memory.clone();
        let salt = previous as u64;
        let driver = FaultyDriver::new(
            pid,
            move |incarnation| {
                let machine = HybridMutex::new(pid, m).expect("validated register count");
                let salt = salt.wrapping_add(incarnation.wrapping_mul(0x9e37_79b9_7f4a_7c15));
                (machine, memory.view(hybrid_view(m, pid, salt)))
            },
            plan,
            Arc::clone(&self.cell),
        );
        Ok(FaultyHybridMutexHandle {
            driver,
            _lease: lease,
            _slot: slot,
        })
    }
}

/// A hybrid view: random permutation of the `m` anonymous registers, the
/// named tie-breaker pinned at index `m` for everyone.
fn hybrid_view(m: usize, pid: Pid, salt: u64) -> anonreg_model::View {
    let mut rng = Rng64::seed_from_u64(pid.get().wrapping_mul(0x9e37_79b9).wrapping_add(salt));
    let anon = rng.permutation(m);
    named_view(m, anon).expect("shuffled range is a permutation")
}

impl fmt::Debug for HybridAnonymousMutex {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("HybridAnonymousMutex")
            .field("anonymous_registers", &self.m)
            .finish()
    }
}

/// One thread's handle on a [`HybridAnonymousMutex`].
pub struct HybridMutexHandle {
    driver: Driver<HybridMutex, PackedAtomicRegister<u64>>,
    _lease: PidLease,
    _slot: HandleSlot,
}

impl HybridMutexHandle {
    /// Enters the critical section (spinning until acquired); the returned
    /// guard releases on drop.
    pub fn enter(&mut self) -> HybridMutexGuard<'_> {
        let entered = self.driver.run_until(|m| m.section() == Section::Critical);
        debug_assert!(entered);
        HybridMutexGuard { handle: self }
    }

    /// Attempts to enter within roughly `max_ops` atomic operations; on
    /// timeout the attempt is aborted via the algorithm's own lose path and
    /// `None` is returned (see [`MutexHandle::try_enter`] — semantics are
    /// identical, and the abortable configurations are model-checked).
    pub fn try_enter(&mut self, max_ops: u64) -> Option<HybridMutexGuard<'_>> {
        if self
            .driver
            .run_until_bounded(|m| m.section() == Section::Critical, max_ops)
        {
            return Some(HybridMutexGuard { handle: self });
        }
        self.driver.machine_mut().request_abort();
        let parked = self
            .driver
            .run_until(anonreg::hybrid::HybridMutex::in_remainder);
        debug_assert!(parked);
        None
    }

    /// Total atomic operations performed by this handle.
    #[must_use]
    pub fn ops(&self) -> u64 {
        self.driver.report().ops()
    }
}

impl fmt::Debug for HybridMutexHandle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("HybridMutexHandle")
            .field("driver", &self.driver)
            .finish()
    }
}

/// Holds the hybrid critical section; released on drop.
pub struct HybridMutexGuard<'a> {
    handle: &'a mut HybridMutexHandle,
}

impl Drop for HybridMutexGuard<'_> {
    fn drop(&mut self) {
        let released = self
            .handle
            .driver
            .run_until(|m| m.section() == Section::Remainder);
        debug_assert!(released);
    }
}

impl fmt::Debug for HybridMutexGuard<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "HybridMutexGuard(held)")
    }
}

/// A fault-injected handle on a [`HybridAnonymousMutex`] (see
/// [`FaultyMutexHandle`] — semantics are identical).
pub struct FaultyHybridMutexHandle {
    driver: FaultyDriver<HybridMutex, PackedAtomicRegister<u64>>,
    _lease: PidLease,
    _slot: HandleSlot,
}

impl FaultyHybridMutexHandle {
    /// Drives the doorway until the critical section is reached, the
    /// process crashes, or the step budget runs out (see
    /// [`FaultyMutexHandle::try_enter`]).
    pub fn try_enter(&mut self, max_steps: u64) -> DriveOutcome {
        self.driver
            .run_until_bounded(|m| m.section() == Section::Critical, max_steps)
    }

    /// Leaves the critical section (see [`FaultyMutexHandle::exit`]).
    pub fn exit(&mut self, max_steps: u64) -> DriveOutcome {
        self.driver
            .run_until_bounded(|m| m.section() == Section::Remainder, max_steps)
    }

    /// Abandons a pending entry attempt through the algorithm's lose path
    /// (see [`FaultyMutexHandle::abort`]).
    pub fn abort(&mut self, max_steps: u64) -> DriveOutcome {
        if let Some(machine) = self.driver.machine_mut() {
            machine.request_abort();
        }
        self.driver
            .run_until_bounded(HybridMutex::in_remainder, max_steps)
    }

    /// Has the process crashed?
    #[must_use]
    pub fn is_crashed(&self) -> bool {
        self.driver.is_crashed()
    }

    /// The faults injected so far, in firing order.
    #[must_use]
    pub fn fault_log(&self) -> &[FaultRecord] {
        self.driver.fault_log()
    }
}

impl fmt::Debug for FaultyHybridMutexHandle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("FaultyHybridMutexHandle")
            .field("driver", &self.driver)
            .finish()
    }
}

// ---------------------------------------------------------------------------
// Consensus
// ---------------------------------------------------------------------------

/// The Figure 2 memory-anonymous consensus object for `n` threads over
/// `2n − 1` packed atomic registers.
///
/// See the crate-level example. Identifiers and proposals must fit in 32
/// bits (they share one 64-bit atomic register).
pub struct AnonymousConsensus {
    memory: AnonymousMemory<PackedAtomicRegister<ConsRecord>>,
    n: usize,
    salt: Arc<AtomicUsize>,
    pids: PidRegistry,
    cell: Arc<FaultCell>,
}

impl AnonymousConsensus {
    /// Allocates a consensus object for up to `n` participants.
    ///
    /// # Errors
    ///
    /// [`RuntimeError::NoProcesses`] if `n == 0`.
    pub fn new(n: usize) -> Result<Self, RuntimeError> {
        if n == 0 {
            return Err(RuntimeError::NoProcesses);
        }
        Ok(AnonymousConsensus {
            memory: AnonymousMemory::new(2 * n - 1),
            n,
            salt: Arc::new(AtomicUsize::new(0)),
            pids: PidRegistry::default(),
            cell: Arc::new(FaultCell::new()),
        })
    }

    /// Creates a participant handle with a fresh random register view.
    /// The identifier is released when the handle is dropped or consumed
    /// by [`propose`](ConsensusHandle::propose).
    ///
    /// # Errors
    ///
    /// [`RuntimeError::DuplicatePid`] if the identifier is already held by
    /// a live handle of this object.
    pub fn handle(&self, pid: Pid) -> Result<ConsensusHandle, RuntimeError> {
        let lease = claim_pid(&self.pids, pid)?;
        let salt = self.salt.fetch_add(1, Ordering::Relaxed) as u64;
        Ok(ConsensusHandle {
            memory: self.memory.clone(),
            pid,
            n: self.n,
            salt,
            cell: Arc::clone(&self.cell),
            _lease: lease,
        })
    }
}

impl fmt::Debug for AnonymousConsensus {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("AnonymousConsensus")
            .field("n", &self.n)
            .field("registers", &self.memory.len())
            .finish()
    }
}

/// One thread's handle on an [`AnonymousConsensus`].
pub struct ConsensusHandle {
    memory: AnonymousMemory<PackedAtomicRegister<ConsRecord>>,
    pid: Pid,
    n: usize,
    salt: u64,
    cell: Arc<FaultCell>,
    _lease: PidLease,
}

impl ConsensusHandle {
    fn validate(&self, input: u64) -> Result<(), RuntimeError> {
        if input == 0 {
            return Err(RuntimeError::ZeroInput);
        }
        check_packable(input)?;
        check_packable(self.pid.get())
    }

    /// Proposes `input` and blocks until a decision is reached. All
    /// deciders return the same value, which is some participant's input.
    ///
    /// Runs with randomized backoff: obstruction freedom guarantees
    /// termination only in solo windows, which backoff manufactures with
    /// probability 1.
    ///
    /// # Errors
    ///
    /// [`RuntimeError::ZeroInput`] for input 0;
    /// [`RuntimeError::ValueTooWide`] if `input` or the pid exceeds 32
    /// bits.
    pub fn propose(self, input: u64) -> Result<u64, RuntimeError> {
        self.validate(input)?;
        let machine = AnonConsensus::new(self.pid, self.n, input).expect("inputs validated above");
        let view = fresh_view(&self.memory, self.pid, self.salt);
        let mut driver = Driver::new(machine, view).with_backoff(Backoff::standard());
        match driver.run_until_event() {
            Some(ConsensusEvent::Decide(value)) => Ok(value),
            None => unreachable!("consensus decides before halting"),
        }
    }

    /// Proposes `input` under `plan`'s fault schedule for this pid.
    /// Returns `Ok(Some(value))` on a decision, `Ok(None)` if the process
    /// crashed or exhausted `max_steps` machine steps before deciding.
    /// Restarted incarnations re-propose the same input under a fresh
    /// random view; this is safe because Figure 2's validity and
    /// agreement hold for any set of participants with distinct ids, and
    /// a restarted process replaces only itself.
    ///
    /// # Errors
    ///
    /// Same input validation as [`propose`](ConsensusHandle::propose).
    pub fn propose_with_faults(
        self,
        input: u64,
        plan: &FaultPlan,
        max_steps: u64,
    ) -> Result<Option<u64>, RuntimeError> {
        self.validate(input)?;
        let (pid, n, salt) = (self.pid, self.n, self.salt);
        let memory = self.memory.clone();
        let mut driver = FaultyDriver::new(
            pid,
            move |incarnation| {
                let machine = AnonConsensus::new(pid, n, input).expect("inputs validated above");
                let salt = salt.wrapping_add(incarnation.wrapping_mul(0x9e37_79b9_7f4a_7c15));
                (machine, fresh_view(&memory, pid, salt))
            },
            plan,
            Arc::clone(&self.cell),
        )
        .with_backoff(Backoff::standard());
        match driver.next_event(max_steps) {
            Some(ConsensusEvent::Decide(value)) => Ok(Some(value)),
            None => Ok(None),
        }
    }
}

impl fmt::Debug for ConsensusHandle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ConsensusHandle")
            .field("pid", &self.pid)
            .field("n", &self.n)
            .finish()
    }
}

// ---------------------------------------------------------------------------
// Election
// ---------------------------------------------------------------------------

/// Memory-anonymous leader election (§4 note): consensus on identifiers.
pub struct AnonymousElection {
    memory: AnonymousMemory<PackedAtomicRegister<ConsRecord>>,
    n: usize,
    salt: Arc<AtomicUsize>,
    pids: PidRegistry,
    cell: Arc<FaultCell>,
}

impl AnonymousElection {
    /// Allocates an election object for up to `n` participants.
    ///
    /// # Errors
    ///
    /// [`RuntimeError::NoProcesses`] if `n == 0`.
    pub fn new(n: usize) -> Result<Self, RuntimeError> {
        if n == 0 {
            return Err(RuntimeError::NoProcesses);
        }
        Ok(AnonymousElection {
            memory: AnonymousMemory::new(2 * n - 1),
            n,
            salt: Arc::new(AtomicUsize::new(0)),
            pids: PidRegistry::default(),
            cell: Arc::new(FaultCell::new()),
        })
    }

    /// Creates a participant handle with a fresh random register view.
    /// The identifier is released when the handle is dropped or consumed.
    ///
    /// # Errors
    ///
    /// [`RuntimeError::DuplicatePid`] if the identifier is already held by
    /// a live handle of this object.
    pub fn handle(&self, pid: Pid) -> Result<ElectionHandle, RuntimeError> {
        let lease = claim_pid(&self.pids, pid)?;
        let salt = self.salt.fetch_add(1, Ordering::Relaxed) as u64;
        Ok(ElectionHandle {
            memory: self.memory.clone(),
            pid,
            n: self.n,
            salt,
            cell: Arc::clone(&self.cell),
            _lease: lease,
        })
    }
}

impl fmt::Debug for AnonymousElection {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("AnonymousElection")
            .field("n", &self.n)
            .finish()
    }
}

/// One thread's handle on an [`AnonymousElection`].
pub struct ElectionHandle {
    memory: AnonymousMemory<PackedAtomicRegister<ConsRecord>>,
    pid: Pid,
    n: usize,
    salt: u64,
    cell: Arc<FaultCell>,
    _lease: PidLease,
}

impl ElectionHandle {
    /// Participates in the election and blocks until the leader is known.
    /// All participants return the same leader, which is one of them.
    ///
    /// # Errors
    ///
    /// [`RuntimeError::ValueTooWide`] if the pid exceeds 32 bits.
    pub fn elect(self) -> Result<Pid, RuntimeError> {
        check_packable(self.pid.get())?;
        let machine = AnonElection::new(self.pid, self.n).expect("n validated at construction");
        let view = fresh_view(&self.memory, self.pid, self.salt);
        let mut driver = Driver::new(machine, view).with_backoff(Backoff::standard());
        match driver.run_until_event() {
            Some(ElectionEvent::Elected(leader)) => Ok(leader),
            None => unreachable!("election elects before halting"),
        }
    }

    /// Participates under `plan`'s fault schedule for this pid. Returns
    /// `Ok(Some(leader))` once the leader is known, `Ok(None)` if the
    /// process crashed or exhausted `max_steps` machine steps first.
    /// Restarted incarnations rejoin under a fresh random view (safe for
    /// the same reason as
    /// [`propose_with_faults`](ConsensusHandle::propose_with_faults) —
    /// election is consensus on identifiers).
    ///
    /// # Errors
    ///
    /// [`RuntimeError::ValueTooWide`] if the pid exceeds 32 bits.
    pub fn elect_with_faults(
        self,
        plan: &FaultPlan,
        max_steps: u64,
    ) -> Result<Option<Pid>, RuntimeError> {
        check_packable(self.pid.get())?;
        let (pid, n, salt) = (self.pid, self.n, self.salt);
        let memory = self.memory.clone();
        let mut driver = FaultyDriver::new(
            pid,
            move |incarnation| {
                let machine = AnonElection::new(pid, n).expect("n validated at construction");
                let salt = salt.wrapping_add(incarnation.wrapping_mul(0x9e37_79b9_7f4a_7c15));
                (machine, fresh_view(&memory, pid, salt))
            },
            plan,
            Arc::clone(&self.cell),
        )
        .with_backoff(Backoff::standard());
        match driver.next_event(max_steps) {
            Some(ElectionEvent::Elected(leader)) => Ok(Some(leader)),
            None => Ok(None),
        }
    }
}

impl fmt::Debug for ElectionHandle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ElectionHandle")
            .field("pid", &self.pid)
            .field("n", &self.n)
            .finish()
    }
}

// ---------------------------------------------------------------------------
// Renaming
// ---------------------------------------------------------------------------

/// The Figure 3 memory-anonymous adaptive perfect renaming object: `k ≤ n`
/// participating threads acquire distinct names from `{1..k}`.
///
/// Figure 3's registers carry unbounded history sets, so this facade uses
/// [`LockRegister`]s (linearizable, lock-based — the documented
/// substitution for the paper's unbounded atomic registers).
///
/// # Example
///
/// ```
/// use anonreg_runtime::AnonymousRenaming;
/// use anonreg_model::Pid;
///
/// let renaming = AnonymousRenaming::new(3)?;
/// let names = std::thread::scope(|s| {
///     let handles: Vec<_> = [71u64, 9002, 13]
///         .into_iter()
///         .map(|id| {
///             let h = renaming.handle(Pid::new(id).unwrap()).unwrap();
///             s.spawn(move || h.acquire())
///         })
///         .collect();
///     handles.into_iter().map(|t| t.join().unwrap()).collect::<Vec<_>>()
/// });
/// let mut sorted = names.clone();
/// sorted.sort_unstable();
/// assert_eq!(sorted, vec![1, 2, 3]); // perfect renaming
/// # Ok::<(), anonreg_runtime::RuntimeError>(())
/// ```
pub struct AnonymousRenaming {
    memory: AnonymousMemory<LockRegister<RenRecord>>,
    n: usize,
    salt: Arc<AtomicUsize>,
    pids: PidRegistry,
    cell: Arc<FaultCell>,
}

impl AnonymousRenaming {
    /// Allocates a renaming object for up to `n` participants.
    ///
    /// # Errors
    ///
    /// [`RuntimeError::NoProcesses`] if `n == 0`.
    pub fn new(n: usize) -> Result<Self, RuntimeError> {
        if n == 0 {
            return Err(RuntimeError::NoProcesses);
        }
        Ok(AnonymousRenaming {
            memory: AnonymousMemory::new(2 * n - 1),
            n,
            salt: Arc::new(AtomicUsize::new(0)),
            pids: PidRegistry::default(),
            cell: Arc::new(FaultCell::new()),
        })
    }

    /// Creates a participant handle with a fresh random register view.
    /// The identifier is released when the handle is dropped or consumed.
    ///
    /// # Errors
    ///
    /// [`RuntimeError::DuplicatePid`] if the identifier is already held by
    /// a live handle of this object.
    pub fn handle(&self, pid: Pid) -> Result<RenamingHandle, RuntimeError> {
        let lease = claim_pid(&self.pids, pid)?;
        let salt = self.salt.fetch_add(1, Ordering::Relaxed) as u64;
        Ok(RenamingHandle {
            memory: self.memory.clone(),
            pid,
            n: self.n,
            salt,
            cell: Arc::clone(&self.cell),
            _lease: lease,
        })
    }
}

impl fmt::Debug for AnonymousRenaming {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("AnonymousRenaming")
            .field("n", &self.n)
            .finish()
    }
}

/// One thread's handle on an [`AnonymousRenaming`].
pub struct RenamingHandle {
    memory: AnonymousMemory<LockRegister<RenRecord>>,
    pid: Pid,
    n: usize,
    salt: u64,
    cell: Arc<FaultCell>,
    _lease: PidLease,
}

impl RenamingHandle {
    /// Acquires a new name from `{1..k}` where `k` is the number of
    /// participants, blocking until done.
    #[must_use]
    pub fn acquire(self) -> u32 {
        let machine = AnonRenaming::new(self.pid, self.n).expect("n validated at construction");
        let view = fresh_view(&self.memory, self.pid, self.salt);
        let mut driver = Driver::new(machine, view).with_backoff(Backoff::standard());
        match driver.run_until_event() {
            Some(RenamingEvent::Named(name)) => name,
            None => unreachable!("renaming names before halting"),
        }
    }

    /// Acquires a name under `plan`'s fault schedule for this pid.
    /// Returns `None` if the process crashed or exhausted `max_steps`
    /// machine steps before being named.
    ///
    /// Restarts are **not safe** for renaming — a crashed incarnation may
    /// already have claimed a name, and its replacement would claim a
    /// second one, breaking the `{1..k}` bound — so schedules passed here
    /// should stick to crashes and stalls (the E15 harness does).
    #[must_use]
    pub fn acquire_with_faults(self, plan: &FaultPlan, max_steps: u64) -> Option<u32> {
        let (pid, n, salt) = (self.pid, self.n, self.salt);
        let memory = self.memory.clone();
        let mut driver = FaultyDriver::new(
            pid,
            move |incarnation| {
                let machine = AnonRenaming::new(pid, n).expect("n validated at construction");
                let salt = salt.wrapping_add(incarnation.wrapping_mul(0x9e37_79b9_7f4a_7c15));
                (machine, fresh_view(&memory, pid, salt))
            },
            plan,
            Arc::clone(&self.cell),
        )
        .with_backoff(Backoff::standard());
        driver
            .next_event(max_steps)
            .map(|RenamingEvent::Named(name)| name)
    }
}

impl fmt::Debug for RenamingHandle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("RenamingHandle")
            .field("pid", &self.pid)
            .field("n", &self.n)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pid(n: u64) -> Pid {
        Pid::new(n).unwrap()
    }

    #[test]
    fn mutex_rejects_bad_register_counts() {
        for m in [0, 1, 2, 4, 6] {
            assert_eq!(
                AnonymousMutex::new(m).unwrap_err(),
                RuntimeError::BadRegisterCount { m }
            );
        }
        assert!(AnonymousMutex::new(3).is_ok());
        assert!(AnonymousMutex::new(9).is_ok());
    }

    #[test]
    fn mutex_allows_exactly_two_handles() {
        let lock = AnonymousMutex::new(3).unwrap();
        let _a = lock.handle(pid(1)).unwrap();
        let _b = lock.handle(pid(2)).unwrap();
        assert_eq!(
            lock.handle(pid(3)).unwrap_err(),
            RuntimeError::TooManyHandles
        );
    }

    #[test]
    fn mutex_single_thread_reenters() {
        let lock = AnonymousMutex::new(3).unwrap();
        let mut h = lock.handle(pid(1)).unwrap();
        for _ in 0..10 {
            let guard = h.enter();
            drop(guard);
        }
        assert!(h.ops() > 0);
    }

    #[test]
    fn mutex_two_threads_exclude() {
        let lock = AnonymousMutex::new(5).unwrap();
        let mut a = lock.handle(pid(10)).unwrap();
        let mut b = lock.handle(pid(20)).unwrap();
        let in_cs = AtomicUsize::new(0);
        let max_seen = AtomicUsize::new(0);
        std::thread::scope(|s| {
            for handle in [&mut a, &mut b] {
                s.spawn(|| {
                    for _ in 0..200 {
                        let _guard = handle.enter();
                        let now = in_cs.fetch_add(1, Ordering::SeqCst) + 1;
                        max_seen.fetch_max(now, Ordering::SeqCst);
                        in_cs.fetch_sub(1, Ordering::SeqCst);
                    }
                });
            }
        });
        assert_eq!(max_seen.load(Ordering::SeqCst), 1, "overlap detected");
    }

    #[test]
    fn try_enter_succeeds_uncontended_and_times_out_contended() {
        let lock = AnonymousMutex::new(3).unwrap();
        let mut a = lock.handle(pid(1)).unwrap();
        let mut b = lock.handle(pid(2)).unwrap();

        // Uncontended: plenty of budget, must succeed.
        let guard = a.try_enter(1_000).expect("uncontended try_enter succeeds");

        // Contended: b cannot get in while a holds the lock; it must abort
        // cleanly and report failure.
        assert!(b.try_enter(500).is_none());

        // After the abort, b left no marks: releasing a and retrying works.
        drop(guard);
        let guard_b = b.try_enter(10_000).expect("lock is free again");
        drop(guard_b);

        // And a can still cycle too.
        let guard_a = a.try_enter(10_000).expect("a re-enters");
        drop(guard_a);
    }

    #[test]
    fn consensus_agrees_across_threads() {
        for n in [2usize, 3, 5] {
            let consensus = AnonymousConsensus::new(n).unwrap();
            let decisions: Vec<u64> = std::thread::scope(|s| {
                let joins: Vec<_> = (0..n)
                    .map(|i| {
                        let h = consensus.handle(pid(i as u64 * 100 + 7)).unwrap();
                        s.spawn(move || h.propose(i as u64 + 1).unwrap())
                    })
                    .collect();
                joins.into_iter().map(|j| j.join().unwrap()).collect()
            });
            let first = decisions[0];
            assert!(
                decisions.iter().all(|&d| d == first),
                "n={n}: {decisions:?}"
            );
            assert!((1..=n as u64).contains(&first));
        }
    }

    #[test]
    fn consensus_validates_inputs() {
        let consensus = AnonymousConsensus::new(2).unwrap();
        assert_eq!(
            consensus.handle(pid(1)).unwrap().propose(0).unwrap_err(),
            RuntimeError::ZeroInput
        );
        assert!(matches!(
            consensus
                .handle(pid(2))
                .unwrap()
                .propose(1 << 40)
                .unwrap_err(),
            RuntimeError::ValueTooWide { .. }
        ));
        let wide_pid = consensus.handle(pid(1 << 40)).unwrap();
        assert!(matches!(
            wide_pid.propose(3).unwrap_err(),
            RuntimeError::ValueTooWide { .. }
        ));
    }

    #[test]
    fn election_elects_a_participant() {
        let election = AnonymousElection::new(3).unwrap();
        let ids = [400u64, 500, 600];
        let leaders: Vec<Pid> = std::thread::scope(|s| {
            let joins: Vec<_> = ids
                .iter()
                .map(|&id| {
                    let h = election.handle(pid(id)).unwrap();
                    s.spawn(move || h.elect().unwrap())
                })
                .collect();
            joins.into_iter().map(|j| j.join().unwrap()).collect()
        });
        let first = leaders[0];
        assert!(leaders.iter().all(|&l| l == first));
        assert!(ids.contains(&first.get()));
    }

    #[test]
    fn renaming_is_perfect_under_contention() {
        for n in [2usize, 4] {
            let renaming = AnonymousRenaming::new(n).unwrap();
            let mut names: Vec<u32> = std::thread::scope(|s| {
                let joins: Vec<_> = (0..n)
                    .map(|i| {
                        let h = renaming.handle(pid(1000 + i as u64 * 31)).unwrap();
                        s.spawn(move || h.acquire())
                    })
                    .collect();
                joins.into_iter().map(|j| j.join().unwrap()).collect()
            });
            names.sort_unstable();
            let expected: Vec<u32> = (1..=n as u32).collect();
            assert_eq!(names, expected, "n={n}");
        }
    }

    #[test]
    fn renaming_is_adaptive_with_few_participants() {
        // k = 2 of n = 5 potential participants: names within {1, 2}.
        let renaming = AnonymousRenaming::new(5).unwrap();
        let mut names: Vec<u32> = std::thread::scope(|s| {
            let joins: Vec<_> = [11u64, 22]
                .into_iter()
                .map(|id| {
                    let h = renaming.handle(pid(id)).unwrap();
                    s.spawn(move || h.acquire())
                })
                .collect();
            joins.into_iter().map(|j| j.join().unwrap()).collect()
        });
        names.sort_unstable();
        assert_eq!(names, vec![1, 2]);
    }

    #[test]
    fn hybrid_mutex_validates_and_limits_handles() {
        assert!(HybridAnonymousMutex::new(1).is_err());
        let lock = HybridAnonymousMutex::new(2).unwrap();
        let _a = lock.handle(pid(1)).unwrap();
        let _b = lock.handle(pid(2)).unwrap();
        assert_eq!(
            lock.handle(pid(3)).unwrap_err(),
            RuntimeError::TooManyHandles
        );
    }

    #[test]
    fn hybrid_mutex_excludes_with_even_m() {
        // The headline of the hybrid model: even m works on real threads.
        for m in [2usize, 4] {
            let lock = HybridAnonymousMutex::new(m).unwrap();
            let mut a = lock.handle(pid(10)).unwrap();
            let mut b = lock.handle(pid(20)).unwrap();
            let in_cs = AtomicUsize::new(0);
            let max_seen = AtomicUsize::new(0);
            std::thread::scope(|s| {
                for handle in [&mut a, &mut b] {
                    s.spawn(|| {
                        for _ in 0..150 {
                            let _guard = handle.enter();
                            let now = in_cs.fetch_add(1, Ordering::SeqCst) + 1;
                            max_seen.fetch_max(now, Ordering::SeqCst);
                            in_cs.fetch_sub(1, Ordering::SeqCst);
                        }
                    });
                }
            });
            assert_eq!(max_seen.load(Ordering::SeqCst), 1, "overlap with m={m}");
            assert!(a.ops() > 0);
        }
    }

    #[test]
    fn zero_process_objects_rejected() {
        assert!(AnonymousConsensus::new(0).is_err());
        assert!(AnonymousElection::new(0).is_err());
        assert!(AnonymousRenaming::new(0).is_err());
    }

    #[test]
    fn hybrid_try_enter_times_out_and_recovers() {
        let lock = HybridAnonymousMutex::new(2).unwrap();
        let mut a = lock.handle(pid(1)).unwrap();
        let mut b = lock.handle(pid(2)).unwrap();
        let guard = a.try_enter(1_000).expect("uncontended");
        assert!(b.try_enter(400).is_none());
        drop(guard);
        assert!(b.try_enter(10_000).is_some());
    }

    #[test]
    fn duplicate_pids_are_rejected_everywhere() {
        let lock = AnonymousMutex::new(3).unwrap();
        let _a = lock.handle(pid(7)).unwrap();
        assert_eq!(
            lock.handle(pid(7)).unwrap_err(),
            RuntimeError::DuplicatePid { pid: pid(7) }
        );

        let consensus = AnonymousConsensus::new(2).unwrap();
        let _c = consensus.handle(pid(7)).unwrap();
        assert!(matches!(
            consensus.handle(pid(7)).unwrap_err(),
            RuntimeError::DuplicatePid { .. }
        ));

        let election = AnonymousElection::new(2).unwrap();
        let _e = election.handle(pid(7)).unwrap();
        assert!(election.handle(pid(7)).is_err());

        let renaming = AnonymousRenaming::new(2).unwrap();
        let _r = renaming.handle(pid(7)).unwrap();
        assert!(renaming.handle(pid(7)).is_err());

        let hybrid = HybridAnonymousMutex::new(2).unwrap();
        let _h = hybrid.handle(pid(7)).unwrap();
        assert!(hybrid.handle(pid(7)).is_err());
    }

    #[test]
    fn dropping_a_mutex_handle_releases_pid_and_slot() {
        let lock = AnonymousMutex::new(3).unwrap();
        let a = lock.handle(pid(7)).unwrap();
        // Same pid is rejected while the handle is live...
        assert!(matches!(
            lock.handle(pid(7)).unwrap_err(),
            RuntimeError::DuplicatePid { .. }
        ));
        drop(a);
        // ...and accepted again once it is dropped.
        let mut a2 = lock.handle(pid(7)).unwrap();
        drop(a2.enter());
        drop(a2);

        // The slot is released too: cycling through many handles works as
        // long as at most two are ever live.
        let _b = lock.handle(pid(8)).unwrap();
        let c = lock.handle(pid(9)).unwrap();
        assert_eq!(
            lock.handle(pid(10)).unwrap_err(),
            RuntimeError::TooManyHandles
        );
        drop(c);
        let _d = lock.handle(pid(10)).unwrap();
    }

    #[test]
    fn dropping_a_consensus_handle_releases_its_pid() {
        let consensus = AnonymousConsensus::new(2).unwrap();
        let first = consensus.handle(pid(7)).unwrap();
        assert!(consensus.handle(pid(7)).is_err());
        drop(first);
        let second = consensus.handle(pid(7)).unwrap();
        assert_eq!(second.propose(5).unwrap(), 5);
        // propose consumed the handle, so the pid is free once more.
        assert!(consensus.handle(pid(7)).is_ok());
    }

    #[test]
    fn dropping_election_and_renaming_handles_releases_pids() {
        let election = AnonymousElection::new(2).unwrap();
        drop(election.handle(pid(3)).unwrap());
        assert!(election.handle(pid(3)).is_ok());

        let renaming = AnonymousRenaming::new(2).unwrap();
        drop(renaming.handle(pid(3)).unwrap());
        assert!(renaming.handle(pid(3)).is_ok());

        let hybrid = HybridAnonymousMutex::new(2).unwrap();
        drop(hybrid.handle(pid(3)).unwrap());
        assert!(hybrid.handle(pid(3)).is_ok());
    }

    #[test]
    fn faulty_mutex_handle_crashes_on_schedule() {
        let lock = AnonymousMutex::new(3).unwrap();
        // Crash after 2 machine steps: mid-doorway, before Enter.
        let plan = FaultPlan::new(0).crash(pid(1), 2);
        let mut h = lock.faulty_handle(pid(1), &plan).unwrap();
        assert_eq!(h.try_enter(10_000), DriveOutcome::Crashed);
        assert!(h.is_crashed());
        assert_eq!(h.fault_log().len(), 1);
        // A crashed handle stays crashed.
        assert_eq!(h.exit(10_000), DriveOutcome::Crashed);
    }

    #[test]
    fn faulty_mutex_handle_without_faults_cycles() {
        let lock = AnonymousMutex::new(3).unwrap();
        let plan = FaultPlan::new(0);
        let mut h = lock.faulty_handle(pid(1), &plan).unwrap();
        for _ in 0..3 {
            assert_eq!(h.try_enter(10_000), DriveOutcome::Satisfied);
            assert_eq!(h.exit(10_000), DriveOutcome::Satisfied);
        }
        assert!(!h.is_crashed());
        assert_eq!(h.incarnations(), 1);
    }

    #[test]
    fn faulty_hybrid_handle_cycles_and_aborts() {
        let lock = HybridAnonymousMutex::new(2).unwrap();
        let mut a = lock.faulty_handle(pid(1), &FaultPlan::new(0)).unwrap();
        assert_eq!(a.try_enter(10_000), DriveOutcome::Satisfied);
        // The other handle cannot enter while a holds the lock; aborting
        // parks it cleanly so a can exit and b can enter.
        let mut b = lock.faulty_handle(pid(2), &FaultPlan::new(0)).unwrap();
        assert_eq!(b.try_enter(400), DriveOutcome::OutOfBudget);
        assert_eq!(b.abort(10_000), DriveOutcome::Satisfied);
        assert_eq!(a.exit(10_000), DriveOutcome::Satisfied);
        assert_eq!(b.try_enter(10_000), DriveOutcome::Satisfied);
        assert_eq!(b.exit(10_000), DriveOutcome::Satisfied);
        assert!(a.fault_log().is_empty());
    }

    #[test]
    fn consensus_with_faults_crashed_proposer_returns_none() {
        let consensus = AnonymousConsensus::new(2).unwrap();
        let plan = FaultPlan::new(0).crash(pid(1), 1);
        let crashed = consensus
            .handle(pid(1))
            .unwrap()
            .propose_with_faults(5, &plan, 100_000)
            .unwrap();
        assert_eq!(crashed, None);
        // The survivor still decides (solo): validity gives its own input
        // unless the crashed proposer's value was already visible.
        let survivor = consensus
            .handle(pid(2))
            .unwrap()
            .propose_with_faults(6, &plan, 1_000_000)
            .unwrap();
        let decided = survivor.expect("fault-free survivor decides");
        assert!(decided == 5 || decided == 6);
    }

    #[test]
    fn election_and_renaming_with_empty_plans_complete() {
        let election = AnonymousElection::new(2).unwrap();
        let leader = election
            .handle(pid(4))
            .unwrap()
            .elect_with_faults(&FaultPlan::new(0), 1_000_000)
            .unwrap();
        assert_eq!(leader, Some(pid(4)));

        let renaming = AnonymousRenaming::new(2).unwrap();
        let name = renaming
            .handle(pid(4))
            .unwrap()
            .acquire_with_faults(&FaultPlan::new(0), 1_000_000);
        assert_eq!(name, Some(1));
    }

    #[test]
    fn error_display_nonempty() {
        for e in [
            RuntimeError::BadRegisterCount { m: 2 },
            RuntimeError::NoProcesses,
            RuntimeError::TooManyHandles,
            RuntimeError::ZeroInput,
            RuntimeError::ValueTooWide { value: 1 << 40 },
            RuntimeError::DuplicatePid { pid: pid(3) },
        ] {
            assert!(!e.to_string().is_empty());
        }
    }
}
