//! Grep-lint: every `Ordering::SeqCst` outside `crates/sanitizer` must be
//! accounted for in `ci/seqcst_allowlist.txt`, with an exact per-file
//! count. New `SeqCst` sites therefore force a deliberate decision — either
//! justify the strong ordering in the allowlist, or weaken it and cite a
//! sanitizer certificate (`check sanitize`) at the site, as
//! `ORD-RT-PEEK-001` / `ORD-RT-HANDLE-002` do in the runtime.

use std::collections::BTreeMap;
use std::fs;
use std::path::{Path, PathBuf};

/// The needle, assembled so this file never matches itself.
const NEEDLE: &str = concat!("Ordering::", "SeqCst");

/// Directories scanned, relative to the workspace root.
const ROOTS: &[&str] = &["crates", "src", "tests"];

/// Path prefixes exempt from the lint: the sanitizer substrate's whole
/// job is to exercise every ordering, and this test assembles the needle
/// from pieces but is skipped anyway for robustness.
const EXEMPT: &[&str] = &["crates/sanitizer/", "tests/seqcst_lint.rs"];

fn workspace_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
}

fn visit(dir: &Path, files: &mut Vec<PathBuf>) {
    let Ok(entries) = fs::read_dir(dir) else {
        return;
    };
    for entry in entries.flatten() {
        let path = entry.path();
        if path.is_dir() {
            if path.file_name().is_some_and(|n| n == "target") {
                continue;
            }
            visit(&path, files);
        } else if path.extension().is_some_and(|e| e == "rs") {
            files.push(path);
        }
    }
}

/// Counts non-overlapping occurrences of [`NEEDLE`] in `text`.
fn count_occurrences(text: &str) -> usize {
    text.match_indices(NEEDLE).count()
}

fn actual_counts(root: &Path) -> BTreeMap<String, usize> {
    let mut files = Vec::new();
    for scan in ROOTS {
        visit(&root.join(scan), &mut files);
    }
    files.sort();
    let mut counts = BTreeMap::new();
    for file in files {
        let rel = file
            .strip_prefix(root)
            .expect("scanned file under workspace root")
            .to_string_lossy()
            .replace('\\', "/");
        if EXEMPT.iter().any(|prefix| rel.starts_with(prefix)) {
            continue;
        }
        let text =
            fs::read_to_string(&file).unwrap_or_else(|e| panic!("failed to read {rel}: {e}"));
        let n = count_occurrences(&text);
        if n > 0 {
            counts.insert(rel, n);
        }
    }
    counts
}

fn allowlisted_counts(root: &Path) -> BTreeMap<String, usize> {
    let path = root.join("ci/seqcst_allowlist.txt");
    let text = fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("failed to read {}: {e}", path.display()));
    let mut counts = BTreeMap::new();
    for (lineno, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut parts = line.split_whitespace();
        let (Some(count), Some(file)) = (parts.next(), parts.next()) else {
            panic!("ci/seqcst_allowlist.txt:{}: malformed line", lineno + 1);
        };
        let count: usize = count.parse().unwrap_or_else(|_| {
            panic!(
                "ci/seqcst_allowlist.txt:{}: count must be an integer",
                lineno + 1
            )
        });
        assert!(
            parts.next().is_some(),
            "ci/seqcst_allowlist.txt:{}: every entry needs a justification",
            lineno + 1
        );
        assert!(
            counts.insert(file.to_string(), count).is_none(),
            "ci/seqcst_allowlist.txt:{}: duplicate entry for {file}",
            lineno + 1
        );
    }
    counts
}

#[test]
fn every_seqcst_site_is_allowlisted_with_an_exact_count() {
    let root = workspace_root();
    let actual = actual_counts(&root);
    let allowed = allowlisted_counts(&root);

    let mut problems = Vec::new();
    for (file, &n) in &actual {
        match allowed.get(file) {
            None => problems.push(format!(
                "{file}: {n} {NEEDLE} site(s) not in ci/seqcst_allowlist.txt"
            )),
            Some(&a) if a != n => {
                problems.push(format!("{file}: {n} {NEEDLE} site(s), allowlist says {a}"));
            }
            Some(_) => {}
        }
    }
    for (file, &a) in &allowed {
        if !actual.contains_key(file) {
            problems.push(format!(
                "{file}: allowlisted ({a}) but has no {NEEDLE} sites — remove the stale entry"
            ));
        }
    }

    assert!(
        problems.is_empty(),
        "SeqCst allowlist out of date:\n  {}\n\
         Either justify the sites in ci/seqcst_allowlist.txt, or weaken them\n\
         and cite a certificate from `cargo run -p anonreg-bench --bin check -- sanitize`.",
        problems.join("\n  ")
    );
}

#[test]
fn the_sanitizer_crate_really_is_exempt_not_empty() {
    // Guard against the exemption silently rotting: the sanitizer must
    // keep using the needle (it ladders orderings up to SeqCst), so if a
    // rename ever makes this zero, the lint's exemption list needs a look.
    let root = workspace_root();
    let mut files = Vec::new();
    visit(&root.join("crates/sanitizer"), &mut files);
    let total: usize = files
        .iter()
        .map(|f| count_occurrences(&fs::read_to_string(f).unwrap_or_default()))
        .sum();
    assert!(total > 0, "crates/sanitizer no longer mentions {NEEDLE}");
}
