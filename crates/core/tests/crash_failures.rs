//! Crash-failure validation (§2's failure model): the paper's
//! obstruction-free algorithms keep their *safety* guarantees under any
//! number of crashes, and keep serving survivors — that is the entire point
//! of choosing registers + obstruction freedom over locks (compare
//! `baseline::lock_consensus`, which a single crash wedges forever).

use anonreg::consensus::AnonConsensus;
use anonreg::renaming::AnonRenaming;
use anonreg::spec::{check_consensus, check_renaming};
use anonreg::{Pid, View};
use anonreg_model::rng::Rng64;
use anonreg_sim::obstruction::check_obstruction_freedom;
use anonreg_sim::prelude::*;
use anonreg_sim::{sched, Simulation};

fn pid(n: u64) -> Pid {
    Pid::new(n).unwrap()
}

#[test]
fn consensus_n2_agreement_holds_under_exhaustive_crashes() {
    // Every interleaving AND every crash pattern: with crashes enabled the
    // explorer inserts a crash transition for each live process in each
    // state. Agreement and validity must hold in every reachable state.
    let inputs = [1u64, 2];
    for shift in 0..3 {
        let sim = Simulation::builder()
            .process(
                AnonConsensus::new(pid(1), 2, inputs[0]).unwrap(),
                View::identity(3),
            )
            .process(
                AnonConsensus::new(pid(2), 2, inputs[1]).unwrap(),
                View::rotated(3, shift),
            )
            .build()
            .unwrap();
        let graph = Explorer::new(sim)
            .max_states(2_000_000)
            .crashes(true)
            .run()
            .unwrap();
        let violation = graph.find_state(|s| {
            let decided: Vec<u64> = s
                .machines()
                .filter(|m| m.has_decided())
                .map(anonreg::consensus::AnonConsensus::preference)
                .collect();
            let disagree = decided.len() == 2 && decided[0] != decided[1];
            let invalid = decided.iter().any(|v| !inputs.contains(v));
            disagree || invalid
        });
        assert!(violation.is_none(), "shift {shift}");
    }
}

#[test]
fn consensus_survivors_stay_obstruction_free_after_crashes() {
    // From every reachable state — including every post-crash state — a
    // surviving process running alone still decides within the bound.
    let sim = Simulation::builder()
        .process(AnonConsensus::new(pid(1), 2, 1).unwrap(), View::identity(3))
        .process(
            AnonConsensus::new(pid(2), 2, 2).unwrap(),
            View::rotated(3, 1),
        )
        .build()
        .unwrap();
    let graph = Explorer::new(sim)
        .max_states(2_000_000)
        .crashes(true)
        .run()
        .unwrap();
    let report = check_obstruction_freedom(&graph, 64).unwrap();
    assert!(report.solo_runs > 0);
    assert!(report.max_solo_ops <= 18);
}

#[test]
fn consensus_randomized_crashes_never_break_agreement() {
    for n in [3usize, 4] {
        let inputs: Vec<u64> = (0..n as u64).map(|i| 10 + i).collect();
        for seed in 0..150u64 {
            let mut rng = Rng64::seed_from_u64(seed);
            let mut builder = Simulation::builder();
            for (i, &input) in inputs.iter().enumerate() {
                builder = builder.process(
                    AnonConsensus::new(pid(100 + i as u64), n, input).unwrap(),
                    View::rotated(2 * n - 1, rng.gen_index(2 * n - 1)),
                );
            }
            let mut sim = builder.build().unwrap();
            // Random prefix, then crash a random subset (leaving at least
            // one alive), then let the survivors run with bursts.
            sched::random(&mut sim, seed, rng.gen_index(200));
            let crash_count = rng.gen_index(n);
            for _ in 0..crash_count {
                let victim = rng.gen_index(n);
                // Keep at least one process alive.
                let alive = (0..n).filter(|&p| !sim.is_halted(p)).count();
                if alive > 1 && !sim.is_halted(victim) {
                    sim.crash(victim).unwrap();
                }
            }
            sched::random_bursts(&mut sim, seed ^ 0xBEEF, 8 * n, 60_000 * n);
            check_consensus(sim.trace(), &inputs)
                .unwrap_or_else(|v| panic!("n={n} seed={seed}: {v}"));
        }
    }
}

#[test]
fn renaming_n2_uniqueness_holds_under_exhaustive_crashes() {
    // Crash-enabled exhaustive exploration for n = 2: in every reachable
    // state (under any interleaving and any crash pattern), the set of
    // names announced so far must be duplicate-free and within {1, 2}.
    // Names travel via events, so check terminal-and-partial states by
    // replaying the discovery path.
    use anonreg_sim::explore::ScheduleAction;
    let build = || {
        Simulation::builder()
            .process(AnonRenaming::new(pid(1), 2).unwrap(), View::identity(3))
            .process(AnonRenaming::new(pid(2), 2).unwrap(), View::rotated(3, 1))
            .build()
            .unwrap()
    };
    let graph = Explorer::new(build())
        .max_states(2_000_000)
        .crashes(true)
        .run()
        .unwrap();
    let mut checked = 0;
    for (id, state) in graph.states() {
        if !state.all_halted() {
            continue;
        }
        checked += 1;
        let mut sim = build();
        for action in graph.actions_to(id) {
            match action {
                ScheduleAction::Step(p) => {
                    sim.step(p).unwrap();
                }
                ScheduleAction::Crash(p) => sim.crash(p).unwrap(),
            }
        }
        check_renaming(sim.trace(), 2).unwrap_or_else(|v| panic!("state {id}: {v}"));
    }
    assert!(checked > 0, "crash exploration reaches terminal states");
}

#[test]
fn renaming_randomized_crashes_never_break_uniqueness() {
    let n = 4;
    for seed in 0..100u64 {
        let mut rng = Rng64::seed_from_u64(seed.wrapping_mul(977));
        let mut builder = Simulation::builder();
        for i in 0..n {
            builder = builder.process(
                AnonRenaming::new(pid(500 + 3 * i as u64), n).unwrap(),
                View::rotated(2 * n - 1, rng.gen_index(2 * n - 1)),
            );
        }
        let mut sim = builder.build().unwrap();
        sched::random(&mut sim, seed, rng.gen_index(400));
        let victim = rng.gen_index(n);
        if !sim.is_halted(victim) {
            sim.crash(victim).unwrap();
        }
        sched::random_bursts(&mut sim, seed ^ 0xCAFE, 16 * n, 80_000 * n);
        // A crashed participant still counts toward the adaptivity bound
        // (it participated); survivors' names must be distinct and within
        // {1..n}.
        check_renaming(sim.trace(), n as u32).unwrap_or_else(|v| panic!("seed={seed}: {v}"));
    }
}

#[test]
fn lock_based_consensus_wedges_on_a_crash_but_fig2_does_not() {
    // The §4 motivation, executed: crash a process mid-algorithm and watch
    // the lock-based baseline starve its survivor while Figure 2 sails on.
    use anonreg::baseline::LockConsensus;

    // Baseline: crash the lock holder.
    let mut locky = Simulation::builder()
        .process_identity(LockConsensus::new(pid(1), 0, 2, 1).unwrap())
        .process_identity(LockConsensus::new(pid(2), 1, 2, 2).unwrap())
        .build()
        .unwrap();
    // Drive process 0 until it is inside the critical section (it has read
    // the decision register but not yet written it — 8 ops into its run).
    for _ in 0..8 {
        locky.step(0).unwrap();
    }
    locky.crash(0).unwrap();
    // The survivor spins forever on the dead process's Bakery ticket.
    let (_, halted) = locky.run_solo(1, 50_000).unwrap();
    assert!(!halted, "lock-based consensus must wedge after the crash");

    // Figure 2: crash one process anywhere; the survivor still decides.
    let mut anon = Simulation::builder()
        .process(AnonConsensus::new(pid(1), 2, 1).unwrap(), View::identity(3))
        .process(
            AnonConsensus::new(pid(2), 2, 2).unwrap(),
            View::rotated(3, 2),
        )
        .build()
        .unwrap();
    for _ in 0..8 {
        anon.step(0).unwrap();
    }
    anon.crash(0).unwrap();
    let (_, halted) = anon.run_solo(1, 50_000).unwrap();
    assert!(halted, "Figure 2's survivor must decide");
    let decided: Vec<u64> = anon
        .machines()
        .filter(|m| m.has_decided())
        .map(anonreg::consensus::AnonConsensus::preference)
        .collect();
    assert_eq!(decided.len(), 1);
    assert!([1, 2].contains(&decided[0]));
}
