//! Concrete solo execution, the ground truth for L4 and L5.
//!
//! Obstruction freedom — the progress condition of the paper's consensus
//! and renaming algorithms, and the mode in which Figure 1's exit code is
//! obliged to clean up — is a statement about *solo* runs: a process that
//! executes alone from some configuration must finish. The abstract CFG
//! over-approximates reads (any domain value may come back); a solo run is
//! the opposite: exact, because the process sees precisely what it wrote.
//! L4 and L5 therefore run the machine concretely against a register
//! vector instead of consulting the CFG.

use std::panic::{catch_unwind, AssertUnwindSafe};

use anonreg_model::{Machine, Step};

use crate::cfg::panic_message;

/// How a solo run ended.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SoloEnd {
    /// The machine emitted `Halt`.
    Halted,
    /// The operation budget ran out first.
    OutOfBudget,
    /// `resume` panicked.
    Panicked(String),
}

/// A completed (or truncated) solo run.
#[derive(Clone, Debug)]
pub struct SoloRun<M: Machine> {
    /// Final machine state.
    pub machine: M,
    /// Final register contents.
    pub registers: Vec<M::Value>,
    /// Rendered `resume(input) => step` transcript, replayable in order.
    pub transcript: Vec<String>,
    /// Atomic memory operations performed (reads + writes).
    pub ops: u64,
    /// Why the run stopped.
    pub end: SoloEnd,
}

/// Runs `machine` alone against `registers` (its exact private register
/// contents — the identity view; anonymity is irrelevant solo, since every
/// permutation of a solo run is the same run up to renaming) for at most
/// `max_ops` resume steps.
///
/// Every `resume` call — reads, writes, *and* events — counts against the
/// budget, so a machine that spins emitting events still reaches
/// [`SoloEnd::OutOfBudget`] instead of looping forever with an unboundedly
/// growing transcript. The returned [`SoloRun::ops`] still counts atomic
/// memory operations only.
///
/// # Panics
///
/// Panics if `registers.len() != machine.register_count()` — that is a
/// misconfigured lint, not a lint failure.
pub fn solo_run<M: Machine>(
    mut machine: M,
    mut registers: Vec<M::Value>,
    max_ops: u64,
) -> SoloRun<M> {
    assert_eq!(
        registers.len(),
        machine.register_count(),
        "solo run needs one initial value per register"
    );
    let mut transcript = Vec::new();
    let mut pending: Option<M::Value> = None;
    let mut ops = 0u64;
    let mut steps = 0u64;
    let end = loop {
        if steps >= max_ops {
            break SoloEnd::OutOfBudget;
        }
        steps += 1;
        let input = pending.take();
        let rendered_input = match &input {
            Some(v) => format!("resume(Some({v:?}))"),
            None => "resume(None)".to_string(),
        };
        let step = match catch_unwind(AssertUnwindSafe(|| machine.resume(input))) {
            Ok(step) => step,
            Err(payload) => {
                let message = panic_message(&payload);
                transcript.push(format!("{rendered_input} => panic: {message}"));
                break SoloEnd::Panicked(message);
            }
        };
        transcript.push(format!("{rendered_input} => {step:?}"));
        match step {
            Step::Read(j) => {
                ops += 1;
                // Out-of-range indices are L1's business; clamp the solo
                // run to a panic-free read so L4/L5 still report their own
                // properties.
                match registers.get(j) {
                    Some(v) => pending = Some(v.clone()),
                    None => pending = Some(M::Value::default()),
                }
            }
            Step::Write(j, v) => {
                ops += 1;
                if let Some(slot) = registers.get_mut(j) {
                    *slot = v;
                }
            }
            Step::Event(_) => {}
            Step::Halt => break SoloEnd::Halted,
        }
    };
    SoloRun {
        machine,
        registers,
        transcript,
        ops,
        end,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use anonreg_model::Pid;

    /// Writes its pid to every register, then zeroes them, then halts.
    #[derive(Clone, Debug, PartialEq, Eq, Hash)]
    struct Sweep {
        pid: Pid,
        m: usize,
        at: usize,
        phase: u8,
    }

    impl Machine for Sweep {
        type Value = u64;
        type Event = ();

        fn pid(&self) -> Pid {
            self.pid
        }

        fn register_count(&self) -> usize {
            self.m
        }

        fn resume(&mut self, _read: Option<u64>) -> Step<u64, ()> {
            match self.phase {
                0 => {
                    let step = Step::Write(self.at, self.pid.get());
                    self.at += 1;
                    if self.at == self.m {
                        self.at = 0;
                        self.phase = 1;
                    }
                    step
                }
                1 => {
                    let step = Step::Write(self.at, 0);
                    self.at += 1;
                    if self.at == self.m {
                        self.phase = 2;
                    }
                    step
                }
                _ => Step::Halt,
            }
        }
    }

    #[test]
    fn solo_run_tracks_registers_and_halts() {
        let run = solo_run(
            Sweep {
                pid: Pid::new(7).unwrap(),
                m: 3,
                at: 0,
                phase: 0,
            },
            vec![0; 3],
            100,
        );
        assert_eq!(run.end, SoloEnd::Halted);
        assert_eq!(run.registers, vec![0, 0, 0]);
        assert_eq!(run.ops, 6);
        assert_eq!(run.transcript.len(), 7); // 6 writes + Halt
    }

    /// Emits events forever without ever touching memory.
    #[derive(Clone, Debug, PartialEq, Eq, Hash)]
    struct Chatterbox {
        pid: Pid,
    }

    impl Machine for Chatterbox {
        type Value = u64;
        type Event = ();

        fn pid(&self) -> Pid {
            self.pid
        }

        fn register_count(&self) -> usize {
            1
        }

        fn resume(&mut self, _read: Option<u64>) -> Step<u64, ()> {
            Step::Event(())
        }
    }

    #[test]
    fn event_loops_exhaust_the_budget() {
        // Zero memory operations must not mean infinite budget: every
        // resume call is a step, so the run terminates with a bounded
        // transcript.
        let run = solo_run(
            Chatterbox {
                pid: Pid::new(1).unwrap(),
            },
            vec![0],
            10,
        );
        assert_eq!(run.end, SoloEnd::OutOfBudget);
        assert_eq!(run.ops, 0);
        assert_eq!(run.transcript.len(), 10);
    }

    #[test]
    fn budget_exhaustion_is_reported() {
        let run = solo_run(
            Sweep {
                pid: Pid::new(7).unwrap(),
                m: 3,
                at: 0,
                phase: 0,
            },
            vec![0; 3],
            2,
        );
        assert_eq!(run.end, SoloEnd::OutOfBudget);
        assert_eq!(run.registers, vec![7, 7, 0]);
    }
}
