//! anonreg-sanitizer — the memory-ordering sanitizer substrate.
//!
//! The paper's §2 model assumes *atomic* (linearizable) registers, and the
//! thread runtime realizes them with `SeqCst` atomics. This crate is the
//! third execution substrate, next to the simulator and the thread
//! runtime, and answers the question neither can: **which of those
//! `SeqCst` orderings does each algorithm actually need?**
//!
//! * [`SanitizedRegister`] implements the runtime's `Register<V>` trait
//!   with explicit-`Ordering` operations, per-slot vector clocks
//!   ([`VectorClock`]), per-register store histories, and
//!   acquire/release synchronizes-with tracking. A read that consumes
//!   another participant's store with no happens-before path is flagged
//!   as a structured [`OrderingViolation`] with a replayable witness
//!   trace (the same message-plus-numbered-witness shape as the lint
//!   suite's findings).
//! * [`SanitizedExec`] replays the e15 fault harness single-threaded and
//!   seeded — including [`FaultPlan`](anonreg_runtime::FaultPlan)
//!   crash/stall/restart injection — so every flagged violation
//!   reproduces from its seed.
//! * [`certify_family`] re-executes each of the seven algorithm families
//!   under systematically weakened [`OrderingPlan`]s and emits per-site
//!   minimal-ordering [`Certificate`]s; the runtime's relaxed hot-path
//!   sites cite these certificate IDs, and `ci/seqcst_allowlist.txt`
//!   holds the line against new uncertified `SeqCst` (or relaxed)
//!   sites.
//! * [`fixtures`](crate::fixtures::fixtures) are the negative controls —
//!   a relaxed doorway write and an unreleased consensus decide — that
//!   `check sanitize --broken` must flag for the clean verdicts to mean
//!   anything.
//!
//! Drive it with `check sanitize` (certify + verify), `check sanitize
//! --broken` (negative controls), and `check sanitize --family F
//! --replay SEED` (rerun one schedule); `repro e17` renders the
//! experiment tables.

#![forbid(unsafe_code)]

pub mod clock;
pub mod exec;
pub mod fixtures;
pub mod infer;
pub mod plan;
pub mod register;
pub mod report;

pub use clock::VectorClock;
pub use exec::{ExecEvent, ExecEventKind, ExecReport, SanitizedExec};
pub use fixtures::{fixture, fixtures as broken_fixtures, BrokenFixture, FixtureOutcome};
pub use infer::{
    certify_family, explorer_site_notes, run_family, runtime_site_notes, schedule_seed, sweep_plan,
    FamilyCertification, FamilyOutcome, PlanSweep, RejectedRung, FAMILIES,
};
pub use plan::{is_acquire, is_release, OrderingPlan, Site};
pub use register::{CtxSnapshot, SanitizedRegister, SanitizerConfig, SanitizerCtx};
pub use report::{Certificate, OrderingViolation, ViolationKind};

use std::sync::Arc;

use anonreg_model::RegisterValue;
use anonreg_runtime::AnonymousMemory;

/// Builds an [`AnonymousMemory`] of `m` sanitized registers sharing one
/// context, so acquire/release edges compose across registers and one
/// snapshot covers the whole memory. This is the drop-in path for running
/// the *thread* runtime's drivers over sanitized registers; deterministic
/// runs use [`SanitizedExec`] instead.
#[must_use]
pub fn sanitized_memory<V: RegisterValue>(
    ctx: &Arc<SanitizerCtx>,
    m: usize,
) -> AnonymousMemory<SanitizedRegister<V>> {
    AnonymousMemory::from_registers(
        (0..m)
            .map(|_| SanitizedRegister::attached(ctx, V::default()))
            .collect(),
    )
}
