//! Stable 64-bit fingerprinting for state interning.
//!
//! The explicit-state model checker in `anonreg-sim` deduplicates billions
//! of candidate configurations. Rust's default [`std::collections::HashMap`]
//! hasher is randomly keyed per process, which is exactly right for
//! DoS-resistant maps but wrong for *interning*: the parallel explorer
//! shards its dedup table by state hash and exchanges `(id, fingerprint)`
//! pairs between workers, so every thread must compute the **same**
//! fingerprint for the same configuration, and a run must be reproducible
//! from its recorded fingerprints.
//!
//! [`Fnv64`] is the classic FNV-1a 64-bit hash as a [`Hasher`], with the
//! multi-byte integer writes pinned to little-endian so fingerprints are
//! stable across platforms as well as across threads. It is *not* collision
//! resistant against adversarial inputs — interners must confirm candidate
//! matches with a full equality check, which is what the explorer's sharded
//! table does.

use std::hash::{Hash, Hasher};

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// The FNV-1a 64-bit hash as a deterministic [`Hasher`].
///
/// Unlike [`std::collections::hash_map::RandomState`], two `Fnv64` values
/// fed the same bytes always agree — across instances, threads, processes
/// and platforms (integer writes are little-endian).
#[derive(Clone, Copy, Debug)]
pub struct Fnv64 {
    state: u64,
}

impl Fnv64 {
    /// Creates a hasher at the standard FNV-1a offset basis.
    #[must_use]
    pub fn new() -> Self {
        Fnv64 { state: FNV_OFFSET }
    }
}

impl Default for Fnv64 {
    fn default() -> Self {
        Fnv64::new()
    }
}

impl Hasher for Fnv64 {
    fn finish(&self) -> u64 {
        self.state
    }

    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.state ^= u64::from(b);
            self.state = self.state.wrapping_mul(FNV_PRIME);
        }
    }

    fn write_u8(&mut self, i: u8) {
        self.write(&[i]);
    }

    fn write_u16(&mut self, i: u16) {
        self.write(&i.to_le_bytes());
    }

    fn write_u32(&mut self, i: u32) {
        self.write(&i.to_le_bytes());
    }

    fn write_u64(&mut self, i: u64) {
        self.write(&i.to_le_bytes());
    }

    fn write_u128(&mut self, i: u128) {
        self.write(&i.to_le_bytes());
    }

    fn write_usize(&mut self, i: usize) {
        // Hash as u64 so 32- and 64-bit builds agree.
        self.write_u64(i as u64);
    }

    fn write_i8(&mut self, i: i8) {
        self.write_u8(i as u8);
    }

    fn write_i16(&mut self, i: i16) {
        self.write_u16(i as u16);
    }

    fn write_i32(&mut self, i: i32) {
        self.write_u32(i as u32);
    }

    fn write_i64(&mut self, i: i64) {
        self.write_u64(i as u64);
    }

    fn write_i128(&mut self, i: i128) {
        self.write_u128(i as u128);
    }

    fn write_isize(&mut self, i: isize) {
        self.write_u64(i as u64);
    }
}

/// The stable fingerprint of any hashable value: `value` fed through a
/// fresh [`Fnv64`].
#[must_use]
pub fn fingerprint_of<T: Hash + ?Sized>(value: &T) -> u64 {
    let mut hasher = Fnv64::new();
    value.hash(&mut hasher);
    hasher.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_across_instances() {
        let a = fingerprint_of(&(1u64, vec![2u8, 3], "state"));
        let b = fingerprint_of(&(1u64, vec![2u8, 3], "state"));
        assert_eq!(a, b);
    }

    #[test]
    fn distinguishes_values() {
        assert_ne!(fingerprint_of(&1u64), fingerprint_of(&2u64));
        assert_ne!(fingerprint_of(&[1u8, 2]), fingerprint_of(&[2u8, 1]));
    }

    #[test]
    fn matches_reference_vectors() {
        // FNV-1a 64 reference values for raw byte input.
        let mut h = Fnv64::new();
        h.write(b"");
        assert_eq!(h.finish(), 0xcbf2_9ce4_8422_2325);
        let mut h = Fnv64::new();
        h.write(b"a");
        assert_eq!(h.finish(), 0xaf63_dc4c_8601_ec8c);
        let mut h = Fnv64::new();
        h.write(b"foobar");
        assert_eq!(h.finish(), 0x8594_4171_f739_67e8);
    }

    #[test]
    fn integer_writes_are_width_stable() {
        // usize hashes like u64, so fingerprints agree across pointer widths.
        let mut a = Fnv64::new();
        a.write_usize(7);
        let mut b = Fnv64::new();
        b.write_u64(7);
        assert_eq!(a.finish(), b.finish());
    }
}
