//! E5 — renaming validation and adaptivity (Theorems 5.1–5.3).
//!
//! For `k` participants out of `n` potential processes, run seeded
//! adversary schedules of the Figure 3 algorithm and check uniqueness plus
//! the adaptive range: names must come from `{1..k}`, not merely `{1..n}`.

use anonreg::renaming::AnonRenaming;
use anonreg::spec::check_renaming;
use anonreg::Pid;

use crate::benchjson::BenchMetric;
use crate::table::Table;
use crate::workload::run_randomized;

/// One row of the renaming sweep.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Row {
    /// Potential processes (`registers = 2n − 1`).
    pub n: usize,
    /// Actual participants.
    pub k: usize,
    /// Seeded schedules executed.
    pub runs: usize,
    /// Runs in which every participant acquired a name within the budget.
    pub completed: usize,
    /// Largest name observed across all runs (adaptivity predicts `≤ k`).
    pub max_name: u32,
    /// Specification violations (duplicate or out-of-range names).
    pub violations: usize,
}

/// Runs the sweep for every `k ∈ 1..=n`, `seeds` schedules each.
#[must_use]
pub fn rows(n: usize, seeds: u64) -> Vec<Row> {
    (1..=n)
        .map(|k| {
            let mut completed = 0;
            let mut violations = 0;
            let mut max_name = 0;
            for seed in 0..seeds {
                let machines: Vec<AnonRenaming> = (0..k)
                    .map(|i| {
                        AnonRenaming::new(Pid::new(1000 + i as u64 * 17).unwrap(), n)
                            .expect("valid configuration")
                    })
                    .collect();
                let budget = 60_000 * n;
                let sim = run_randomized(machines, seed, 16 * n, budget);
                if sim.all_halted() {
                    completed += 1;
                }
                match check_renaming(sim.trace(), k as u32) {
                    Ok(stats) => max_name = max_name.max(stats.max_name()),
                    Err(_) => violations += 1,
                }
            }
            Row {
                n,
                k,
                runs: seeds as usize,
                completed,
                max_name,
                violations,
            }
        })
        .collect()
}

/// Renders the table for the given rows.
#[must_use]
pub fn render(rows: &[Row]) -> String {
    let mut t = Table::new(vec![
        "n",
        "k (participants)",
        "runs",
        "all named",
        "max name",
        "adaptive bound",
        "violations",
    ]);
    for r in rows {
        t.row(vec![
            r.n.to_string(),
            r.k.to_string(),
            r.runs.to_string(),
            r.completed.to_string(),
            r.max_name.to_string(),
            r.k.to_string(),
            r.violations.to_string(),
        ]);
    }
    t.render()
}

/// Machine-readable metrics for the given rows.
#[must_use]
pub fn metrics(rows: &[Row]) -> Vec<BenchMetric> {
    let mut out = Vec::new();
    for r in rows {
        let (n, k) = (r.n, r.k);
        out.push(BenchMetric::new(
            "E5",
            "renaming",
            format!("n{n}_k{k}_runs"),
            r.runs as f64,
            "runs",
        ));
        out.push(BenchMetric::new(
            "E5",
            "renaming",
            format!("n{n}_k{k}_completed"),
            r.completed as f64,
            "runs",
        ));
        out.push(BenchMetric::new(
            "E5",
            "renaming",
            format!("n{n}_k{k}_max_name"),
            f64::from(r.max_name),
            "name",
        ));
        out.push(BenchMetric::new(
            "E5",
            "renaming",
            format!("n{n}_k{k}_violations"),
            r.violations as f64,
            "violations",
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn adaptivity_holds_across_seeds() {
        for row in rows(4, 15) {
            assert_eq!(row.violations, 0, "k={}", row.k);
            assert!(row.max_name <= row.k as u32, "k={}: {row:?}", row.k);
            assert!(row.completed * 2 >= row.runs, "k={}: {row:?}", row.k);
        }
    }
}
