//! E18 — wall-clock phase profiling of the E16 exploration workloads
//! and the runtime driver.
//!
//! `BENCH_explore.json` says *that* the mutex `m = 3, ℓ = 3` sweep costs
//! 121 s — this experiment says *where* the time goes. Each E16 workload
//! is explored with a [`Profiler`] attached: every engine worker drives
//! a phase timer (`step`/`canon`/`dedup`/`steal`/`idle`) and flushes its
//! per-phase self-time tree at exit. The same machinery profiles the
//! runtime [`Driver`] on real threads (`doorway`/`waiting`/`critical`,
//! with backoff windows nested as `…;waiting`), mapping the paper's §2
//! operations onto measured wall-clock.
//!
//! Self-times are *exhaustive* by construction — a worker is always in
//! exactly one phase between its first transition and its flush — so
//! the per-run **coverage** (total self-time over workers × wall-clock)
//! must account for most of the run; `check profile` enforces a floor
//! on it. It cannot reach 1.0 exactly: the wall also covers setup and
//! final graph assembly, which are not worker self-time (measured
//! full-scale: ~0.75–0.86 with symmetry off, ~0.91 under full). The
//! collapsed-stack export ([`ProfiledRun::collapsed`]) is the
//! `inferno`/speedscope flamegraph format, one `run;worker;phase ns`
//! line per frame.

use std::sync::Arc;
use std::time::{Duration, Instant};

use anonreg::mutex::{AnonMutex, MutexEvent};
use anonreg::{Pid, View};
use anonreg_obs::{Phase, Profiler, WorkerProfile};
use anonreg_runtime::{AnonymousMemory, Backoff, Driver, PackedAtomicRegister};
use anonreg_sim::prelude::*;

use crate::benchjson::BenchMetric;
use crate::e16_symmetry::{mutex_ring_sim, symmetric_consensus_sim, Workload};
use crate::live::Instruments;
use crate::table::Table;

/// The event→phase map for the paper's mutual-exclusion events:
/// `Enter` begins the critical section, `Exit`/`Aborted` return the
/// process to its doorway/remainder code.
#[must_use]
pub fn mutex_phase(event: &MutexEvent) -> Option<Phase> {
    match event {
        MutexEvent::Enter => Some(Phase::Critical),
        MutexEvent::Exit | MutexEvent::Aborted => Some(Phase::Doorway),
    }
}

/// One profiled exploration of an E16 workload.
#[derive(Debug)]
pub struct ProfiledRun {
    /// A short identifier, e.g. `mutex_m2_l2_full_t1` for explorations
    /// or `driver_m3` for the runtime run.
    pub slug: String,
    /// Worker threads the run used (runtime: racing processes).
    pub threads: usize,
    /// States stored (0 for runtime runs).
    pub states: usize,
    /// Wall-clock of the instrumented section.
    pub wall: Duration,
    /// Every worker's flushed phase tree.
    pub profiles: Vec<WorkerProfile>,
}

impl ProfiledRun {
    /// Total self-time across all workers and frames.
    #[must_use]
    pub fn total_self_ns(&self) -> u64 {
        self.profiles.iter().map(WorkerProfile::total_self_ns).sum()
    }

    /// Self-time coverage of the measured wall-clock: total self-time
    /// divided by `workers × wall`. Near 1.0 when the phase timers
    /// account for (almost) everything the workers did.
    #[must_use]
    pub fn coverage(&self) -> f64 {
        let workers = self.profiles.len().max(1) as f64;
        self.total_self_ns() as f64 / (workers * self.wall.as_nanos().max(1) as f64)
    }

    /// Per-stack self-time aggregated over workers, sorted by
    /// descending self-time.
    #[must_use]
    pub fn phase_breakdown(&self) -> Vec<(String, u64)> {
        let mut by_stack = std::collections::BTreeMap::<&str, u64>::new();
        for w in &self.profiles {
            for (stack, ns) in &w.frames {
                *by_stack.entry(stack).or_insert(0) += ns;
            }
        }
        let mut out: Vec<(String, u64)> = by_stack
            .into_iter()
            .map(|(s, ns)| (s.to_string(), ns))
            .collect();
        out.sort_by_key(|(_, ns)| std::cmp::Reverse(*ns));
        out
    }

    /// Collapsed-stack flamegraph lines for this run, rooted at the run
    /// slug: `mutex_m2_l2_off_t1;worker0;step 12345`.
    #[must_use]
    pub fn collapsed(&self) -> String {
        let mut out = String::new();
        for w in &self.profiles {
            for (stack, ns) in &w.frames {
                out.push_str(&format!("{};worker{};{stack} {ns}\n", self.slug, w.worker));
            }
        }
        out
    }
}

/// Explores one E16 workload under `mode` with the profiler attached.
///
/// # Errors
///
/// Propagates [`ExploreError::StateLimitExceeded`].
pub fn profile_workload(
    workload: Workload,
    mode: SymmetryMode,
    threads: usize,
    max_states: usize,
) -> Result<ProfiledRun, ExploreError> {
    let profiler = Arc::new(Profiler::new());
    let ins = Instruments {
        probe: None,
        profiler: Some(Arc::clone(&profiler)),
    };
    let start = Instant::now();
    let states = match workload {
        Workload::MutexRing { m, procs } => {
            crate::live::explore(mutex_ring_sim(m, procs), mode, threads, max_states, &ins)?
                .state_count()
        }
        Workload::SymmetricConsensus { n, registers } => crate::live::explore(
            symmetric_consensus_sim(n, registers),
            mode,
            threads,
            max_states,
            &ins,
        )?
        .state_count(),
    };
    let wall = start.elapsed();
    Ok(ProfiledRun {
        slug: format!("{}_{}_t{}", workload.slug(), mode, threads),
        threads,
        states,
        wall,
        profiles: profiler.profiles(),
    })
}

/// Profiles the runtime driver: two real threads race the Figure 1
/// lock (`m` registers, second view rotated by 1, `entries` critical
/// sections each, randomized backoff on) with phase timers keyed by
/// pid. The resulting frames are the §2 protocol operations:
/// `doorway`, `critical`, and nested `…;waiting` backoff windows.
#[must_use]
pub fn profile_runtime(m: usize, entries: u64) -> ProfiledRun {
    let profiler = Arc::new(Profiler::new());
    let mem: AnonymousMemory<PackedAtomicRegister<u64>> = AnonymousMemory::new(m);
    let start = Instant::now();
    std::thread::scope(|s| {
        for (id, shift) in [(1u64, 0usize), (2, 1 % m)] {
            let view = mem.view(View::rotated(m, shift));
            let profiler = Arc::clone(&profiler);
            s.spawn(move || {
                let machine = AnonMutex::new(Pid::new(id).unwrap(), m)
                    .unwrap()
                    .with_cycles(entries);
                let mut driver = Driver::new(machine, view)
                    .with_backoff(Backoff {
                        min_spins: 1,
                        max_spins: 1 << 10,
                    })
                    .with_profiler(profiler, mutex_phase);
                driver.run_to_halt();
            });
        }
    });
    let wall = start.elapsed();
    ProfiledRun {
        slug: format!("driver_m{m}"),
        threads: 2,
        states: 0,
        wall,
        profiles: profiler.profiles(),
    }
}

/// The default profiling sweep: both E16 workloads (quick or
/// full-scale shapes) under `off` and `full`, at `threads` threads.
///
/// # Errors
///
/// Propagates [`ExploreError::StateLimitExceeded`].
pub fn rows(
    full_scale: bool,
    threads: usize,
    max_states: usize,
) -> Result<Vec<ProfiledRun>, ExploreError> {
    let workloads = if full_scale {
        Workload::full_scale().to_vec()
    } else {
        vec![
            Workload::MutexRing { m: 2, procs: 2 },
            Workload::SymmetricConsensus { n: 2, registers: 2 },
        ]
    };
    let mut out = Vec::new();
    for workload in workloads {
        for mode in [SymmetryMode::Off, SymmetryMode::Full] {
            out.push(profile_workload(workload, mode, threads, max_states)?);
        }
    }
    Ok(out)
}

/// Renders the per-run phase breakdown table.
#[must_use]
pub fn render(runs: &[ProfiledRun]) -> String {
    let mut t = Table::new(vec!["run", "phase stack", "self ms", "share", "coverage"]);
    for run in runs {
        let total = run.total_self_ns().max(1);
        let mut first = true;
        for (stack, ns) in run.phase_breakdown() {
            t.row(vec![
                run.slug.clone(),
                stack,
                format!("{:.2}", ns as f64 / 1e6),
                format!("{:.1}%", ns as f64 * 100.0 / total as f64),
                if first {
                    format!("{:.1}%", run.coverage() * 100.0)
                } else {
                    String::new()
                },
            ]);
            first = false;
        }
    }
    t.render()
}

/// Machine-readable metrics for the given runs (experiment `E18`):
/// per-stack self-milliseconds, wall-clock, and coverage per run.
#[must_use]
pub fn metrics(runs: &[ProfiledRun]) -> Vec<BenchMetric> {
    let mut out = Vec::new();
    for run in runs {
        let family = if run.slug.starts_with("consensus") {
            "consensus"
        } else {
            "mutex"
        };
        for (stack, ns) in run.phase_breakdown() {
            out.push(BenchMetric::new(
                "E18",
                family,
                format!("{}_{}_ms", run.slug, stack.replace(';', ".")),
                ns as f64 / 1e6,
                "ms",
            ));
        }
        out.push(BenchMetric::new(
            "E18",
            family,
            format!("{}_wall_ms", run.slug),
            run.wall.as_secs_f64() * 1000.0,
            "ms",
        ));
        out.push(BenchMetric::new(
            "E18",
            family,
            format!("{}_coverage", run.slug),
            run.coverage(),
            "x",
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sequential_explore_profile_covers_the_wall_clock() {
        let run = profile_workload(
            Workload::SymmetricConsensus { n: 2, registers: 2 },
            SymmetryMode::Off,
            1,
            200_000,
        )
        .unwrap();
        assert_eq!(run.profiles.len(), 1, "sequential engine is one worker");
        assert!(run.states > 100);
        let stacks: Vec<&str> = run.profiles[0]
            .frames
            .iter()
            .map(|(s, _)| s.as_str())
            .collect();
        assert!(stacks.contains(&"step"), "missing step in {stacks:?}");
        assert!(stacks.contains(&"dedup"), "missing dedup in {stacks:?}");
        // The timer runs from the first state popped to engine exit, so
        // self-times must account for (nearly) the whole exploration.
        assert!(
            run.coverage() > 0.8,
            "coverage {:.3} too low ({:?} wall, {} self ns)",
            run.coverage(),
            run.wall,
            run.total_self_ns()
        );
    }

    #[test]
    fn full_mode_profile_shows_canon_time() {
        let run = profile_workload(
            Workload::MutexRing { m: 2, procs: 2 },
            SymmetryMode::Full,
            1,
            200_000,
        )
        .unwrap();
        assert!(
            run.phase_breakdown().iter().any(|(s, _)| s == "canon"),
            "full-mode exploration must charge canon time: {:?}",
            run.phase_breakdown()
        );
    }

    #[test]
    fn parallel_profile_has_one_tree_per_worker() {
        let run = profile_workload(
            Workload::SymmetricConsensus { n: 2, registers: 2 },
            SymmetryMode::Off,
            2,
            200_000,
        )
        .unwrap();
        assert_eq!(run.profiles.len(), 2);
        let collapsed = run.collapsed();
        assert!(collapsed.contains("worker0;"));
        assert!(collapsed.contains("worker1;"));
        assert!(collapsed
            .lines()
            .all(|l| l.starts_with("consensus_n2_r2_off_t2;")));
    }

    #[test]
    fn runtime_profile_charges_protocol_phases() {
        let run = profile_runtime(3, 50);
        assert_eq!(run.profiles.len(), 2, "one tree per racing process");
        let breakdown = run.phase_breakdown();
        assert!(breakdown.iter().any(|(s, _)| s == "doorway"));
        assert!(breakdown.iter().any(|(s, _)| s == "critical"));
        let m = metrics(std::slice::from_ref(&run));
        assert!(m.iter().any(|x| x.name == "driver_m3_wall_ms"));
        assert!(m.iter().all(|x| x.experiment == "E18"));
    }
}
