//! E4/E6/E7 machinery benchmark: cost of constructing the covering-argument
//! violations as the instance size grows.

use anonreg_bench::timing::{criterion_group, criterion_main, BenchmarkId, Criterion};

use anonreg_lower::consensus_cover::disagreement;
use anonreg_lower::mutex_cover::unknown_n_attack;
use anonreg_lower::renaming_cover::duplicate_name;

fn bench_consensus_cover(c: &mut Criterion) {
    let mut group = c.benchmark_group("e4_consensus_cover");
    for n in [2usize, 4, 8, 16] {
        group.bench_with_input(BenchmarkId::new("disagreement", n), &n, |b, &n| {
            b.iter(|| disagreement(n, n - 1).unwrap());
        });
    }
    group.finish();
}

fn bench_renaming_cover(c: &mut Criterion) {
    let mut group = c.benchmark_group("e6_renaming_cover");
    for n in [2usize, 4, 8] {
        group.bench_with_input(BenchmarkId::new("duplicate_name", n), &n, |b, &n| {
            b.iter(|| duplicate_name(n, n - 1).unwrap());
        });
    }
    group.finish();
}

fn bench_mutex_cover(c: &mut Criterion) {
    let mut group = c.benchmark_group("e7_mutex_cover");
    for m in [1usize, 3, 5, 9] {
        group.bench_with_input(BenchmarkId::new("unknown_n", m), &m, |b, &m| {
            b.iter(|| unknown_n_attack(m, 40_000));
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_consensus_cover,
    bench_renaming_cover,
    bench_mutex_cover
);
criterion_main!(benches);
