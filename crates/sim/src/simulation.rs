//! The deterministic one-operation-at-a-time simulator.

use std::fmt;

use anonreg_model::trace::{Trace, TraceOp};
use anonreg_model::{Machine, PidMap, Step, SymmetryMode, View};

/// What happened when a process was granted one atomic step.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum StepOutcome {
    /// The process performed an atomic read.
    Read,
    /// The process performed an atomic write.
    Write,
    /// The process announced an event (no shared-memory effect). Events are
    /// scheduling points of their own: a process that has *entered* its
    /// critical section stays there until the adversary grants it another
    /// step — otherwise overlap would be unobservable.
    Event,
    /// The process halted; it has no further steps.
    Halted,
}

impl StepOutcome {
    /// `true` for the outcomes the paper counts as steps: atomic reads and
    /// writes.
    #[must_use]
    pub fn is_memory_op(self) -> bool {
        matches!(self, StepOutcome::Read | StepOutcome::Write)
    }
}

/// Error returned when a simulation is misconfigured or misused.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SimError {
    /// The simulation has no processes.
    NoProcesses,
    /// A machine expects a different number of registers than the others.
    RegisterCountMismatch {
        /// The offending process slot.
        proc: usize,
        /// Its expected register count.
        expected: usize,
        /// The simulation's register count (from process 0).
        actual: usize,
    },
    /// A view covers a different number of registers than the machines use.
    ViewSizeMismatch {
        /// The offending process slot.
        proc: usize,
    },
    /// A process slot out of range was addressed.
    NoSuchProcess {
        /// The offending slot.
        proc: usize,
    },
    /// A step was requested from a process that already halted.
    ProcessHalted {
        /// The halted slot.
        proc: usize,
    },
    /// `apply_poised` was called for a process that holds no poised write.
    NothingPoised {
        /// The offending slot.
        proc: usize,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::NoProcesses => write!(f, "simulation needs at least one process"),
            SimError::RegisterCountMismatch {
                proc,
                expected,
                actual,
            } => write!(
                f,
                "process {proc} expects {expected} registers but the simulation has {actual}"
            ),
            SimError::ViewSizeMismatch { proc } => {
                write!(
                    f,
                    "view of process {proc} does not match the register count"
                )
            }
            SimError::NoSuchProcess { proc } => write!(f, "no process with slot {proc}"),
            SimError::ProcessHalted { proc } => write!(f, "process {proc} already halted"),
            SimError::NothingPoised { proc } => {
                write!(f, "process {proc} holds no poised write")
            }
        }
    }
}

impl std::error::Error for SimError {}

/// Per-process execution state within a simulation.
///
/// Public (crate-wide) so the explorer can snapshot and hash it.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub(crate) struct Slot<M: Machine> {
    pub(crate) machine: M,
    pub(crate) view: View,
    /// Result of the last read, to be fed into the next `resume`.
    pub(crate) pending_input: Option<M::Value>,
    /// A write the machine has issued but the adversary has not yet applied
    /// — the process *covers* that register (§6.1).
    pub(crate) poised: Option<(usize, M::Value)>,
    pub(crate) halted: bool,
}

/// Builder for [`Simulation`]; add processes with their views, then
/// [`build`](SimulationBuilder::build).
#[derive(Debug, Default)]
pub struct SimulationBuilder<M: Machine> {
    processes: Vec<(M, View)>,
}

impl<M: Machine> SimulationBuilder<M> {
    /// Adds a process with an explicit register view.
    #[must_use]
    pub fn process(mut self, machine: M, view: View) -> Self {
        self.processes.push((machine, view));
        self
    }

    /// Adds a process with the identity view (the named-register default).
    #[must_use]
    pub fn process_identity(self, machine: M) -> Self {
        let m = machine.register_count();
        self.process(machine, View::identity(m))
    }

    /// Builds the simulation, validating register counts and view sizes.
    ///
    /// # Errors
    ///
    /// Returns [`SimError`] if there are no processes, if machines disagree
    /// on the register count, or if a view's size does not match it.
    pub fn build(self) -> Result<Simulation<M>, SimError> {
        let first = self
            .processes
            .first()
            .ok_or(SimError::NoProcesses)?
            .0
            .register_count();
        for (proc, (machine, view)) in self.processes.iter().enumerate() {
            if machine.register_count() != first {
                return Err(SimError::RegisterCountMismatch {
                    proc,
                    expected: machine.register_count(),
                    actual: first,
                });
            }
            if view.len() != first {
                return Err(SimError::ViewSizeMismatch { proc });
            }
        }
        Ok(Simulation {
            registers: vec![M::Value::default(); first],
            slots: self
                .processes
                .into_iter()
                .map(|(machine, view)| Slot {
                    machine,
                    view,
                    pending_input: None,
                    poised: None,
                    halted: false,
                })
                .collect(),
            trace: Trace::new(),
        })
    }
}

/// A deterministic simulation of processes over anonymous shared registers.
///
/// The simulation owns the physical register array (initially all
/// [`Default`]), one execution slot per process, and the growing
/// [`Trace`]. The *caller* is the adversary: it decides which process takes
/// the next atomic step ([`step`](Simulation::step)) and can freeze a
/// process right before a write ([`step_to_cover`](Simulation::step_to_cover)
/// / [`apply_poised`](Simulation::apply_poised)), which is the covering move
/// used throughout §6 of the paper.
///
/// Events are scheduling points of their own but do not count as memory
/// operations: a process that announced a milestone (say, critical-section
/// entry) *stays in the corresponding state* until the adversary schedules
/// it again. Step budgets throughout the crate count only reads and writes,
/// matching the paper's accounting.
#[derive(Clone)]
pub struct Simulation<M: Machine> {
    registers: Vec<M::Value>,
    slots: Vec<Slot<M>>,
    trace: Trace<M::Value, M::Event>,
}

impl<M: Machine> Simulation<M> {
    /// Starts building a simulation.
    #[must_use]
    pub fn builder() -> SimulationBuilder<M> {
        SimulationBuilder {
            processes: Vec::new(),
        }
    }

    /// The number of processes.
    #[must_use]
    pub fn process_count(&self) -> usize {
        self.slots.len()
    }

    /// The number of shared registers.
    #[must_use]
    pub fn register_count(&self) -> usize {
        self.registers.len()
    }

    /// The current physical register contents.
    #[must_use]
    pub fn registers(&self) -> &[M::Value] {
        &self.registers
    }

    /// The machine of process `proc`.
    ///
    /// # Panics
    ///
    /// Panics if `proc` is out of range.
    #[must_use]
    pub fn machine(&self, proc: usize) -> &M {
        &self.slots[proc].machine
    }

    /// Iterates over all machines in slot order.
    pub fn machines(&self) -> impl Iterator<Item = &M> {
        self.slots.iter().map(|s| &s.machine)
    }

    /// The view of process `proc`.
    ///
    /// # Panics
    ///
    /// Panics if `proc` is out of range.
    #[must_use]
    pub fn view(&self, proc: usize) -> &View {
        &self.slots[proc].view
    }

    /// Returns `true` if process `proc` has halted.
    ///
    /// # Panics
    ///
    /// Panics if `proc` is out of range.
    #[must_use]
    pub fn is_halted(&self, proc: usize) -> bool {
        self.slots[proc].halted
    }

    /// Returns `true` if every process has halted.
    #[must_use]
    pub fn all_halted(&self) -> bool {
        self.slots.iter().all(|s| s.halted)
    }

    /// The physical register covered by process `proc`'s poised write, if
    /// any.
    ///
    /// # Panics
    ///
    /// Panics if `proc` is out of range.
    #[must_use]
    pub fn covered_register(&self, proc: usize) -> Option<usize> {
        self.slots[proc]
            .poised
            .as_ref()
            .map(|(local, _)| self.slots[proc].view.physical(*local))
    }

    /// The recorded trace so far.
    #[must_use]
    pub fn trace(&self) -> &Trace<M::Value, M::Event> {
        &self.trace
    }

    /// Consumes the simulation and returns its trace.
    #[must_use]
    pub fn into_trace(self) -> Trace<M::Value, M::Event> {
        self.trace
    }

    /// Crashes process `proc`: it takes no further steps — the paper's §2
    /// failure model ("they fail only by never entering the algorithm or by
    /// leaving the algorithm at some point and thereafter permanently
    /// refraining from writing the shared registers"). A poised write is
    /// discarded: a crashed process writes nothing more.
    ///
    /// Crashing is idempotent; crashing a halted process is a no-op.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::NoSuchProcess`] for an out-of-range slot.
    pub fn crash(&mut self, proc: usize) -> Result<(), SimError> {
        let slot = self
            .slots
            .get_mut(proc)
            .ok_or(SimError::NoSuchProcess { proc })?;
        if !slot.halted {
            slot.halted = true;
            slot.poised = None;
            let pid = slot.machine.pid();
            self.trace.record(proc, pid, TraceOp::Halt);
        }
        Ok(())
    }

    /// Grants process `proc` one atomic step (read or write). Events the
    /// machine emits on the way are recorded. A poised write, if present, is
    /// applied as the step.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::NoSuchProcess`] for an out-of-range slot and
    /// [`SimError::ProcessHalted`] if the process already halted (a halted
    /// process has no steps, matching the model).
    pub fn step(&mut self, proc: usize) -> Result<StepOutcome, SimError> {
        self.step_inner(proc)
    }

    /// Runs process `proc` up to (but not including) its next write: the
    /// write is *poised* and `proc` now **covers** that register. Reads on
    /// the way are performed normally. If the machine halts before writing,
    /// `Halted` is returned.
    ///
    /// While poised, the process's next [`step`](Simulation::step) (or
    /// [`apply_poised`](Simulation::apply_poised)) performs exactly that
    /// write — "notice that if process p covers register reg in run x then p
    /// covers reg in any extension of x which does not involve p" (§6.1).
    ///
    /// # Errors
    ///
    /// Same conditions as [`step`](Simulation::step). Returns
    /// `Ok(StepOutcome::Write)` once the write is poised (without having
    /// applied it).
    pub fn step_to_cover(&mut self, proc: usize) -> Result<StepOutcome, SimError> {
        loop {
            let slot = self
                .slots
                .get(proc)
                .ok_or(SimError::NoSuchProcess { proc })?;
            if slot.halted {
                return Err(SimError::ProcessHalted { proc });
            }
            if slot.poised.is_some() {
                return Ok(StepOutcome::Write);
            }
            match self.resume_once(proc)? {
                PendingOp::Read(local) => {
                    self.apply_read(proc, local);
                }
                PendingOp::Write(local, value) => {
                    self.slots[proc].poised = Some((local, value));
                    return Ok(StepOutcome::Write);
                }
                PendingOp::Event => {}
                PendingOp::Halted => return Ok(StepOutcome::Halted),
            }
        }
    }

    /// Applies process `proc`'s poised write (the second half of a covering
    /// move: the *block write*).
    ///
    /// # Errors
    ///
    /// Returns [`SimError::NothingPoised`] if no write is poised.
    pub fn apply_poised(&mut self, proc: usize) -> Result<(), SimError> {
        if self.slots.get(proc).is_none() {
            return Err(SimError::NoSuchProcess { proc });
        }
        if self.slots[proc].poised.is_none() {
            return Err(SimError::NothingPoised { proc });
        }
        self.step_inner(proc).map(|_| ())
    }

    /// Runs process `proc` alone until it halts or `max_ops` memory
    /// operations have been performed. Returns the number of memory
    /// operations performed (events are free, matching the paper's step
    /// accounting) and whether the process halted.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::NoSuchProcess`] for an out-of-range slot.
    ///
    /// # Panics
    ///
    /// Panics if the machine emits events without bound (a broken
    /// implementation — correct machines perform a memory operation or halt
    /// after finitely many events).
    pub fn run_solo(&mut self, proc: usize, max_ops: usize) -> Result<(usize, bool), SimError> {
        if self.slots.get(proc).is_none() {
            return Err(SimError::NoSuchProcess { proc });
        }
        let mut ops = 0;
        let mut fuse = max_ops.saturating_mul(2) + 10_000;
        while ops < max_ops {
            if self.slots[proc].halted {
                return Ok((ops, true));
            }
            match self.step(proc)? {
                StepOutcome::Halted => return Ok((ops, true)),
                StepOutcome::Event => {}
                _ => ops += 1,
            }
            fuse -= 1;
            assert!(fuse > 0, "process {proc} emits events without bound");
        }
        Ok((ops, self.slots[proc].halted))
    }

    /// One atomic step for `proc`.
    fn step_inner(&mut self, proc: usize) -> Result<StepOutcome, SimError> {
        let slot = self
            .slots
            .get(proc)
            .ok_or(SimError::NoSuchProcess { proc })?;
        if slot.halted {
            return Err(SimError::ProcessHalted { proc });
        }
        if let Some((local, value)) = self.slots[proc].poised.take() {
            self.apply_write(proc, local, value);
            return Ok(StepOutcome::Write);
        }
        match self.resume_once(proc)? {
            PendingOp::Read(local) => {
                self.apply_read(proc, local);
                Ok(StepOutcome::Read)
            }
            PendingOp::Write(local, value) => {
                self.apply_write(proc, local, value);
                Ok(StepOutcome::Write)
            }
            PendingOp::Event => Ok(StepOutcome::Event),
            PendingOp::Halted => Ok(StepOutcome::Halted),
        }
    }

    /// Resumes `proc`'s machine exactly once, recording what it did. Events
    /// are steps of their own: a machine that announced a milestone (say,
    /// critical-section entry) *stays in the corresponding state* until the
    /// adversary schedules it again — otherwise overlap could never be
    /// observed.
    fn resume_once(&mut self, proc: usize) -> Result<PendingOp<M::Value>, SimError> {
        let input = self.slots[proc].pending_input.take();
        let pid = self.slots[proc].machine.pid();
        match self.slots[proc].machine.resume(input) {
            Step::Read(local) => Ok(PendingOp::Read(local)),
            Step::Write(local, value) => Ok(PendingOp::Write(local, value)),
            Step::Event(event) => {
                self.trace.record(proc, pid, TraceOp::Event(event));
                Ok(PendingOp::Event)
            }
            Step::Halt => {
                self.slots[proc].halted = true;
                self.trace.record(proc, pid, TraceOp::Halt);
                Ok(PendingOp::Halted)
            }
        }
    }

    fn apply_read(&mut self, proc: usize, local: usize) {
        let physical = self.slots[proc].view.physical(local);
        let value = self.registers[physical].clone();
        let pid = self.slots[proc].machine.pid();
        self.trace.record(
            proc,
            pid,
            TraceOp::Read {
                local,
                physical,
                value: value.clone(),
            },
        );
        self.slots[proc].pending_input = Some(value);
    }

    fn apply_write(&mut self, proc: usize, local: usize, value: M::Value) {
        let physical = self.slots[proc].view.physical(local);
        let pid = self.slots[proc].machine.pid();
        self.trace.record(
            proc,
            pid,
            TraceOp::Write {
                local,
                physical,
                value: value.clone(),
            },
        );
        self.registers[physical] = value;
    }

    /// Drops the accumulated trace (used by the explorer, which clones
    /// simulations heavily and never inspects their traces).
    pub(crate) fn clear_trace(&mut self) {
        self.trace = Trace::new();
    }

    /// One atomic step for `proc` that bypasses trace recording entirely,
    /// returning the emitted event (if any) directly.
    ///
    /// Semantically identical to [`step`](Simulation::step) — same outcome,
    /// same configuration afterwards — but the explorer takes billions of
    /// steps on cloned simulations whose traces it immediately discards, so
    /// the per-step trace allocation and value clones are pure overhead on
    /// that path. A single step emits at most one event (`resume` is called
    /// exactly once).
    ///
    /// # Errors
    ///
    /// Same conditions as [`step`](Simulation::step).
    pub(crate) fn step_quiet(
        &mut self,
        proc: usize,
    ) -> Result<(StepOutcome, Option<M::Event>), SimError> {
        let slot = self
            .slots
            .get(proc)
            .ok_or(SimError::NoSuchProcess { proc })?;
        if slot.halted {
            return Err(SimError::ProcessHalted { proc });
        }
        if let Some((local, value)) = self.slots[proc].poised.take() {
            let physical = self.slots[proc].view.physical(local);
            self.registers[physical] = value;
            return Ok((StepOutcome::Write, None));
        }
        let input = self.slots[proc].pending_input.take();
        match self.slots[proc].machine.resume(input) {
            Step::Read(local) => {
                let physical = self.slots[proc].view.physical(local);
                self.slots[proc].pending_input = Some(self.registers[physical].clone());
                Ok((StepOutcome::Read, None))
            }
            Step::Write(local, value) => {
                let physical = self.slots[proc].view.physical(local);
                self.registers[physical] = value;
                Ok((StepOutcome::Write, None))
            }
            Step::Event(event) => Ok((StepOutcome::Event, Some(event))),
            Step::Halt => {
                self.slots[proc].halted = true;
                Ok((StepOutcome::Halted, None))
            }
        }
    }

    /// [`crash`](Simulation::crash) without the trace record — the
    /// explorer's counterpart to [`step_quiet`](Simulation::step_quiet).
    ///
    /// # Errors
    ///
    /// Returns [`SimError::NoSuchProcess`] for an out-of-range slot.
    pub(crate) fn crash_quiet(&mut self, proc: usize) -> Result<(), SimError> {
        let slot = self
            .slots
            .get_mut(proc)
            .ok_or(SimError::NoSuchProcess { proc })?;
        if !slot.halted {
            slot.halted = true;
            slot.poised = None;
        }
        Ok(())
    }

    /// A stable 64-bit fingerprint of the current configuration — register
    /// contents plus every process slot (machine state, pending read,
    /// poised write, crash flag). The trace is excluded: two executions
    /// reaching the same configuration fingerprint identically.
    ///
    /// Computed with [`anonreg_model::fingerprint::Fnv64`], so the value is
    /// identical across threads and runs. Fingerprints may collide;
    /// [`Simulation::same_configuration`] is the authoritative comparison.
    #[must_use]
    pub fn fingerprint(&self) -> u64
    where
        M: std::hash::Hash,
    {
        use std::hash::{Hash, Hasher};
        let mut hasher = anonreg_model::fingerprint::Fnv64::new();
        self.registers.hash(&mut hasher);
        self.slots.hash(&mut hasher);
        hasher.finish()
    }

    /// Whether two simulations are in the same configuration: identical
    /// register contents and identical process slots. Traces are ignored,
    /// matching [`Simulation::fingerprint`].
    #[must_use]
    pub fn same_configuration(&self, other: &Self) -> bool
    where
        M: Eq,
    {
        self.registers == other.registers && self.slots == other.slots
    }

    /// Full slot state (machine + pending read input + poised write), for
    /// the symmetry checker.
    pub(crate) fn slot(&self, proc: usize) -> &Slot<M> {
        &self.slots[proc]
    }

    /// The flat byte encoding of this configuration's canonical orbit
    /// representative under `mode` — the exploration engines deduplicate
    /// states by exactly this code. Two configurations share a code iff
    /// some view-compatible register/slot permutation (plus, under
    /// [`SymmetryMode::Full`], an identifier renaming) maps one to the
    /// other; with [`SymmetryMode::Off`] the code is the plain encoding
    /// and only bit-identical configurations collide. Traces are excluded,
    /// matching [`Simulation::fingerprint`].
    #[must_use]
    pub fn canonical_code(&self, mode: SymmetryMode) -> Box<[u8]>
    where
        M: Eq + std::hash::Hash + PidMap,
        M::Value: PidMap,
    {
        crate::canon::state_code(self, mode)
    }

    /// A stable 64-bit FNV-1a fingerprint of
    /// [`canonical_code`](Simulation::canonical_code): every member of an
    /// orbit under `mode`'s symmetry group fingerprints identically.
    /// Unlike raw [`Simulation::fingerprint`], this is invariant under
    /// view-compatible register permutations and (under
    /// [`SymmetryMode::Full`]) identifier renamings.
    #[must_use]
    pub fn canonical_fingerprint(&self, mode: SymmetryMode) -> u64
    where
        M: Eq + std::hash::Hash + PidMap,
        M::Value: PidMap,
    {
        let mut hasher = anonreg_model::fingerprint::Fnv64::new();
        std::hash::Hasher::write(&mut hasher, &self.canonical_code(mode));
        std::hash::Hasher::finish(&hasher)
    }
}

impl<M: Machine> fmt::Debug for Simulation<M> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Simulation")
            .field("registers", &self.registers)
            .field("processes", &self.slots.len())
            .field("trace_len", &self.trace.len())
            .finish()
    }
}

enum PendingOp<V> {
    Read(usize),
    Write(usize, V),
    Event,
    Halted,
}

#[cfg(test)]
mod tests {
    use super::*;
    use anonreg_model::Pid;

    /// Writes its pid to local register 0..k-1 then halts.
    #[derive(Clone, Debug, PartialEq, Eq, Hash)]
    struct WriterK {
        pid: Pid,
        m: usize,
        k: usize,
        next: usize,
    }

    impl Machine for WriterK {
        type Value = u64;
        type Event = u32;

        fn pid(&self) -> Pid {
            self.pid
        }

        fn register_count(&self) -> usize {
            self.m
        }

        fn resume(&mut self, _read: Option<u64>) -> Step<u64, u32> {
            if self.next < self.k {
                let j = self.next;
                self.next += 1;
                Step::Write(j, self.pid.get())
            } else if self.next == self.k {
                self.next += 1;
                Step::Event(99)
            } else {
                Step::Halt
            }
        }
    }

    fn pid(n: u64) -> Pid {
        Pid::new(n).unwrap()
    }

    fn writer(id: u64, m: usize, k: usize) -> WriterK {
        WriterK {
            pid: pid(id),
            m,
            k,
            next: 0,
        }
    }

    #[test]
    fn builder_validation() {
        let err = Simulation::<WriterK>::builder().build().unwrap_err();
        assert_eq!(err, SimError::NoProcesses);

        let err = Simulation::builder()
            .process_identity(writer(1, 2, 1))
            .process_identity(writer(2, 3, 1))
            .build()
            .unwrap_err();
        assert!(matches!(
            err,
            SimError::RegisterCountMismatch { proc: 1, .. }
        ));

        let err = Simulation::builder()
            .process(writer(1, 2, 1), View::identity(3))
            .build()
            .unwrap_err();
        assert!(matches!(err, SimError::ViewSizeMismatch { proc: 0 }));
    }

    #[test]
    fn views_translate_writes() {
        let mut sim = Simulation::builder()
            .process(writer(1, 3, 1), View::rotated(3, 2))
            .build()
            .unwrap();
        assert_eq!(sim.step(0).unwrap(), StepOutcome::Write);
        // Local 0 through rotation 2 is physical 2.
        assert_eq!(sim.registers(), &[0, 0, 1]);
    }

    #[test]
    fn events_are_their_own_steps() {
        let mut sim = Simulation::builder()
            .process_identity(writer(1, 2, 1))
            .build()
            .unwrap();
        sim.step(0).unwrap(); // the write
        assert_eq!(sim.step(0).unwrap(), StepOutcome::Event);
        // Between the event and the halt, the machine rests in its
        // post-event state — that pause is what makes milestone overlap
        // observable.
        assert!(!sim.is_halted(0));
        assert_eq!(sim.step(0).unwrap(), StepOutcome::Halted);
        let events: Vec<_> = sim.trace().events().collect();
        assert_eq!(events.len(), 1);
        assert!(sim.is_halted(0));
        assert!(sim.all_halted());
    }

    #[test]
    fn stepping_a_halted_process_errors() {
        let mut sim = Simulation::builder()
            .process_identity(writer(1, 2, 0))
            .build()
            .unwrap();
        assert_eq!(sim.step(0).unwrap(), StepOutcome::Event);
        assert_eq!(sim.step(0).unwrap(), StepOutcome::Halted);
        assert_eq!(
            sim.step(0).unwrap_err(),
            SimError::ProcessHalted { proc: 0 }
        );
        assert!(matches!(
            sim.step(9).unwrap_err(),
            SimError::NoSuchProcess { proc: 9 }
        ));
    }

    #[test]
    fn covering_freezes_a_write() {
        let mut sim = Simulation::builder()
            .process_identity(writer(1, 3, 2))
            .process_identity(writer(2, 3, 2))
            .build()
            .unwrap();
        // Process 0 poises its first write: it now covers physical 0.
        assert_eq!(sim.step_to_cover(0).unwrap(), StepOutcome::Write);
        assert_eq!(sim.covered_register(0), Some(0));
        assert_eq!(sim.registers(), &[0, 0, 0], "poised write not yet applied");

        // Process 1 runs to completion; it writes registers 0 and 1.
        sim.step(1).unwrap();
        sim.step(1).unwrap();
        assert_eq!(sim.registers(), &[2, 2, 0]);

        // The block write: process 0's poised write lands, overwriting.
        sim.apply_poised(0).unwrap();
        assert_eq!(sim.registers(), &[1, 2, 0]);
        assert_eq!(sim.covered_register(0), None);
    }

    #[test]
    fn step_to_cover_is_idempotent_while_poised() {
        let mut sim = Simulation::builder()
            .process_identity(writer(1, 2, 1))
            .build()
            .unwrap();
        assert_eq!(sim.step_to_cover(0).unwrap(), StepOutcome::Write);
        assert_eq!(sim.step_to_cover(0).unwrap(), StepOutcome::Write);
        assert_eq!(sim.registers(), &[0, 0]);
        // A normal step applies the poised write.
        assert_eq!(sim.step(0).unwrap(), StepOutcome::Write);
        assert_eq!(sim.registers(), &[1, 0]);
    }

    #[test]
    fn apply_poised_without_cover_errors() {
        let mut sim = Simulation::builder()
            .process_identity(writer(1, 2, 1))
            .build()
            .unwrap();
        assert_eq!(
            sim.apply_poised(0).unwrap_err(),
            SimError::NothingPoised { proc: 0 }
        );
    }

    #[test]
    fn run_solo_bounds_operations() {
        let mut sim = Simulation::builder()
            .process_identity(writer(1, 5, 5))
            .build()
            .unwrap();
        let (ops, halted) = sim.run_solo(0, 3).unwrap();
        assert_eq!(ops, 3);
        assert!(!halted);
        let (ops, halted) = sim.run_solo(0, 100).unwrap();
        assert_eq!(ops, 2);
        assert!(halted);
    }

    #[test]
    fn trace_records_physical_and_local_indices() {
        let mut sim = Simulation::builder()
            .process(writer(1, 3, 1), View::rotated(3, 1))
            .build()
            .unwrap();
        sim.step(0).unwrap();
        let entry = sim.trace().iter().next().unwrap();
        match &entry.op {
            TraceOp::Write {
                local, physical, ..
            } => {
                assert_eq!(*local, 0);
                assert_eq!(*physical, 1);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn crash_silences_a_process() {
        let mut sim = Simulation::builder()
            .process_identity(writer(1, 3, 3))
            .process_identity(writer(2, 3, 3))
            .build()
            .unwrap();
        sim.step(0).unwrap(); // p0 writes register 0
        sim.crash(0).unwrap();
        assert!(sim.is_halted(0));
        assert_eq!(
            sim.step(0).unwrap_err(),
            SimError::ProcessHalted { proc: 0 }
        );
        // Idempotent; out of range rejected.
        sim.crash(0).unwrap();
        assert!(matches!(
            sim.crash(7).unwrap_err(),
            SimError::NoSuchProcess { proc: 7 }
        ));
        // The survivor still runs; p0's single write persists.
        while !sim.is_halted(1) {
            sim.step(1).unwrap();
        }
        assert_eq!(sim.registers()[1], 2);
        assert_eq!(sim.registers()[0], 2, "p1 overwrote p0's first register");
    }

    #[test]
    fn crash_discards_poised_writes() {
        let mut sim = Simulation::builder()
            .process_identity(writer(1, 2, 1))
            .build()
            .unwrap();
        sim.step_to_cover(0).unwrap();
        assert_eq!(sim.covered_register(0), Some(0));
        sim.crash(0).unwrap();
        assert_eq!(sim.covered_register(0), None);
        assert_eq!(sim.registers(), &[0, 0], "a crashed process writes nothing");
    }

    #[test]
    fn error_display_nonempty() {
        let errors = [
            SimError::NoProcesses,
            SimError::RegisterCountMismatch {
                proc: 1,
                expected: 2,
                actual: 3,
            },
            SimError::ViewSizeMismatch { proc: 0 },
            SimError::NoSuchProcess { proc: 4 },
            SimError::ProcessHalted { proc: 2 },
            SimError::NothingPoised { proc: 1 },
        ];
        for e in errors {
            assert!(!e.to_string().is_empty());
        }
    }
}
