//! Golden-file pin for the schema-v2 live stream format.
//!
//! `golden_v2_stream.jsonl` is a real `check explore --stream` capture:
//! a v1 `meta` header, interleaved v2 `delta`/`progress` records, the
//! flushed `profile` records, the v2 `snapshot` end-marker, and the
//! authoritative v1 snapshot tail. Freezing the bytes pins the format —
//! the validator and replayer must keep accepting this exact file, so
//! the stream schema cannot drift without deliberately regenerating the
//! golden (the intended signal for a stream-schema bump).

use anonreg_obs::schema::{validate_jsonl, validate_jsonl_v1};
use anonreg_obs::{replay_stream, stream_status, Json, StreamStatus};

const GOLDEN: &str = include_str!("golden_v2_stream.jsonl");

#[test]
fn golden_stream_validates_under_both_validators() {
    let total = validate_jsonl(GOLDEN).expect("golden stream must stay schema-valid");
    let (v1, skipped) = validate_jsonl_v1(GOLDEN).expect("v1 validator must tolerate v2 records");
    // The v1-consumers-skip rule: every line is either validated as v1
    // or counted as a skipped v2 stream record, nothing is dropped.
    assert_eq!(total, v1 + skipped);
    assert!(skipped > 0, "golden stream must carry v2 records");
    assert!(v1 > 0, "golden stream must carry the meta header + v1 tail");
}

#[test]
fn golden_stream_carries_every_v2_record_type() {
    let mut kinds = std::collections::BTreeSet::new();
    for line in GOLDEN.lines().filter(|l| !l.trim().is_empty()) {
        let json = Json::parse(line).expect("golden line parses");
        if json.get("v").and_then(Json::as_u64) == Some(2) {
            kinds.insert(
                json.get("t")
                    .and_then(Json::as_str)
                    .expect("v2 record has `t`")
                    .to_string(),
            );
        }
    }
    for kind in ["delta", "progress", "profile", "snapshot"] {
        assert!(kinds.contains(kind), "golden stream lost `{kind}` records");
    }
}

#[test]
fn golden_stream_has_several_deltas_before_the_final_snapshot() {
    let marker = GOLDEN
        .lines()
        .position(|l| l.contains("\"t\":\"snapshot\""))
        .expect("end marker present");
    let deltas_before = GOLDEN
        .lines()
        .take(marker)
        .filter(|l| l.contains("\"t\":\"delta\""))
        .count();
    assert!(
        deltas_before >= 3,
        "want >= 3 live deltas before the end marker, got {deltas_before}"
    );
}

#[test]
fn golden_stream_replays_to_its_final_snapshot() {
    let replay = replay_stream(GOLDEN).expect("golden stream must stay replayable");
    assert!(replay.deltas >= 3);
    assert!(
        replay.reconstructs_exactly(),
        "delta replay diverged from the v1 tail"
    );
    // The stream reports itself complete.
    assert_eq!(
        stream_status(GOLDEN),
        StreamStatus::Complete {
            deltas: replay.deltas
        }
    );
}

#[test]
fn truncating_the_golden_stream_is_detected() {
    // Kill the stream mid-flight: drop everything from the end marker on.
    let marker = GOLDEN
        .lines()
        .position(|l| l.contains("\"t\":\"snapshot\""))
        .expect("end marker present");
    let truncated: String = GOLDEN
        .lines()
        .take(marker)
        .map(|l| format!("{l}\n"))
        .collect();
    match stream_status(&truncated) {
        StreamStatus::Truncated {
            complete_lines,
            torn_tail,
        } => {
            assert_eq!(complete_lines as usize, marker);
            assert!(!torn_tail, "clean line boundary is not a torn tail");
        }
        StreamStatus::Complete { .. } => panic!("truncated stream reported complete"),
    }
    assert!(replay_stream(&truncated).is_err());

    // Tear the final line mid-record as a crash would.
    let torn = &truncated[..truncated.len() - 20];
    match stream_status(torn) {
        StreamStatus::Truncated { torn_tail, .. } => assert!(torn_tail),
        StreamStatus::Complete { .. } => panic!("torn stream reported complete"),
    }
}

#[test]
fn golden_deltas_have_monotonic_seq_and_elapsed() {
    let mut last_seq = None;
    let mut last_elapsed = None;
    let mut run_ids = std::collections::BTreeSet::new();
    for line in GOLDEN.lines().filter(|l| l.contains("\"v\":2")) {
        let json = Json::parse(line).unwrap();
        if json.get("v").and_then(Json::as_u64) != Some(2) {
            continue;
        }
        let seq = json.get("seq").and_then(Json::as_u64).expect("seq");
        let elapsed = json
            .get("elapsed_ms")
            .and_then(Json::as_u64)
            .expect("elapsed_ms");
        run_ids.insert(
            json.get("run")
                .and_then(Json::as_str)
                .expect("run id")
                .to_string(),
        );
        if let Some(prev) = last_seq {
            assert!(seq > prev, "seq regressed: {prev} -> {seq}");
        }
        if let Some(prev) = last_elapsed {
            assert!(elapsed >= prev, "elapsed_ms regressed: {prev} -> {elapsed}");
        }
        last_seq = Some(seq);
        last_elapsed = Some(elapsed);
    }
    assert_eq!(run_ids.len(), 1, "one run id across the whole stream");
}
