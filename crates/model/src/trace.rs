//! Recorded runs.
//!
//! A [`Trace`] is the executable counterpart of the paper's notion of a
//! *run*: "a sequence of alternating states and events … it is more
//! convenient to define a run as a sequence of events omitting all the states
//! except the initial state" (§6.1). Since machines are deterministic, a
//! trace pins down the whole run, so specification checkers
//! (`anonreg::spec`) and replay both work from traces alone.

use std::fmt;

use crate::Pid;

/// A single recorded step of one process.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub enum TraceOp<V, E> {
    /// The process atomically read a register and observed `value`.
    Read {
        /// Local register index, as the process named it.
        local: usize,
        /// Physical register index, after view translation.
        physical: usize,
        /// The value observed.
        value: V,
    },
    /// The process atomically wrote `value` to a register.
    Write {
        /// Local register index, as the process named it.
        local: usize,
        /// Physical register index, after view translation.
        physical: usize,
        /// The value written.
        value: V,
    },
    /// The process announced an observable milestone.
    Event(E),
    /// The process halted.
    Halt,
}

/// One entry of a [`Trace`]: which process did what.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct TraceEntry<V, E> {
    /// The process's slot in the execution (dense, `0..n`); stable across
    /// the run and independent of the (sparse, adversary-chosen) [`Pid`].
    pub proc: usize,
    /// The process's identifier.
    pub pid: Pid,
    /// What the process did.
    pub op: TraceOp<V, E>,
}

/// A recorded run: the sequence of steps taken, in global time order.
///
/// # Example
///
/// ```
/// use anonreg_model::trace::{Trace, TraceOp};
/// use anonreg_model::Pid;
///
/// let mut trace: Trace<u64, &str> = Trace::new();
/// trace.record(0, Pid::new(1).unwrap(), TraceOp::Event("enter"));
/// trace.record(0, Pid::new(1).unwrap(), TraceOp::Event("exit"));
/// assert_eq!(trace.len(), 2);
/// assert_eq!(trace.events().count(), 2);
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Trace<V, E> {
    entries: Vec<TraceEntry<V, E>>,
}

impl<V, E> Trace<V, E> {
    /// Creates an empty trace.
    #[must_use]
    pub fn new() -> Self {
        Trace {
            entries: Vec::new(),
        }
    }

    /// Appends a step.
    pub fn record(&mut self, proc: usize, pid: Pid, op: TraceOp<V, E>) {
        self.entries.push(TraceEntry { proc, pid, op });
    }

    /// The number of recorded steps.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Returns `true` if nothing has been recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterates over all entries in global time order.
    pub fn iter(&self) -> std::slice::Iter<'_, TraceEntry<V, E>> {
        self.entries.iter()
    }

    /// Iterates over just the [`TraceOp::Event`] entries, in order, as
    /// `(proc, pid, &event)` triples.
    pub fn events(&self) -> impl Iterator<Item = (usize, Pid, &E)> {
        self.entries.iter().filter_map(|entry| match &entry.op {
            TraceOp::Event(e) => Some((entry.proc, entry.pid, e)),
            _ => None,
        })
    }

    /// Iterates over the entries of a single process, in order.
    pub fn of_proc(&self, proc: usize) -> impl Iterator<Item = &TraceEntry<V, E>> {
        self.entries.iter().filter(move |entry| entry.proc == proc)
    }

    /// The number of atomic memory operations (reads + writes) recorded for
    /// one process — the paper's step-complexity measure.
    #[must_use]
    pub fn memory_ops_of(&self, proc: usize) -> usize {
        self.of_proc(proc)
            .filter(|entry| matches!(entry.op, TraceOp::Read { .. } | TraceOp::Write { .. }))
            .count()
    }

    /// The distinct *physical* registers written by one process — the set
    /// `write(y, q)` from the paper's covering arguments (§6).
    #[must_use]
    pub fn write_set_of(&self, proc: usize) -> Vec<usize> {
        let mut set = Vec::new();
        for entry in self.of_proc(proc) {
            if let TraceOp::Write { physical, .. } = entry.op {
                if !set.contains(&physical) {
                    set.push(physical);
                }
            }
        }
        set
    }
}

impl<V, E> Default for Trace<V, E> {
    fn default() -> Self {
        Trace::new()
    }
}

impl<V, E> IntoIterator for Trace<V, E> {
    type Item = TraceEntry<V, E>;
    type IntoIter = std::vec::IntoIter<TraceEntry<V, E>>;

    fn into_iter(self) -> Self::IntoIter {
        self.entries.into_iter()
    }
}

impl<'a, V, E> IntoIterator for &'a Trace<V, E> {
    type Item = &'a TraceEntry<V, E>;
    type IntoIter = std::slice::Iter<'a, TraceEntry<V, E>>;

    fn into_iter(self) -> Self::IntoIter {
        self.entries.iter()
    }
}

impl<V, E> Extend<TraceEntry<V, E>> for Trace<V, E> {
    fn extend<I: IntoIterator<Item = TraceEntry<V, E>>>(&mut self, iter: I) {
        self.entries.extend(iter);
    }
}

impl<V, E> FromIterator<TraceEntry<V, E>> for Trace<V, E> {
    fn from_iter<I: IntoIterator<Item = TraceEntry<V, E>>>(iter: I) -> Self {
        Trace {
            entries: iter.into_iter().collect(),
        }
    }
}

impl<V: fmt::Debug, E: fmt::Debug> fmt::Display for Trace<V, E> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (t, entry) in self.entries.iter().enumerate() {
            write!(f, "{t:>5}  p{} (pid {:>3})  ", entry.proc, entry.pid)?;
            match &entry.op {
                TraceOp::Read {
                    local,
                    physical,
                    value,
                } => writeln!(f, "read  r[{local}→{physical}] = {value:?}")?,
                TraceOp::Write {
                    local,
                    physical,
                    value,
                } => writeln!(f, "write r[{local}→{physical}] := {value:?}")?,
                TraceOp::Event(e) => writeln!(f, "event {e:?}")?,
                TraceOp::Halt => writeln!(f, "halt")?,
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pid(n: u64) -> Pid {
        Pid::new(n).unwrap()
    }

    fn sample() -> Trace<u64, &'static str> {
        let mut t = Trace::new();
        t.record(
            0,
            pid(10),
            TraceOp::Write {
                local: 0,
                physical: 2,
                value: 10,
            },
        );
        t.record(
            1,
            pid(20),
            TraceOp::Read {
                local: 0,
                physical: 0,
                value: 0,
            },
        );
        t.record(0, pid(10), TraceOp::Event("enter"));
        t.record(
            0,
            pid(10),
            TraceOp::Write {
                local: 1,
                physical: 0,
                value: 10,
            },
        );
        t.record(1, pid(20), TraceOp::Halt);
        t
    }

    #[test]
    fn records_in_order() {
        let t = sample();
        assert_eq!(t.len(), 5);
        assert!(!t.is_empty());
        assert_eq!(t.iter().count(), 5);
    }

    #[test]
    fn events_filters() {
        let t = sample();
        let events: Vec<_> = t.events().collect();
        assert_eq!(events, vec![(0, pid(10), &"enter")]);
    }

    #[test]
    fn per_proc_views() {
        let t = sample();
        assert_eq!(t.of_proc(0).count(), 3);
        assert_eq!(t.of_proc(1).count(), 2);
        assert_eq!(t.memory_ops_of(0), 2);
        assert_eq!(t.memory_ops_of(1), 1);
    }

    #[test]
    fn write_set_collects_distinct_physical_registers() {
        let mut t = sample();
        assert_eq!(t.write_set_of(0), vec![2, 0]);
        // A second write to physical 2 must not duplicate.
        t.record(
            0,
            pid(10),
            TraceOp::Write {
                local: 0,
                physical: 2,
                value: 10,
            },
        );
        assert_eq!(t.write_set_of(0), vec![2, 0]);
        assert_eq!(t.write_set_of(1), Vec::<usize>::new());
    }

    #[test]
    fn display_is_nonempty_and_line_per_entry() {
        let t = sample();
        let s = t.to_string();
        assert_eq!(s.lines().count(), 5);
        assert!(s.contains("write r[0→2] := 10"));
        assert!(s.contains("event \"enter\""));
        assert!(s.contains("halt"));
    }

    #[test]
    fn collect_and_extend() {
        let t = sample();
        let copied: Trace<u64, &str> = t.iter().cloned().collect();
        assert_eq!(copied, t);
        let mut ext = Trace::new();
        ext.extend(t.clone());
        assert_eq!(ext, t);
    }
}
