//! The six lints, L1–L6.
//!
//! L1, L2 and L6 are *structural*: they quantify over every CFG edge, i.e.
//! over every reachable (state, read-result) pair of the chosen value
//! domain. L3 is *relational*: it compares two processes' CFGs in
//! lockstep. L4 and L5 are *concrete*: they replay an exact solo run.
//! Every failure carries a replayable witness path.

use std::collections::hash_map::Entry;
use std::collections::{HashMap, VecDeque};
use std::hash::Hash;
use std::panic::{catch_unwind, AssertUnwindSafe};

use anonreg_model::{Machine, Step};

use crate::cfg::{panic_message, Cfg, CfgConfig, EdgeKind};
use crate::report::{Finding, LintId, Verdict};
use crate::solo::{solo_run, SoloEnd};

/// A machine together with its extracted CFG: the shared input of the
/// structural lints (L1, L2, L6), extracted once.
#[derive(Clone, Debug)]
pub struct Analysis<M: Machine> {
    register_count: usize,
    cfg: Result<Cfg<M>, String>,
}

impl<M> Analysis<M>
where
    M: Machine + Eq + Hash,
{
    /// Extracts the CFG of `machine` over `config`. Extraction failure
    /// (state-space blowup, empty domain) is not a lint failure: the
    /// structural lints then report [`Verdict::Skipped`] with the reason.
    #[must_use]
    pub fn new(machine: &M, config: &CfgConfig<M::Value>) -> Self {
        Analysis {
            register_count: machine.register_count(),
            cfg: Cfg::extract(machine.clone(), config).map_err(|e| e.to_string()),
        }
    }

    /// The extracted CFG, if extraction succeeded.
    #[must_use]
    pub fn cfg(&self) -> Option<&Cfg<M>> {
        self.cfg.as_ref().ok()
    }

    /// L1 — index bounds: every `Read(j)` / `Write(j, _)` on every
    /// reachable edge has `j < register_count()`.
    #[must_use]
    pub fn index_bounds(&self) -> Verdict {
        let cfg = match &self.cfg {
            Ok(cfg) => cfg,
            Err(why) => return Verdict::Skipped(why.clone()),
        };
        let mut findings = Vec::new();
        for (at, node) in cfg.nodes().iter().enumerate() {
            for (e, edge) in node.edges.iter().enumerate() {
                let index = match &edge.kind {
                    EdgeKind::Step {
                        step: Step::Read(j) | Step::Write(j, _),
                        ..
                    } => *j,
                    _ => continue,
                };
                if index >= self.register_count {
                    findings.push(Finding {
                        lint: LintId::IndexBounds,
                        message: format!(
                            "register index {index} out of range (register_count = {})",
                            self.register_count
                        ),
                        witness: cfg.witness_through(at, e),
                    });
                }
            }
        }
        if findings.is_empty() {
            Verdict::Pass
        } else {
            Verdict::Fail(findings)
        }
    }

    /// L2 — protocol conformance: `resume` is a pure function of (state,
    /// input), never panics on protocol-correct input, and a halted
    /// machine takes no further steps (repeating `Halt` or panicking are
    /// both acceptable answers to a contract-violating extra call; doing
    /// more work is not).
    #[must_use]
    pub fn protocol(&self) -> Verdict {
        let cfg = match &self.cfg {
            Ok(cfg) => cfg,
            Err(why) => return Verdict::Skipped(why.clone()),
        };
        let mut findings = Vec::new();
        for (at, node) in cfg.nodes().iter().enumerate() {
            for (e, edge) in node.edges.iter().enumerate() {
                match &edge.kind {
                    EdgeKind::Step { .. } => {}
                    EdgeKind::Panicked { message } => findings.push(Finding {
                        lint: LintId::Protocol,
                        message: format!("resume panicked on protocol-correct input: {message}"),
                        witness: cfg.witness_through(at, e),
                    }),
                    EdgeKind::NonDeterministic { first, second } => findings.push(Finding {
                        lint: LintId::Protocol,
                        message: format!(
                            "resume is not deterministic: replaying the same state and input \
                             produced `{first}` and then `{second}`"
                        ),
                        witness: cfg.witness_through(at, e),
                    }),
                }
            }
            if node.halted {
                // Probe: one contract-violating call after Halt. The
                // machine may panic or keep answering Halt; emitting real
                // steps means its halt state is not actually terminal.
                let mut probe = node.state.clone();
                if let Ok(step) = catch_unwind(AssertUnwindSafe(|| probe.resume(None))) {
                    if step != Step::Halt {
                        let mut witness = cfg.witness_to(at);
                        witness.push(format!("resume(None) after Halt => {step:?}"));
                        findings.push(Finding {
                            lint: LintId::Protocol,
                            message: format!("machine emitted {step:?} when resumed after Halt"),
                            witness,
                        });
                    }
                }
            }
        }
        if findings.is_empty() {
            Verdict::Pass
        } else {
            Verdict::Fail(findings)
        }
    }

    /// L6 — pack-width census: every value on a `Write` edge satisfies
    /// `fits` (for the runtime's `PackedAtomicRegister`, "both packed
    /// fields fit in 32 bits"). A violation here is a deployment panic
    /// waiting in `Pack64::pack`, surfaced statically.
    #[must_use]
    pub fn pack_width<F>(&self, fits: F) -> Verdict
    where
        F: Fn(&M::Value) -> bool,
    {
        let cfg = match &self.cfg {
            Ok(cfg) => cfg,
            Err(why) => return Verdict::Skipped(why.clone()),
        };
        let mut findings = Vec::new();
        for (at, node) in cfg.nodes().iter().enumerate() {
            for (e, edge) in node.edges.iter().enumerate() {
                if let EdgeKind::Step {
                    step: Step::Write(_, value),
                    ..
                } = &edge.kind
                {
                    if !fits(value) {
                        findings.push(Finding {
                            lint: LintId::PackWidth,
                            message: format!(
                                "written value {value:?} does not fit the packed register width"
                            ),
                            witness: cfg.witness_through(at, e),
                        });
                    }
                }
            }
        }
        if findings.is_empty() {
            Verdict::Pass
        } else {
            Verdict::Fail(findings)
        }
    }
}

/// L3 — symmetry: explores the CFGs of `a` and `b` in lockstep and checks
/// they are isomorphic under the caller's value substitution: whenever
/// `a` reads `v`, `b` reads `map(v)`, and the two must emit the same step
/// shape at the same local index, with `b`'s written values equal to
/// `map` of `a`'s. This is the §2 symmetry restriction made checkable:
/// identifiers may flow through the computation, but control flow may not
/// depend on anything beyond their equality structure.
///
/// Event payloads are compared by shape only (they typically carry the
/// process's own identifier, which legitimately differs).
///
/// `config.domain` is `a`'s read domain; `b` reads the image under `map`.
/// The map must be consistent with the equality structure the machines
/// can observe — for two-process lints, map `a`'s pid to `b`'s and vice
/// versa, and fix everything else.
#[must_use]
pub fn symmetry<M, F>(a: &M, b: &M, map: F, config: &CfgConfig<M::Value>) -> Verdict
where
    M: Machine + Eq + Hash,
    F: Fn(&M::Value) -> M::Value,
{
    if a.register_count() != b.register_count() {
        return Verdict::Fail(vec![Finding {
            lint: LintId::Symmetry,
            message: format!(
                "register counts differ: {} vs {}",
                a.register_count(),
                b.register_count()
            ),
            witness: vec![],
        }]);
    }

    struct Pair<M: Machine> {
        a: M,
        b: M,
        awaiting: bool,
        halted: bool,
        parent: Option<(usize, String)>,
    }

    let witness_to = |pairs: &Vec<Pair<M>>, mut at: usize| {
        let mut path = Vec::new();
        while let Some((parent, rendered)) = &pairs[at].parent {
            path.push(rendered.clone());
            at = *parent;
        }
        path.reverse();
        path
    };

    let mut pairs: Vec<Pair<M>> = vec![Pair {
        a: a.clone(),
        b: b.clone(),
        awaiting: false,
        halted: false,
        parent: None,
    }];
    let mut index: HashMap<(M, M, bool, bool), usize> = HashMap::new();
    index.insert((a.clone(), b.clone(), false, false), 0);
    let mut queue: VecDeque<usize> = VecDeque::from([0]);
    let mut findings = Vec::new();

    while let Some(at) = queue.pop_front() {
        if pairs[at].halted {
            continue;
        }
        let inputs: Vec<Option<M::Value>> = if pairs[at].awaiting {
            // An empty domain yields zero inputs here, which would make
            // every reachable property vacuously true. Mirror the
            // `CfgError::EmptyDomain` that `Cfg::extract` raises for the
            // same misconfiguration instead of silently passing.
            if config.domain.is_empty() {
                return Verdict::Skipped(
                    "machine reads, but the value domain is empty".to_string(),
                );
            }
            config.domain.iter().cloned().map(Some).collect()
        } else {
            vec![None]
        };
        for input_a in inputs {
            let input_b = input_a.as_ref().map(&map);
            let mut next_a = pairs[at].a.clone();
            let mut next_b = pairs[at].b.clone();
            let step_a = catch_unwind(AssertUnwindSafe(|| next_a.resume(input_a.clone())))
                .map_err(|p| panic_message(&p));
            let step_b = catch_unwind(AssertUnwindSafe(|| next_b.resume(input_b.clone())))
                .map_err(|p| panic_message(&p));
            let rendered = format!(
                "a: resume({input_a:?}) => {step_a:?} | b: resume({input_b:?}) => {step_b:?}"
            );
            let matched = match (&step_a, &step_b) {
                (Ok(Step::Read(i)), Ok(Step::Read(j))) => i == j,
                (Ok(Step::Write(i, va)), Ok(Step::Write(j, vb))) => i == j && &map(va) == vb,
                (Ok(Step::Event(_)), Ok(Step::Event(_))) | (Ok(Step::Halt), Ok(Step::Halt)) => true,
                (Err(_), Err(_)) => true, // both stuck: L2's problem, not asymmetry
                _ => false,
            };
            if !matched {
                let mut witness = witness_to(&pairs, at);
                witness.push(rendered);
                findings.push(Finding {
                    lint: LintId::Symmetry,
                    message: format!(
                        "processes diverge under pid substitution: \
                         a emitted {step_a:?}, b emitted {step_b:?}"
                    ),
                    witness,
                });
                continue;
            }
            let Ok(step_a) = step_a else { continue };
            let halted = matches!(step_a, Step::Halt);
            let awaiting = matches!(step_a, Step::Read(_));
            match index.entry((next_a.clone(), next_b.clone(), awaiting, halted)) {
                Entry::Occupied(_) => {}
                Entry::Vacant(v) => {
                    if pairs.len() >= config.max_nodes {
                        return Verdict::Skipped(format!(
                            "lockstep state space exceeds {} pairs",
                            config.max_nodes
                        ));
                    }
                    let id = pairs.len();
                    pairs.push(Pair {
                        a: next_a,
                        b: next_b,
                        awaiting,
                        halted,
                        parent: Some((at, rendered.clone())),
                    });
                    queue.push_back(id);
                    v.insert(id);
                }
            }
        }
    }
    if findings.is_empty() {
        Verdict::Pass
    } else {
        Verdict::Fail(findings)
    }
}

/// L4 — exit restores memory: a solo run from `initial` registers that
/// halts must leave every register holding exactly its initial value.
/// This is the Figure 1 exit-code obligation ("write 0 into all
/// registers") generalized: without it, runs do not compose — the next
/// arrival would start from garbage, voiding the "initially all registers
/// are 0" precondition of every proof.
///
/// Non-halting and panicking runs are reported as skips here (L5 and L2
/// own those failures).
#[must_use]
pub fn exit_restores_memory<M: Machine>(
    machine: M,
    initial: Vec<M::Value>,
    max_ops: u64,
) -> Verdict {
    let run = solo_run(machine, initial.clone(), max_ops);
    match run.end {
        SoloEnd::OutOfBudget => Verdict::Skipped(format!(
            "solo run did not halt within {max_ops} steps (see L5)"
        )),
        SoloEnd::Panicked(message) => {
            Verdict::Skipped(format!("solo run panicked (see L2): {message}"))
        }
        SoloEnd::Halted => {
            let dirty: Vec<usize> = (0..initial.len())
                .filter(|&j| run.registers[j] != initial[j])
                .collect();
            if dirty.is_empty() {
                Verdict::Pass
            } else {
                Verdict::Fail(vec![Finding {
                    lint: LintId::ExitRestoresMemory,
                    message: format!(
                        "solo run halted leaving registers {dirty:?} changed \
                         (final contents {:?}, initial {:?})",
                        run.registers, initial
                    ),
                    witness: run.transcript,
                }])
            }
        }
    }
}

/// L5 — bounded solo termination: a solo run from `initial` registers
/// halts within `max_ops` resume steps (every `resume` call counts, so
/// event-spinning machines are caught too). This is obstruction freedom
/// observed at its definition site: "if a process runs alone long enough,
/// it finishes". For Figure 1, `max_ops` per cycle is `4m` (two claim
/// scans, one release scan, one restore scan).
#[must_use]
pub fn solo_termination<M: Machine>(machine: M, initial: Vec<M::Value>, max_ops: u64) -> Verdict {
    let run = solo_run(machine, initial, max_ops);
    match run.end {
        SoloEnd::Halted => Verdict::Pass,
        SoloEnd::Panicked(message) => Verdict::Fail(vec![Finding {
            lint: LintId::SoloTermination,
            message: format!("solo run panicked before halting: {message}"),
            witness: run.transcript,
        }]),
        SoloEnd::OutOfBudget => {
            // The full transcript of a diverging run is unbounded noise;
            // keep the tail, which shows the loop.
            let tail: Vec<String> = run
                .transcript
                .iter()
                .rev()
                .take(16)
                .rev()
                .cloned()
                .collect();
            Verdict::Fail(vec![Finding {
                lint: LintId::SoloTermination,
                message: format!(
                    "solo run still live after {max_ops} resume steps \
                     (witness shows the last {} steps)",
                    tail.len()
                ),
                witness: tail,
            }])
        }
    }
}
