//! Minimal aligned-column table printing for experiment reports.

/// A simple left-aligned text table.
///
/// # Example
///
/// ```
/// use anonreg_bench::table::Table;
///
/// let mut t = Table::new(vec!["m", "safe"]);
/// t.row(vec!["3".into(), "yes".into()]);
/// let s = t.render();
/// assert!(s.contains("m"));
/// assert!(s.contains("yes"));
/// ```
#[derive(Clone, Debug)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    #[must_use]
    pub fn new<S: Into<String>>(header: Vec<S>) -> Self {
        Table {
            header: header.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the row width differs from the header width.
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.header.len(), "row width mismatch");
        self.rows.push(cells);
    }

    /// Renders the table with aligned columns.
    #[must_use]
    pub fn render(&self) -> String {
        let cols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let emit = |out: &mut String, cells: &[String]| {
            for (i, cell) in cells.iter().enumerate() {
                out.push_str(&format!("{:<width$}", cell, width = widths[i]));
                if i + 1 < cols {
                    out.push_str("  ");
                }
            }
            out.push('\n');
        };
        emit(&mut out, &self.header);
        let rule: usize = widths.iter().sum::<usize>() + 2 * (cols - 1);
        out.push_str(&"-".repeat(rule));
        out.push('\n');
        for row in &self.rows {
            emit(&mut out, row);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new(vec!["a", "long-header"]);
        t.row(vec!["xxxx".into(), "1".into()]);
        t.row(vec!["y".into(), "22".into()]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        // All lines align to the same start of column 2.
        let col2 = lines[0].find("long-header").unwrap();
        assert_eq!(lines[2].find('1').unwrap(), col2);
        assert_eq!(lines[3].find("22").unwrap(), col2);
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn rejects_ragged_rows() {
        let mut t = Table::new(vec!["a", "b"]);
        t.row(vec!["only-one".into()]);
    }
}
