//! Exhaustive verification of the *named-register* baselines — and the
//! demonstration that they fall apart the moment register names stop being
//! agreed (the practical face of Theorem 6.1's separation).

use anonreg::baseline::{Bakery, LockConsensus, Peterson, SplitterRenaming};
use anonreg::mutex::{MutexEvent, Section};
use anonreg::{Pid, View};
use anonreg_sim::prelude::*;
use anonreg_sim::Simulation;

fn pid(n: u64) -> Pid {
    Pid::new(n).unwrap()
}

#[test]
fn peterson_is_safe_and_live_with_named_registers() {
    let sim = Simulation::builder()
        .process_identity(Peterson::new(pid(1), 0).unwrap())
        .process_identity(Peterson::new(pid(2), 1).unwrap())
        .build()
        .unwrap();
    let graph = Explorer::new(sim).run().unwrap();
    let both_in_cs = graph.find_state(|s| {
        s.machines()
            .filter(|m| m.section() == Section::Critical)
            .count()
            >= 2
    });
    assert!(both_in_cs.is_none(), "Peterson is safe under agreed names");
    let livelock = graph.find_fair_livelock(
        |m| m.section() == Section::Entry,
        |e| *e == MutexEvent::Enter,
    );
    assert!(livelock.is_none(), "Peterson is live under agreed names");
}

#[test]
fn peterson_breaks_without_agreement_on_register_names() {
    // Give the second process a *permuted* view — exactly what the
    // memory-anonymous model allows — and the model checker finds two
    // processes in the critical section. Named algorithms are not
    // memory-anonymous algorithms: the agreement is load-bearing.
    let sim = Simulation::builder()
        .process(Peterson::new(pid(1), 0).unwrap(), View::identity(3))
        .process(
            Peterson::new(pid(2), 1).unwrap(),
            View::from_perm(vec![1, 0, 2]).unwrap(),
        )
        .build()
        .unwrap();
    let graph = Explorer::new(sim).run().unwrap();
    let both_in_cs = graph.find_state(|s| {
        s.machines()
            .filter(|m| m.section() == Section::Critical)
            .count()
            >= 2
    });
    assert!(
        both_in_cs.is_some(),
        "a permuted view must break Peterson's mutual exclusion"
    );
    // The counterexample is a concrete replayable schedule.
    let schedule = graph.schedule_to(both_in_cs.unwrap());
    assert!(!schedule.is_empty());
}

#[test]
fn bakery_n2_is_safe_for_one_cycle_each() {
    // Bakery tickets grow without bound across cycles, so the exhaustive
    // check bounds each process to one critical section (the state space is
    // then finite).
    let sim = Simulation::builder()
        .process_identity(Bakery::new(pid(1), 0, 2).unwrap().with_cycles(1))
        .process_identity(Bakery::new(pid(2), 1, 2).unwrap().with_cycles(1))
        .build()
        .unwrap();
    let graph = Explorer::new(sim).run().unwrap();
    let both_in_cs = graph.find_state(|s| {
        s.machines()
            .filter(|m| m.section() == Section::Critical)
            .count()
            >= 2
    });
    assert!(both_in_cs.is_none(), "Bakery is safe");
    let livelock = graph.find_fair_livelock(
        |m| m.section() == Section::Entry,
        |e| *e == MutexEvent::Enter,
    );
    assert!(livelock.is_none(), "Bakery is live");
    // Some terminal state has both done their cycle.
    assert!(graph
        .find_state(anonreg_sim::Simulation::all_halted)
        .is_some());
}

#[test]
fn bakery_n3_is_safe_for_one_cycle_each() {
    let sim = Simulation::builder()
        .process_identity(Bakery::new(pid(1), 0, 3).unwrap().with_cycles(1))
        .process_identity(Bakery::new(pid(2), 1, 3).unwrap().with_cycles(1))
        .process_identity(Bakery::new(pid(3), 2, 3).unwrap().with_cycles(1))
        .build()
        .unwrap();
    let graph = Explorer::new(sim)
        .max_states(4_000_000)
        .crashes(false)
        .run()
        .unwrap();
    let both_in_cs = graph.find_state(|s| {
        s.machines()
            .filter(|m| m.section() == Section::Critical)
            .count()
            >= 2
    });
    assert!(both_in_cs.is_none(), "Bakery is safe for three processes");
}

#[test]
fn splitter_n2_names_are_distinct_under_all_interleavings() {
    let n = 2;
    let regs = 2 * SplitterRenaming::splitters(n);
    let build = || {
        Simulation::builder()
            .process_identity(SplitterRenaming::new(pid(1), n).unwrap())
            .process_identity(SplitterRenaming::new(pid(2), n).unwrap())
            .build()
            .unwrap()
    };
    let graph = Explorer::new(build()).run().unwrap();
    for (id, state) in graph.states() {
        if !state.all_halted() {
            continue;
        }
        let schedule = graph.schedule_to(id);
        let mut sim = build();
        for &p in &schedule {
            sim.step(p).unwrap();
        }
        let names: Vec<u32> = sim
            .trace()
            .events()
            .map(|(_, _, e)| {
                let anonreg::renaming::RenamingEvent::Named(name) = e;
                *name
            })
            .collect();
        assert_eq!(names.len(), 2);
        assert_ne!(names[0], names[1], "splitter names collide");
        assert!(names.iter().all(|&nm| nm as usize <= regs));
    }
}

#[test]
fn lock_consensus_n2_agrees_under_all_interleavings() {
    let build = || {
        Simulation::builder()
            .process_identity(LockConsensus::new(pid(1), 0, 2, 1).unwrap())
            .process_identity(LockConsensus::new(pid(2), 1, 2, 2).unwrap())
            .build()
            .unwrap()
    };
    let graph = Explorer::new(build()).run().unwrap();
    for (id, state) in graph.states() {
        if !state.all_halted() {
            continue;
        }
        let schedule = graph.schedule_to(id);
        let mut sim = build();
        for &p in &schedule {
            sim.step(p).unwrap();
        }
        let trace = sim.into_trace();
        anonreg::spec::check_consensus(&trace, &[1, 2]).unwrap_or_else(|v| panic!("{v}\n{trace}"));
    }
}
