//! Verdict-equivalence regression for symmetry-reduced exploration.
//!
//! Symmetry reduction must be invisible to every model-check verdict: for
//! each algorithm family the explorer is run with `--symmetry off`,
//! `registers` and `full`, and every verdict the repo's experiments rely
//! on — safety (mutual exclusion / agreement / validity / name
//! uniqueness), fair-livelock detection and obstruction freedom — must be
//! bit-identical across the three modes. Only the *state counts* may
//! shrink.
//!
//! The parallel engine must agree with the sequential one under symmetry
//! too. Which concrete orbit representative gets stored is racy there, so
//! the cross-engine comparison uses state/edge counts plus verdicts, not
//! graph isomorphism.

use std::collections::BTreeSet;
use std::fmt::Debug;
use std::hash::Hash;

use anonreg::baseline::Peterson;
use anonreg::consensus::{AnonConsensus, ConsensusEvent};
use anonreg::election::AnonElection;
use anonreg::hybrid::{named_view, HybridMutex};
use anonreg::mutex::{AnonMutex, MutexEvent, Section};
use anonreg::ordered::OrderedMutex;
use anonreg::renaming::AnonRenaming;
use anonreg::{Machine, Pid, PidMap, View};
use anonreg_sim::obstruction::check_obstruction_freedom;
use anonreg_sim::prelude::*;
use anonreg_sim::symmetry::ring_views;

fn pid(n: u64) -> Pid {
    Pid::new(n).unwrap()
}

const MODES: [SymmetryMode; 3] = [
    SymmetryMode::Off,
    SymmetryMode::Registers,
    SymmetryMode::Full,
];

/// Everything a family's model check decides, as comparable data.
#[derive(Debug, PartialEq, Eq)]
struct Verdicts {
    safety_violated: bool,
    fair_livelock: bool,
    /// `None` when the family's machines cycle forever (obstruction
    /// freedom is only checked for halting families).
    obstruction_free: Option<bool>,
}

fn explore<M>(
    build: &impl Fn() -> Simulation<M>,
    mode: SymmetryMode,
    threads: usize,
) -> StateGraph<M>
where
    M: Machine + Eq + Hash + PidMap,
    M::Value: PidMap,
{
    Explorer::new(build())
        .max_states(500_000)
        .parallelism(threads)
        .symmetry(mode)
        .run()
        .unwrap()
}

/// Runs one family through all three modes (sequentially and at 4
/// threads) and asserts the verdicts never move.
fn check_family<M>(
    family: &str,
    build: impl Fn() -> Simulation<M>,
    verdicts: impl Fn(&StateGraph<M>) -> Verdicts,
) where
    M: Machine + Eq + Hash + PidMap,
    M::Value: PidMap,
{
    let baseline_graph = explore(&build, SymmetryMode::Off, 1);
    let baseline = verdicts(&baseline_graph);
    for mode in MODES {
        let seq = explore(&build, mode, 1);
        assert!(
            seq.state_count() <= baseline_graph.state_count(),
            "{family}: {mode} stored more states than off"
        );
        assert_eq!(
            verdicts(&seq),
            baseline,
            "{family}: sequential verdicts diverged under {mode}"
        );
        let par = explore(&build, mode, 4);
        assert_eq!(
            (par.state_count(), par.edge_count()),
            (seq.state_count(), seq.edge_count()),
            "{family}: parallel counts diverged under {mode}"
        );
        assert_eq!(
            verdicts(&par),
            baseline,
            "{family}: parallel verdicts diverged under {mode}"
        );
    }
}

/// Mutex-style verdicts, shared by the four mutual-exclusion families.
fn mutex_verdicts<M>(graph: &StateGraph<M>, section: impl Fn(&M) -> Section + Copy) -> Verdicts
where
    M: Machine<Event = MutexEvent> + Eq + Hash,
{
    let both_critical = |s: &Simulation<M>| {
        (0..s.process_count())
            .filter(|&p| section(s.machine(p)) == Section::Critical)
            .count()
            >= 2
    };
    Verdicts {
        safety_violated: graph.find_state(both_critical).is_some(),
        fair_livelock: graph
            .find_fair_livelock(
                |m| section(m) == Section::Entry,
                |e| *e == MutexEvent::Enter,
            )
            .is_some(),
        obstruction_free: None,
    }
}

#[test]
fn mutex_verdicts_are_symmetry_invariant() {
    check_family(
        "mutex",
        || {
            Simulation::builder()
                .process(AnonMutex::new(pid(1), 3).unwrap(), View::identity(3))
                .process(AnonMutex::new(pid(2), 3).unwrap(), View::rotated(3, 1))
                .build()
                .unwrap()
        },
        |g| mutex_verdicts(g, AnonMutex::section),
    );
}

#[test]
fn ordered_mutex_verdicts_are_symmetry_invariant() {
    check_family(
        "ordered",
        || {
            Simulation::builder()
                .process(OrderedMutex::new(pid(1), 3).unwrap(), View::identity(3))
                .process(OrderedMutex::new(pid(2), 3).unwrap(), View::rotated(3, 1))
                .build()
                .unwrap()
        },
        |g| mutex_verdicts(g, OrderedMutex::section),
    );
}

#[test]
fn hybrid_mutex_verdicts_are_symmetry_invariant() {
    check_family(
        "hybrid",
        || {
            let anon: Vec<usize> = (0..3).map(|j| (j + 1) % 3).collect();
            Simulation::builder()
                .process(
                    HybridMutex::new(pid(1), 3).unwrap(),
                    named_view(3, (0..3).collect()).unwrap(),
                )
                .process(
                    HybridMutex::new(pid(2), 3).unwrap(),
                    named_view(3, anon).unwrap(),
                )
                .build()
                .unwrap()
        },
        |g| mutex_verdicts(g, HybridMutex::section),
    );
}

#[test]
fn peterson_verdicts_are_symmetry_invariant() {
    check_family(
        "peterson",
        || {
            Simulation::builder()
                .process_identity(Peterson::new(pid(1), 0).unwrap())
                .process_identity(Peterson::new(pid(2), 1).unwrap())
                .build()
                .unwrap()
        },
        |g| mutex_verdicts(g, Peterson::section),
    );
}

#[test]
fn consensus_verdicts_are_symmetry_invariant() {
    let inputs = [1u64, 2];
    check_family(
        "consensus",
        || {
            Simulation::builder()
                .process(
                    AnonConsensus::new(pid(1), 2, inputs[0])
                        .unwrap()
                        .with_registers(2),
                    View::identity(2),
                )
                .process(
                    AnonConsensus::new(pid(2), 2, inputs[1])
                        .unwrap()
                        .with_registers(2),
                    View::rotated(2, 1),
                )
                .build()
                .unwrap()
        },
        |g| {
            let decisions = |s: &Simulation<AnonConsensus>| -> BTreeSet<u64> {
                (0..s.process_count())
                    .filter(|&p| s.machine(p).has_decided())
                    .map(|p| s.machine(p).preference())
                    .collect()
            };
            let agreement_violated = g.find_state(|s| decisions(s).len() >= 2).is_some();
            let validity_violated = g
                .find_state(|s| decisions(s).iter().any(|v| !inputs.contains(v)))
                .is_some();
            Verdicts {
                safety_violated: agreement_violated || validity_violated,
                fair_livelock: g
                    .find_fair_livelock(
                        |m| !m.has_decided(),
                        |e| matches!(e, ConsensusEvent::Decide(_)),
                    )
                    .is_some(),
                obstruction_free: Some(check_obstruction_freedom(g, 10_000).is_ok()),
            }
        },
    );
}

#[test]
fn election_verdicts_are_symmetry_invariant() {
    check_family(
        "election",
        || {
            Simulation::builder()
                .process(AnonElection::new(pid(1), 2).unwrap(), View::identity(3))
                .process(AnonElection::new(pid(2), 2).unwrap(), View::rotated(3, 1))
                .build()
                .unwrap()
        },
        |g| Verdicts {
            // Safety here: a process must never believe an election
            // finished while another has not even heard of one and the
            // graph holds a state with *no* possible progress. The cheap
            // invariant we pin instead: once everyone halted, everyone
            // elected.
            safety_violated: g
                .find_state(|s| {
                    s.all_halted() && (0..s.process_count()).any(|p| !s.machine(p).has_elected())
                })
                .is_some(),
            fair_livelock: false,
            obstruction_free: Some(check_obstruction_freedom(g, 10_000).is_ok()),
        },
    );
}

#[test]
fn renaming_verdicts_are_symmetry_invariant() {
    check_family(
        "renaming",
        || {
            Simulation::builder()
                .process(AnonRenaming::new(pid(1), 2).unwrap(), View::identity(3))
                .process(AnonRenaming::new(pid(2), 2).unwrap(), View::rotated(3, 1))
                .build()
                .unwrap()
        },
        |g| Verdicts {
            // Uniqueness: two named processes never share a name (round).
            safety_violated: g
                .find_state(|s| {
                    let names: Vec<u32> = (0..s.process_count())
                        .filter(|&p| s.machine(p).has_name())
                        .map(|p| s.machine(p).round())
                        .collect();
                    let distinct: BTreeSet<u32> = names.iter().copied().collect();
                    distinct.len() != names.len()
                })
                .is_some(),
            fair_livelock: false,
            obstruction_free: Some(check_obstruction_freedom(g, 10_000).is_ok()),
        },
    );
}

/// The headline reduction guarantee on a genuinely symmetric workload:
/// three identical machines behind identical views admit the full
/// symmetric group S₃, so `full` must store at least 2x fewer states than
/// `off` — and find exactly the same verdicts.
#[test]
fn full_mode_reduces_symmetric_mutex_at_least_2x() {
    let build = || {
        let mut b = Simulation::builder();
        for i in 0..3u64 {
            b = b.process(
                AnonMutex::new(Pid::new(i + 1).unwrap(), 2)
                    .unwrap()
                    .with_cycles(1),
                View::identity(2),
            );
        }
        b.build().unwrap()
    };
    let off = explore(&build, SymmetryMode::Off, 1);
    let full = explore(&build, SymmetryMode::Full, 1);
    assert!(
        off.state_count() >= 2 * full.state_count(),
        "expected >=2x reduction, got {} vs {}",
        off.state_count(),
        full.state_count()
    );
    assert_eq!(
        mutex_verdicts(&off, AnonMutex::section),
        mutex_verdicts(&full, AnonMutex::section)
    );
    // The parallel engine lands on the same orbit set.
    let par = explore(&build, SymmetryMode::Full, 4);
    assert_eq!(par.state_count(), full.state_count());
    assert_eq!(par.edge_count(), full.edge_count());
}

/// `Registers` mode needs no identifier renaming to cut a workload whose
/// register contents are identifier-free: the ring-view `Stamper`-style
/// configuration from `crates/sim/tests/canon_orbit.rs` is covered there;
/// here we pin that `registers` stays *sound* (never below the `full`
/// count, never above the `off` count) on the ring mutex.
#[test]
fn registers_mode_is_bounded_by_off_and_full() {
    let views = ring_views(2, 2).unwrap();
    let build = || {
        let mut b = Simulation::builder();
        for (i, v) in views.iter().enumerate() {
            b = b.process(
                AnonMutex::new(Pid::new(i as u64 + 1).unwrap(), 2)
                    .unwrap()
                    .with_cycles(1),
                v.clone(),
            );
        }
        b.build().unwrap()
    };
    let off = explore(&build, SymmetryMode::Off, 1);
    let regs = explore(&build, SymmetryMode::Registers, 1);
    let full = explore(&build, SymmetryMode::Full, 1);
    assert!(regs.state_count() <= off.state_count());
    assert!(full.state_count() <= regs.state_count());
    assert_eq!(
        mutex_verdicts(&off, AnonMutex::section),
        mutex_verdicts(&regs, AnonMutex::section)
    );
    assert_eq!(
        mutex_verdicts(&off, AnonMutex::section),
        mutex_verdicts(&full, AnonMutex::section)
    );
}

/// The E16 sweeps measured *zero* `registers`-mode reduction on the ring
/// mutex and symmetric consensus at full orbit-search cost: every slot
/// carries a distinct identifier, which pins it, so canonicalization is
/// injective on the reachable set. The encoder must detect this at build
/// time and short-circuit to the plain identity path — state and edge
/// counts stay exactly the `off` counts, the `canon_skipped` counter
/// proves the fast path fired, and no canonicalization time is billed.
#[test]
fn registers_mode_skips_pid_pinned_orbits() {
    use anonreg_obs::{MemProbe, Metric};

    // The quick-scale E16 ring: procs == m, so the rotation group is
    // *non-trivial* and only the pid-pinning argument can fire.
    let views = ring_views(2, 2).unwrap();
    let build = || {
        let mut b = Simulation::builder();
        for (i, v) in views.iter().enumerate() {
            b = b.process(
                AnonMutex::new(Pid::new(i as u64 + 1).unwrap(), 2)
                    .unwrap()
                    .with_cycles(1),
                v.clone(),
            );
        }
        b.build().unwrap()
    };
    let off = Explorer::new(build()).max_states(500_000).run().unwrap();

    let probe = MemProbe::new();
    let regs = Explorer::new(build())
        .max_states(500_000)
        .symmetry(SymmetryMode::Registers)
        .probe(&probe)
        .run()
        .unwrap();
    let snap = probe.into_snapshot();

    // Pinned: the fast path must not change what `registers` stores.
    assert_eq!(regs.state_count(), off.state_count());
    assert_eq!(regs.edge_count(), off.edge_count());
    // Every encode after the initial state's took the fast path: one
    // per explored edge plus the initial encode.
    let skipped = snap.counter_total(Metric::CanonSkipped);
    assert_eq!(skipped, off.edge_count() as u64 + 1);
    // ...and the canonical path never ran.
    assert_eq!(snap.counter_total(Metric::SymmetryHits), 0);
    assert_eq!(snap.counter_total(Metric::CanonTime), 0);
    // The verdicts are the `off` verdicts by construction.
    assert_eq!(
        mutex_verdicts(&off, AnonMutex::section),
        mutex_verdicts(&regs, AnonMutex::section)
    );
}
