//! Theorem 6.3, constructively: with fewer than `2n − 1` anonymous
//! registers, the covering adversary manufactures a **disagreement** against
//! the Figure 2 consensus algorithm.
//!
//! The paper proves no obstruction-free consensus algorithm exists for `n`
//! processes with `n − 1` unnamed registers (nor with any number of
//! registers when `n` is unknown). This module runs the proof's own
//! adversary against our implementation instantiated with `r ≤ n − 1`
//! registers and returns the two conflicting decisions — experiment E4
//! sweeps `r` and tabulates the outcomes.

use std::fmt;

use anonreg::consensus::AnonConsensus;
use anonreg::Pid;

use crate::covering::{CoverError, CoveringAttack};

/// The victim's input in every attack (decided by the solo run).
pub const VICTIM_INPUT: u64 = 1;
/// The coverers' input (decided after the block write).
pub const COVERER_INPUT: u64 = 2;

/// A constructed agreement violation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Disagreement {
    /// Number of processes the algorithm was configured for.
    pub n: usize,
    /// Number of registers it was (under-)provisioned with.
    pub registers: usize,
    /// Registers the victim wrote in its solo run (`write(y, q)`).
    pub write_set: Vec<usize>,
    /// What the victim decided (always [`VICTIM_INPUT`]).
    pub victim_decided: u64,
    /// What the first coverer decided after the block write (always
    /// [`COVERER_INPUT`] — the violation).
    pub coverer_decided: u64,
}

impl fmt::Display for Disagreement {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "n = {}, r = {}: victim decided {}, coverer decided {} (write set {:?})",
            self.n, self.registers, self.victim_decided, self.coverer_decided, self.write_set
        )
    }
}

/// Error for attacks that cannot be (or need not be) mounted.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum AttackError {
    /// `registers ≥ 2n − 1`: the algorithm is correctly provisioned and the
    /// attack must fail — agreement provably holds (Theorem 4.1).
    NotUnderProvisioned {
        /// Processes.
        n: usize,
        /// Registers.
        registers: usize,
    },
    /// Parameters out of range (`n < 2` or `registers < 1`).
    BadParameters,
    /// The covering machinery failed.
    Cover(CoverError),
    /// The attack ran but the coverer agreed with the victim — would mean
    /// the lower bound does not bind, i.e. an implementation bug.
    NoViolation {
        /// The common decision.
        decided: u64,
    },
}

impl fmt::Display for AttackError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AttackError::NotUnderProvisioned { n, registers } => write!(
                f,
                "with n = {n} and r = {registers} ≥ 2n − 1 the algorithm is correct; no attack exists"
            ),
            AttackError::BadParameters => write!(f, "need n ≥ 2 and at least one register"),
            AttackError::Cover(e) => write!(f, "covering failed: {e}"),
            AttackError::NoViolation { decided } => {
                write!(f, "attack fizzled: both sides decided {decided}")
            }
        }
    }
}

impl std::error::Error for AttackError {}

impl From<CoverError> for AttackError {
    fn from(e: CoverError) -> Self {
        AttackError::Cover(e)
    }
}

/// Mounts the Theorem 6.3 covering attack against Figure 2 instantiated for
/// `n` processes but only `registers ≤ n − 1` registers, and returns the
/// manufactured disagreement.
///
/// The attack succeeds for every `1 ≤ registers ≤ n − 1` because the
/// victim's write set is at most `registers ≤ n − 1`, so the other `n − 1`
/// processes suffice to cover it, and after the block write the `n`-of-`r`
/// adoption threshold can never fire (there are fewer than `n` registers in
/// total).
///
/// # Errors
///
/// [`AttackError::NotUnderProvisioned`] when `registers ≥ 2n − 1` (the
/// algorithm is then provably correct); [`AttackError::BadParameters`] for
/// degenerate inputs. Registers in `n..2n − 1` are accepted — the paper's
/// tight bound for *this* algorithm's adoption threshold is `n` (the
/// attack still goes through whenever the coverers cannot assemble `n`
/// copies, i.e. whenever `registers < n`); the attack is attempted and may
/// return [`AttackError::NoViolation`].
pub fn disagreement(n: usize, registers: usize) -> Result<Disagreement, AttackError> {
    if n < 2 || registers == 0 {
        return Err(AttackError::BadParameters);
    }
    if registers >= 2 * n - 1 {
        return Err(AttackError::NotUnderProvisioned { n, registers });
    }

    let victim = AnonConsensus::new(Pid::new(1).unwrap(), n, VICTIM_INPUT)
        .expect("valid parameters")
        .with_registers(registers);
    let coverers: Vec<AnonConsensus> = (0..registers)
        .map(|i| {
            AnonConsensus::new(Pid::new(i as u64 + 2).unwrap(), n, COVERER_INPUT)
                .expect("valid parameters")
                .with_registers(registers)
        })
        .collect();

    // Budget: a solo run costs at most r(r+1) + 2r ops (see E3); double it
    // for slack.
    let budget = 2 * (registers * (registers + 1) + 2 * registers) + 16;
    let mut attack = CoveringAttack::build(
        victim,
        coverers,
        |m: &AnonConsensus| m.has_decided(),
        budget,
    )?;
    let write_set = attack.write_set.clone();
    let victim_decided = attack.sim.machine(0).preference();

    // Step 4: the first coverer runs alone — obstruction freedom obliges it
    // to decide.
    attack.sim.run_solo(1, budget).expect("slot 1 exists");
    let coverer = attack.sim.machine(1);
    if !coverer.has_decided() {
        return Err(AttackError::Cover(CoverError::VictimDidNotFinish {
            budget,
        }));
    }
    let coverer_decided = coverer.preference();
    if coverer_decided == victim_decided {
        return Err(AttackError::NoViolation {
            decided: coverer_decided,
        });
    }
    Ok(Disagreement {
        n,
        registers,
        write_set,
        victim_decided,
        coverer_decided,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn attack_succeeds_for_all_underprovisioned_counts() {
        for n in 2..=6 {
            for r in 1..n {
                let d = disagreement(n, r)
                    .unwrap_or_else(|e| panic!("attack failed for n={n}, r={r}: {e}"));
                assert_eq!(d.victim_decided, VICTIM_INPUT);
                assert_eq!(d.coverer_decided, COVERER_INPUT);
                assert!(d.write_set.len() <= r);
                assert!(!d.to_string().is_empty());
            }
        }
    }

    #[test]
    fn well_provisioned_algorithm_rejects_the_attack() {
        assert_eq!(
            disagreement(2, 3).unwrap_err(),
            AttackError::NotUnderProvisioned { n: 2, registers: 3 }
        );
        assert_eq!(
            disagreement(3, 7).unwrap_err(),
            AttackError::NotUnderProvisioned { n: 3, registers: 7 }
        );
    }

    #[test]
    fn bad_parameters_rejected() {
        assert_eq!(disagreement(1, 1).unwrap_err(), AttackError::BadParameters);
        assert_eq!(disagreement(3, 0).unwrap_err(), AttackError::BadParameters);
    }

    #[test]
    fn intermediate_register_counts_up_to_n_minus_1_violate() {
        // The theorem guarantees the attack for r ≤ n − 1; check the edge.
        let d = disagreement(5, 4).unwrap();
        assert_eq!(d.registers, 4);
        assert_ne!(d.victim_decided, d.coverer_decided);
    }

    #[test]
    fn error_display_nonempty() {
        for e in [
            AttackError::NotUnderProvisioned { n: 2, registers: 3 },
            AttackError::BadParameters,
            AttackError::NoViolation { decided: 3 },
        ] {
            assert!(!e.to_string().is_empty());
        }
    }
}
