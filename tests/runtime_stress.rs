//! Real-thread stress: the properties must survive genuine hardware
//! concurrency, not just the simulator's interleavings.

use std::sync::atomic::{AtomicUsize, Ordering};

use anonreg_model::Pid;
use anonreg_runtime::{AnonymousConsensus, AnonymousElection, AnonymousMutex, AnonymousRenaming};

fn pid(n: u64) -> Pid {
    Pid::new(n).unwrap()
}

#[test]
fn mutex_exclusion_under_sustained_contention() {
    for m in [3usize, 7] {
        let lock = AnonymousMutex::new(m).unwrap();
        let mut a = lock.handle(pid(1)).unwrap();
        let mut b = lock.handle(pid(2)).unwrap();
        let inside = AtomicUsize::new(0);
        let overlaps = AtomicUsize::new(0);
        let total = AtomicUsize::new(0);
        std::thread::scope(|s| {
            for handle in [&mut a, &mut b] {
                s.spawn(|| {
                    for _ in 0..1_500 {
                        let _guard = handle.enter();
                        if inside.fetch_add(1, Ordering::SeqCst) != 0 {
                            overlaps.fetch_add(1, Ordering::SeqCst);
                        }
                        std::hint::spin_loop();
                        inside.fetch_sub(1, Ordering::SeqCst);
                        total.fetch_add(1, Ordering::SeqCst);
                    }
                });
            }
        });
        assert_eq!(overlaps.load(Ordering::SeqCst), 0, "m={m}");
        assert_eq!(total.load(Ordering::SeqCst), 3_000, "m={m}");
    }
}

#[test]
fn consensus_repeated_rounds_agree() {
    for round in 0..20u64 {
        let n = 4;
        let consensus = AnonymousConsensus::new(n).unwrap();
        let decisions: Vec<u64> = std::thread::scope(|s| {
            let joins: Vec<_> = (0..n as u64)
                .map(|i| {
                    let h = consensus.handle(pid(1 + i + round * 100)).unwrap();
                    s.spawn(move || h.propose(i + 1).unwrap())
                })
                .collect();
            joins.into_iter().map(|j| j.join().unwrap()).collect()
        });
        let first = decisions[0];
        assert!(
            decisions.iter().all(|&d| d == first),
            "round {round}: {decisions:?}"
        );
        assert!((1..=n as u64).contains(&first));
    }
}

#[test]
fn consensus_scales_to_eight_threads() {
    let n = 8;
    let consensus = AnonymousConsensus::new(n).unwrap();
    let decisions: Vec<u64> = std::thread::scope(|s| {
        let joins: Vec<_> = (0..n as u64)
            .map(|i| {
                let h = consensus.handle(pid(10 + i)).unwrap();
                s.spawn(move || h.propose(100 + i).unwrap())
            })
            .collect();
        joins.into_iter().map(|j| j.join().unwrap()).collect()
    });
    let first = decisions[0];
    assert!(decisions.iter().all(|&d| d == first));
}

#[test]
fn renaming_repeated_rounds_stay_perfect() {
    for round in 0..10u64 {
        let n = 5;
        let renaming = AnonymousRenaming::new(n).unwrap();
        let mut names: Vec<u32> = std::thread::scope(|s| {
            let joins: Vec<_> = (0..n as u64)
                .map(|i| {
                    let h = renaming.handle(pid(1 + i * 13 + round * 1000)).unwrap();
                    s.spawn(move || h.acquire())
                })
                .collect();
            joins.into_iter().map(|j| j.join().unwrap()).collect()
        });
        names.sort_unstable();
        assert_eq!(names, vec![1, 2, 3, 4, 5], "round {round}");
    }
}

#[test]
fn election_is_stable_across_contention() {
    for round in 0..15u64 {
        let n = 3;
        let election = AnonymousElection::new(n).unwrap();
        let ids: Vec<u64> = (0..n as u64).map(|i| 500 + i + round * 50).collect();
        let leaders: Vec<Pid> = std::thread::scope(|s| {
            let joins: Vec<_> = ids
                .iter()
                .map(|&id| {
                    let h = election.handle(pid(id)).unwrap();
                    s.spawn(move || h.elect().unwrap())
                })
                .collect();
            joins.into_iter().map(|j| j.join().unwrap()).collect()
        });
        let first = leaders[0];
        assert!(leaders.iter().all(|&l| l == first), "round {round}");
        assert!(ids.contains(&first.get()), "round {round}");
    }
}

#[test]
fn staggered_arrivals_preserve_renaming_uniqueness() {
    // Late arrivals must slot in above the names already taken.
    let n = 6;
    let renaming = AnonymousRenaming::new(n).unwrap();
    let first_wave: Vec<u32> = std::thread::scope(|s| {
        let joins: Vec<_> = (0..3u64)
            .map(|i| {
                let h = renaming.handle(pid(100 + i)).unwrap();
                s.spawn(move || h.acquire())
            })
            .collect();
        joins.into_iter().map(|j| j.join().unwrap()).collect()
    });
    let second_wave: Vec<u32> = std::thread::scope(|s| {
        let joins: Vec<_> = (0..3u64)
            .map(|i| {
                let h = renaming.handle(pid(200 + i)).unwrap();
                s.spawn(move || h.acquire())
            })
            .collect();
        joins.into_iter().map(|j| j.join().unwrap()).collect()
    });
    let mut all: Vec<u32> = first_wave.iter().chain(&second_wave).copied().collect();
    all.sort_unstable();
    all.dedup();
    assert_eq!(all.len(), 6, "all six names distinct");
    assert!(
        first_wave.iter().all(|&name| name <= 3),
        "adaptive first wave"
    );
}
