//! E8 — election sweeps (§4 note: election = consensus on identifiers).

use anonreg::election::AnonElection;
use anonreg::spec::check_election;
use anonreg::Pid;

use crate::benchjson::BenchMetric;
use crate::table::Table;
use crate::workload::run_randomized;

/// One row of the election sweep.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Row {
    /// Participants.
    pub n: usize,
    /// Seeded schedules executed.
    pub runs: usize,
    /// Runs in which every participant learned the leader.
    pub completed: usize,
    /// Specification violations (split votes or non-participant leaders).
    pub violations: usize,
}

/// Runs the sweep for `n ∈ 2..=max_n`, `seeds` schedules each.
#[must_use]
pub fn rows(max_n: usize, seeds: u64) -> Vec<Row> {
    (2..=max_n)
        .map(|n| {
            let mut completed = 0;
            let mut violations = 0;
            for seed in 0..seeds {
                let pids: Vec<Pid> = (0..n)
                    .map(|i| Pid::new(7000 + 13 * i as u64).unwrap())
                    .collect();
                let machines: Vec<AnonElection> = pids
                    .iter()
                    .map(|&pid| AnonElection::new(pid, n).expect("valid configuration"))
                    .collect();
                let budget = 40_000 * n;
                let sim = run_randomized(machines, seed.wrapping_add(777), 8 * n, budget);
                if sim.all_halted() {
                    completed += 1;
                }
                if check_election(sim.trace(), &pids).is_err() {
                    violations += 1;
                }
            }
            Row {
                n,
                runs: seeds as usize,
                completed,
                violations,
            }
        })
        .collect()
}

/// Renders the table for the given rows.
#[must_use]
pub fn render(rows: &[Row]) -> String {
    let mut t = Table::new(vec!["n", "registers", "runs", "all elected", "violations"]);
    for r in rows {
        t.row(vec![
            r.n.to_string(),
            (2 * r.n - 1).to_string(),
            r.runs.to_string(),
            r.completed.to_string(),
            r.violations.to_string(),
        ]);
    }
    t.render()
}

/// Machine-readable metrics for the given rows.
#[must_use]
pub fn metrics(rows: &[Row]) -> Vec<BenchMetric> {
    let mut out = Vec::new();
    for r in rows {
        let n = r.n;
        out.push(BenchMetric::new(
            "E8",
            "election",
            format!("n{n}_runs"),
            r.runs as f64,
            "runs",
        ));
        out.push(BenchMetric::new(
            "E8",
            "election",
            format!("n{n}_completed"),
            r.completed as f64,
            "runs",
        ));
        out.push(BenchMetric::new(
            "E8",
            "election",
            format!("n{n}_violations"),
            r.violations as f64,
            "violations",
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_violations_across_seeds() {
        for row in rows(4, 20) {
            assert_eq!(row.violations, 0, "n={}", row.n);
            assert!(row.completed * 2 >= row.runs, "n={}: {row:?}", row.n);
        }
    }
}
