//! E1 machinery benchmark: exhaustive exploration cost of the Figure 1
//! mutex state space as the register count grows, plus the price of the
//! SCC-based fair-livelock analysis.

use anonreg_bench::timing::{criterion_group, criterion_main, BenchmarkId, Criterion};

use anonreg::hybrid::{named_view, HybridMutex};
use anonreg::mutex::{AnonMutex, MutexEvent, Section};
use anonreg::ordered::OrderedMutex;
use anonreg::{Pid, View};
use anonreg_sim::prelude::*;
use anonreg_sim::Simulation;

fn two_proc_sim(m: usize) -> Simulation<AnonMutex> {
    Simulation::builder()
        .process(
            AnonMutex::new(Pid::new(1).unwrap(), m).unwrap(),
            View::identity(m),
        )
        .process(
            AnonMutex::new(Pid::new(2).unwrap(), m).unwrap(),
            View::rotated(m, m / 2),
        )
        .build()
        .unwrap()
}

fn bench_explore(c: &mut Criterion) {
    let mut group = c.benchmark_group("e1_explore");
    group.sample_size(10);
    for m in [2usize, 3, 4] {
        group.bench_with_input(BenchmarkId::new("mutex_states", m), &m, |b, &m| {
            b.iter(|| {
                let graph = Explorer::new(two_proc_sim(m)).run().unwrap();
                graph.state_count()
            });
        });
    }
    group.finish();
}

fn bench_analysis(c: &mut Criterion) {
    let mut group = c.benchmark_group("e1_analysis");
    group.sample_size(10);
    for m in [3usize, 4] {
        let graph = Explorer::new(two_proc_sim(m)).run().unwrap();
        group.bench_with_input(BenchmarkId::new("safety_scan", m), &m, |b, _| {
            b.iter(|| {
                graph.find_state(|s| {
                    s.machines()
                        .filter(|mach| mach.section() == Section::Critical)
                        .count()
                        >= 2
                })
            });
        });
        group.bench_with_input(BenchmarkId::new("livelock_scc", m), &m, |b, _| {
            b.iter(|| {
                graph.find_fair_livelock(
                    |mach| mach.section() == Section::Entry,
                    |event| *event == MutexEvent::Enter,
                )
            });
        });
    }
    group.finish();
}

fn bench_extensions(c: &mut Criterion) {
    let mut group = c.benchmark_group("e11_e13_explore");
    group.sample_size(10);
    for m in [2usize, 3] {
        group.bench_with_input(BenchmarkId::new("hybrid_states", m), &m, |b, &m| {
            b.iter(|| {
                let sim = Simulation::builder()
                    .process(
                        HybridMutex::new(Pid::new(1).unwrap(), m).unwrap(),
                        named_view(m, (0..m).collect()).unwrap(),
                    )
                    .process(
                        HybridMutex::new(Pid::new(2).unwrap(), m).unwrap(),
                        named_view(m, (0..m).map(|j| (j + 1) % m).collect()).unwrap(),
                    )
                    .build()
                    .unwrap();
                Explorer::new(sim).run().unwrap().state_count()
            });
        });
        group.bench_with_input(BenchmarkId::new("ordered_states", m), &m, |b, &m| {
            b.iter(|| {
                let sim = Simulation::builder()
                    .process(
                        OrderedMutex::new(Pid::new(1).unwrap(), m).unwrap(),
                        View::identity(m),
                    )
                    .process(
                        OrderedMutex::new(Pid::new(2).unwrap(), m).unwrap(),
                        View::rotated(m, 1),
                    )
                    .build()
                    .unwrap();
                Explorer::new(sim).run().unwrap().state_count()
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_explore, bench_analysis, bench_extensions);
criterion_main!(benches);
