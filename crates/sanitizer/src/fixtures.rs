//! Deliberately broken ordering fixtures — the sanitizer's negative
//! controls.
//!
//! A sanitizer that never fires proves nothing, so `check sanitize
//! --broken` runs two plans that *must* be flagged (and CI asserts the
//! command fails):
//!
//! * **`relaxed-doorway-write`** — the Figure 1 anonymous mutex with its
//!   claim (doorway) writes demoted to `Relaxed`. A rival's `Acquire`
//!   scan can then consume a doorway mark with no synchronizes-with edge:
//!   exactly the bug a real port introduces by writing marks with a
//!   relaxed store.
//! * **`unreleased-consensus-decide`** — the consensus machine with its
//!   record ("decide") writes demoted to `Relaxed`, so the record a rival
//!   adopts its decision from was never released.
//!
//! Both fixtures keep reads at `Acquire` — the load side is *correct* —
//! so what the sanitizer flags is specifically the missing release, and
//! the violation's witness prints the unreleased store. Detection is a
//! property of the seeded schedule, so [`run_fixture`] scans schedules in
//! the standard [`schedule_seed`] derivation until one fires and reports
//! that seed; [`replay_fixture`] reruns exactly one schedule, which is
//! what `check sanitize --family F --replay SEED` does for fixtures.

use std::sync::atomic::Ordering;

use crate::infer::{run_family, schedule_seed};
use crate::plan::OrderingPlan;
use crate::report::OrderingViolation;

/// One deliberately broken fixture.
#[derive(Clone, Copy, Debug)]
pub struct BrokenFixture {
    /// Stable fixture name (accepted by `check sanitize --family`).
    pub name: &'static str,
    /// The correct family the fixture is a broken variant of.
    pub family: &'static str,
    /// The defective plan it runs under.
    pub plan: OrderingPlan,
    /// What the sanitizer is expected to report.
    pub expect: &'static str,
}

/// The negative-control fixtures, both expected to be flagged.
#[must_use]
pub fn fixtures() -> Vec<BrokenFixture> {
    let broken = OrderingPlan {
        read: Ordering::Acquire,
        claim: Ordering::Relaxed,
        clear: Ordering::Release,
    };
    vec![
        BrokenFixture {
            name: "relaxed-doorway-write",
            family: "mutex",
            plan: broken,
            expect: "an Acquire scan consumes a Relaxed doorway mark with no \
                     happens-before edge",
        },
        BrokenFixture {
            name: "unreleased-consensus-decide",
            family: "consensus",
            plan: broken,
            expect: "a rival adopts a decision from a consensus record that was \
                     never released",
        },
    ]
}

/// Looks up a fixture by name.
#[must_use]
pub fn fixture(name: &str) -> Option<BrokenFixture> {
    fixtures().into_iter().find(|f| f.name == name)
}

/// How a fixture run ended.
#[derive(Clone, Debug)]
pub struct FixtureOutcome {
    /// The fixture that ran.
    pub name: &'static str,
    /// Seed of the schedule that fired (replayable), if any did.
    pub seed: Option<u64>,
    /// Schedules tried before one fired (or the scan limit).
    pub schedules_tried: u64,
    /// The first flagged violation, witness included.
    pub violation: Option<OrderingViolation>,
}

impl FixtureOutcome {
    /// Did the sanitizer flag the fixture, as it must?
    #[must_use]
    pub fn flagged(&self) -> bool {
        self.violation.is_some()
    }
}

/// Scans up to `max_schedules` seeded schedules of `f` until the
/// sanitizer fires, reporting the firing seed and witness. Fixture
/// schedules run fault-free so a firing seed alone replays the exact
/// witness (the missing release fires with or without injected faults;
/// fault interaction is the inference sweep's job).
#[must_use]
pub fn run_fixture(f: &BrokenFixture, base_seed: u64, max_schedules: u64) -> FixtureOutcome {
    for index in 0..max_schedules {
        let seed = schedule_seed(base_seed, index);
        let outcome = run_family(f.family, f.plan, seed, false);
        if let Some(violation) = outcome.first_violation {
            return FixtureOutcome {
                name: f.name,
                seed: Some(seed),
                schedules_tried: index + 1,
                violation: Some(violation),
            };
        }
    }
    FixtureOutcome {
        name: f.name,
        seed: None,
        schedules_tried: max_schedules,
        violation: None,
    }
}

/// Reruns exactly one seeded (fault-free) schedule of `f` — the replay
/// path behind a printed fixture seed.
#[must_use]
pub fn replay_fixture(f: &BrokenFixture, seed: u64) -> Option<OrderingViolation> {
    run_family(f.family, f.plan, seed, false).first_violation
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn both_fixtures_are_flagged_and_replay() {
        for f in fixtures() {
            let outcome = run_fixture(&f, 0xF1C5, 16);
            assert!(
                outcome.flagged(),
                "{} must be flagged within 16 schedules",
                f.name
            );
            let seed = outcome.seed.expect("flagged outcome carries its seed");
            let violation = outcome
                .violation
                .expect("flagged outcome carries a witness");
            assert!(!violation.witness.is_empty(), "{}: witness present", f.name);
            // The claim site is the relaxed one, and that's what fired.
            assert_eq!(violation.write_ordering, Ordering::Relaxed, "{}", f.name);
            let replay = replay_fixture(&f, seed).expect("seed replays the violation");
            assert_eq!(replay.to_string(), violation.to_string(), "{}", f.name);
        }
    }

    #[test]
    fn fixture_lookup_by_name() {
        assert!(fixture("relaxed-doorway-write").is_some());
        assert!(fixture("unreleased-consensus-decide").is_some());
        assert!(fixture("nope").is_none());
    }
}
