//! Per-process private numberings of the shared registers.

use std::fmt;

/// A process's private numbering of the `m` shared registers: a permutation
/// mapping the process's *local* indices `0..m` to *physical* indices `0..m`.
///
/// In the memory-anonymous model the adversary assigns each process an
/// initial register and scanning order; a `View` is the executable form of
/// that assignment. Algorithm code never touches a `View` — only drivers
/// (the simulator and the thread runtime) translate local indices through
/// it.
///
/// # Example
///
/// ```
/// use anonreg_model::View;
///
/// // One process scans 4 registers in order 3, 2, 1, 4 (1-based in the
/// // paper; 0-based here), another in order 2, 4, 1, 3:
/// let a = View::from_perm(vec![2, 1, 0, 3])?;
/// let b = View::from_perm(vec![1, 3, 0, 2])?;
/// assert_eq!(a.physical(0), 2);
/// assert_eq!(b.physical(0), 1);
/// // Both views address the same physical memory, just in different orders.
/// # Ok::<(), anonreg_model::ViewError>(())
/// ```
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct View {
    /// `perm[local] == physical`.
    perm: Vec<usize>,
}

impl View {
    /// The identity view over `m` registers: local index `j` is physical
    /// index `j`. This is what the standard (named-register) model assumes
    /// for every process.
    #[must_use]
    pub fn identity(m: usize) -> Self {
        View {
            perm: (0..m).collect(),
        }
    }

    /// A cyclic rotation of the identity view: local index `j` maps to
    /// physical index `(j + shift) % m`.
    ///
    /// Rotated views arrange the registers "as a unidirectional ring", which
    /// is exactly the construction in the proof of Theorem 3.4: `ℓ` processes
    /// share a ring ordering but start at initial registers spaced `m/ℓ`
    /// apart.
    ///
    /// # Panics
    ///
    /// Panics if `m == 0`.
    #[must_use]
    pub fn rotated(m: usize, shift: usize) -> Self {
        assert!(m > 0, "a view needs at least one register");
        View {
            perm: (0..m).map(|j| (j + shift) % m).collect(),
        }
    }

    /// Builds a view from an explicit permutation, where `perm[local]`
    /// is the physical index.
    ///
    /// # Errors
    ///
    /// Returns [`ViewError`] if `perm` is not a permutation of `0..perm.len()`.
    pub fn from_perm(perm: Vec<usize>) -> Result<Self, ViewError> {
        let m = perm.len();
        let mut seen = vec![false; m];
        for &phys in &perm {
            if phys >= m {
                return Err(ViewError::OutOfRange { index: phys, m });
            }
            if seen[phys] {
                return Err(ViewError::Duplicate { index: phys });
            }
            seen[phys] = true;
        }
        Ok(View { perm })
    }

    /// The number of registers this view covers.
    #[must_use]
    pub fn len(&self) -> usize {
        self.perm.len()
    }

    /// Returns `true` if the view covers zero registers.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.perm.is_empty()
    }

    /// Translates a process-local register index to the physical index.
    ///
    /// # Panics
    ///
    /// Panics if `local >= self.len()`.
    #[must_use]
    pub fn physical(&self, local: usize) -> usize {
        self.perm[local]
    }

    /// Translates a physical register index back to this process's local
    /// index (the inverse of [`physical`](View::physical)).
    ///
    /// # Panics
    ///
    /// Panics if `physical >= self.len()`.
    #[must_use]
    pub fn local(&self, physical: usize) -> usize {
        self.perm
            .iter()
            .position(|&p| p == physical)
            .expect("physical index out of range")
    }

    /// Returns the inverse permutation as a view.
    #[must_use]
    pub fn inverse(&self) -> View {
        let mut inv = vec![0; self.perm.len()];
        for (local, &phys) in self.perm.iter().enumerate() {
            inv[phys] = local;
        }
        View { perm: inv }
    }

    /// Composes two views: `self.compose(&other)` first translates through
    /// `other`, then through `self`, i.e. the result maps `j` to
    /// `self.physical(other.physical(j))`.
    ///
    /// # Panics
    ///
    /// Panics if the views cover different numbers of registers.
    #[must_use]
    pub fn compose(&self, other: &View) -> View {
        assert_eq!(
            self.len(),
            other.len(),
            "cannot compose views of different sizes"
        );
        View {
            perm: (0..other.len())
                .map(|j| self.physical(other.physical(j)))
                .collect(),
        }
    }

    /// Iterates over the physical indices in local order.
    pub fn iter(&self) -> impl Iterator<Item = usize> + '_ {
        self.perm.iter().copied()
    }

    /// Consumes the view and returns the underlying permutation vector
    /// (`vec[local] == physical`).
    #[must_use]
    pub fn into_inner(self) -> Vec<usize> {
        self.perm
    }
}

impl fmt::Debug for View {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "View{:?}", self.perm)
    }
}

impl fmt::Display for View {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[")?;
        for (i, p) in self.perm.iter().enumerate() {
            if i > 0 {
                write!(f, " ")?;
            }
            write!(f, "{p}")?;
        }
        write!(f, "]")
    }
}

/// Error returned when a vector is not a valid permutation of `0..m`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ViewError {
    /// An index appeared that is `>= m`.
    OutOfRange {
        /// The offending physical index.
        index: usize,
        /// The number of registers.
        m: usize,
    },
    /// A physical index appeared twice.
    Duplicate {
        /// The duplicated physical index.
        index: usize,
    },
}

impl fmt::Display for ViewError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ViewError::OutOfRange { index, m } => {
                write!(f, "index {index} out of range for {m} registers")
            }
            ViewError::Duplicate { index } => write!(f, "index {index} appears more than once"),
        }
    }
}

impl std::error::Error for ViewError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_maps_to_self() {
        let v = View::identity(5);
        assert_eq!(v.len(), 5);
        for j in 0..5 {
            assert_eq!(v.physical(j), j);
            assert_eq!(v.local(j), j);
        }
    }

    #[test]
    fn rotation_wraps() {
        let v = View::rotated(4, 3);
        assert_eq!(v.physical(0), 3);
        assert_eq!(v.physical(1), 0);
        assert_eq!(v.physical(3), 2);
    }

    #[test]
    #[should_panic(expected = "at least one register")]
    fn rotation_of_zero_registers_panics() {
        let _ = View::rotated(0, 1);
    }

    #[test]
    fn from_perm_validates() {
        assert!(View::from_perm(vec![1, 0, 2]).is_ok());
        assert_eq!(
            View::from_perm(vec![0, 0, 1]),
            Err(ViewError::Duplicate { index: 0 })
        );
        assert_eq!(
            View::from_perm(vec![0, 3]),
            Err(ViewError::OutOfRange { index: 3, m: 2 })
        );
    }

    #[test]
    fn inverse_round_trips() {
        let v = View::from_perm(vec![2, 0, 3, 1]).unwrap();
        let inv = v.inverse();
        for j in 0..4 {
            assert_eq!(inv.physical(v.physical(j)), j);
            assert_eq!(v.local(v.physical(j)), j);
        }
    }

    #[test]
    fn compose_matches_sequential_application() {
        let a = View::from_perm(vec![1, 2, 0]).unwrap();
        let b = View::rotated(3, 1);
        let c = a.compose(&b);
        for j in 0..3 {
            assert_eq!(c.physical(j), a.physical(b.physical(j)));
        }
    }

    #[test]
    fn compose_with_inverse_is_identity() {
        let v = View::from_perm(vec![3, 1, 4, 0, 2]).unwrap();
        assert_eq!(v.compose(&v.inverse()), View::identity(5));
        assert_eq!(v.inverse().compose(&v), View::identity(5));
    }

    #[test]
    fn empty_view() {
        let v = View::identity(0);
        assert!(v.is_empty());
        assert_eq!(v.iter().count(), 0);
    }

    #[test]
    fn display_and_into_inner() {
        let v = View::from_perm(vec![2, 0, 1]).unwrap();
        assert_eq!(v.to_string(), "[2 0 1]");
        assert_eq!(format!("{v:?}"), "View[2, 0, 1]");
        assert_eq!(v.into_inner(), vec![2, 0, 1]);
    }

    #[test]
    fn error_display() {
        assert_eq!(
            ViewError::OutOfRange { index: 9, m: 4 }.to_string(),
            "index 9 out of range for 4 registers"
        );
        assert_eq!(
            ViewError::Duplicate { index: 2 }.to_string(),
            "index 2 appears more than once"
        );
    }
}
