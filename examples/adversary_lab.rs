//! Adversary lab: watch the paper's proofs *run*.
//!
//! ```text
//! cargo run --release --example adversary_lab
//! ```
//!
//! Three demonstrations on the deterministic simulator:
//!
//! 1. **Theorem 3.1 (even m)** — the model checker finds a fair livelock of
//!    the Figure 1 mutex with 4 registers and replays the adversary
//!    schedule that produces it.
//! 2. **Theorem 3.4** — three processes on a ring of 3 registers, run in
//!    lock step: rotation symmetry survives every round and nobody ever
//!    enters the critical section.
//! 3. **Theorem 6.3** — the covering adversary manufactures a real
//!    disagreement against consensus that was (wrongly) given fewer than
//!    `2n − 1` registers, and prints the full run.

use anonreg::mutex::{AnonMutex, MutexEvent, Section};
use anonreg::{Pid, View};
use anonreg_lower::consensus_cover;
use anonreg_lower::ring::ring_starvation;
use anonreg_sim::prelude::*;
use anonreg_sim::Simulation;

fn pid(n: u64) -> Pid {
    Pid::new(n).unwrap()
}

fn main() {
    // --- 1. Even m: find and replay the livelock. -------------------------
    println!("== Theorem 3.1: Figure 1 with m = 4 (even) livelocks ==");
    let m = 4;
    let build = || {
        Simulation::builder()
            .process(AnonMutex::new(pid(1), m).unwrap(), View::rotated(m, 0))
            .process(AnonMutex::new(pid(2), m).unwrap(), View::rotated(m, 2))
            .build()
            .unwrap()
    };
    let graph = Explorer::new(build()).run().unwrap();
    println!("reachable states: {}", graph.state_count());
    let livelock = graph
        .find_fair_livelock(
            |mach| mach.section() == Section::Entry,
            |event| *event == MutexEvent::Enter,
        )
        .expect("even m admits a fair livelock");
    println!(
        "fair livelock component found: {} states in which both processes keep \
         taking steps and no one ever enters",
        livelock.len()
    );
    let schedule = graph.schedule_to(livelock[0]);
    println!(
        "adversary schedule into the livelock ({} steps):",
        schedule.len()
    );
    let mut sim = build();
    for &p in &schedule {
        sim.step(p).unwrap();
    }
    println!("{}", sim.trace());

    // Export the livelock neighbourhood for `dot -Tsvg`.
    let dot = anonreg_sim::viz::to_dot(
        &graph,
        &anonreg_sim::viz::DotOptions {
            name: "livelock".into(),
            max_states: 200,
            highlight: livelock.clone(),
        },
        |s| format!("{:?}", s.registers()),
    );
    let dot_path = std::env::temp_dir().join("anonreg_livelock.dot");
    std::fs::write(&dot_path, dot).expect("write dot file");
    println!("state-graph excerpt written to {}\n", dot_path.display());

    // --- 2. The ring adversary. -------------------------------------------
    println!("== Theorem 3.4: 3 processes, 3 registers, lock-step ring ==");
    let outcome = ring_starvation(3, 3, 1_000).unwrap();
    println!("{outcome}");
    assert!(outcome.starved());
    println!("symmetry held for 1000 rounds; no critical-section entry.\n");

    // --- 3. The covering attack on consensus. ------------------------------
    println!("== Theorem 6.3: covering attack on under-provisioned consensus ==");
    for (n, r) in [(2usize, 1usize), (3, 2), (4, 3)] {
        let d = consensus_cover::disagreement(n, r).expect("attack succeeds below 2n-1");
        println!("{d}");
    }
    println!("\nwith the full 2n-1 registers the attack is impossible:");
    let err = consensus_cover::disagreement(3, 5).unwrap_err();
    println!("n=3, r=5: {err}");
}
