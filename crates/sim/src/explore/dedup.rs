//! Lock-free deduplication substrate for the parallel explorer.
//!
//! Three cooperating pieces, replacing the 64-way mutex-striped shard map:
//!
//! * [`FpTable`] — a fixed-capacity open-addressing fingerprint table.
//!   Each 16-byte slot is a pair of atomics: `fp` holds the low half of
//!   the state's 128-bit FNV-1a fingerprint (the probe key) and `meta`
//!   packs `(id + 1) << 32 | hi32` once the entry is published. Insertion
//!   claims a slot with a single compare-and-swap and publishes the id
//!   with a release store, exactly the Arc-style publication idiom: the
//!   writer releases after the payload (canonical code, spill location,
//!   LRU entry) is in place, and readers acquire through `meta` before
//!   touching any of it.
//! * [`Bloom`] — a blocked atomic bloom filter fed before any slot is
//!   claimed. Because bits are set *before* the claim CAS, a fingerprint
//!   that was ever interned always queries positive (never a false
//!   negative); the sequential engine uses a definite miss to skip its
//!   dedup-map lookup entirely, while the parallel engine treats the
//!   answer as a statistic only (a concurrent inserter's bits may land
//!   after our query but before our probe, so a "miss" must not skip
//!   slot verification there — see ORD-DEDUP-BLOOM-004).
//! * [`SpillStore`] — an append-only on-disk code store behind a sharded
//!   LRU in-memory tier, so canonical codes no longer pin the run's state
//!   count to RAM. Codes append to per-worker unlinked temp files (the
//!   kernel reclaims them when the run drops the handles); a flushed
//!   watermark per file tells readers which byte ranges `read_at` may
//!   touch. A candidate whose code is neither cached nor yet flushed is
//!   matched on its 128-bit fingerprint alone and counted as
//!   `dedup_unverified` (collision probability < 2⁻⁷⁰ at 10⁸ states).
//!
//! # Memory-ordering certificates
//!
//! Every non-SeqCst ordering below cites a note from
//! `anonreg_sanitizer::explorer_site_notes()`:
//!
//! * `ORD-DEDUP-CLAIM-001` — the claim CAS on `fp` is Relaxed/Relaxed:
//!   the claim transfers no payload, only slot ownership, which CAS
//!   atomicity alone guarantees; all payload synchronises through `meta`.
//! * `ORD-DEDUP-META-002` — `meta` is stored Release after the code is
//!   published and loaded Acquire before the code is read: the one true
//!   synchronisation edge of the table (Arc-Impl idiom).
//! * `ORD-DEDUP-SPIN-003` — a reader that observes a claimed slot with
//!   `meta == 0` spins with periodic abort checks; claimants always
//!   publish (the limit path publishes a sentinel), so the spin is
//!   bounded by the claim-to-publish window unless the run is tearing
//!   down.
//! * `ORD-DEDUP-BLOOM-004` — bloom words are Relaxed: under concurrency
//!   the filter is advisory (bits may trail a visible slot claim), so no
//!   correctness decision ever rests on a bloom miss alone.
//! * `ORD-DEDUP-FLUSH-006` — the spill watermark is stored Release after
//!   `write_all_at` returns and loaded Acquire before `read_at`, so a
//!   covered range is durably readable.

use std::collections::HashMap;
use std::collections::VecDeque;
use std::fs::File;
use std::io;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;

use anonreg_model::fingerprint::Fp128;

/// Substitute probe key for the (vanishingly rare) fingerprint whose low
/// half is zero — zero marks an empty slot.
const ZERO_KEY_SUBSTITUTE: u64 = 0x9e37_79b9_7f4a_7c15;

/// `meta` sentinel published by a claimant that hit the state limit, so
/// concurrent probers of the same slot stop spinning and abort too.
const LIMIT_META: u64 = u64::MAX;

/// Hard ceiling on table slots (2²⁸ × 16 B = 4 GiB). `max_states` beyond
/// half this many slots is capped by the table, keeping probe chains
/// short at ≤ 50% load.
const MAX_SLOTS: usize = 1 << 28;
const MIN_SLOTS: usize = 1 << 10;

struct Slot {
    /// Low fingerprint half; 0 = empty. Written once by the claim CAS.
    fp: AtomicU64,
    /// `(id + 1) << 32 | hi32` once published; 0 = claimed-unpublished;
    /// [`LIMIT_META`] if the claimant hit the state limit.
    meta: AtomicU64,
}

/// Outcome of a [`FpTable::intern`] probe.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum Probe {
    /// The code was new; this thread claimed the returned id.
    Fresh(u32),
    /// The code was already interned under the returned id.
    Known(u32),
    /// The state limit was reached (by this thread or a concurrent one).
    Limit,
    /// The abort callback fired while waiting on a concurrent publisher.
    Aborted,
}

/// Fixed-capacity lock-free open-addressing fingerprint table.
///
/// Capacity is sized from the explorer's `max_states` bound (which is
/// always finite — the default config caps at 10⁶) to twice the state
/// budget, rounded up to a power of two, so load never exceeds 50% and
/// linear probe chains stay short. Slots are never unclaimed: `fp` and a
/// published `meta` are immutable once written, which is what makes the
/// wait-free read path sound.
pub(crate) struct FpTable {
    slots: Box<[Slot]>,
    mask: usize,
    next_id: AtomicUsize,
    /// Effective state budget: `min(max_states, slots / 2)`.
    limit: usize,
}

impl FpTable {
    pub(crate) fn new(max_states: usize) -> Self {
        let want = max_states.saturating_mul(2).max(1);
        let slots_len = want
            .checked_next_power_of_two()
            .unwrap_or(MAX_SLOTS)
            .clamp(MIN_SLOTS, MAX_SLOTS);
        let mut slots = Vec::with_capacity(slots_len);
        slots.resize_with(slots_len, || Slot {
            fp: AtomicU64::new(0),
            meta: AtomicU64::new(0),
        });
        FpTable {
            slots: slots.into_boxed_slice(),
            mask: slots_len - 1,
            next_id: AtomicUsize::new(0),
            limit: max_states.min(slots_len / 2),
        }
    }

    /// The effective state budget (min of `max_states` and table capacity).
    pub(crate) fn limit(&self) -> usize {
        self.limit
    }

    /// States interned so far (clamped to the budget).
    pub(crate) fn len(&self) -> usize {
        self.next_id.load(Ordering::Relaxed).min(self.limit)
    }

    /// Finds or inserts the state fingerprinted by `fp`.
    ///
    /// `is_same(id)` decides whether candidate `id` (same 96 fingerprint
    /// bits) really is this state — authoritative code comparison, or a
    /// fingerprint-trusting fallback in spill mode. `publish(id)` runs
    /// after id allocation and **before** the entry becomes visible; it
    /// must put the canonical code wherever `is_same` will look
    /// (ORD-DEDUP-META-002 makes that publication visible to readers).
    /// `should_abort()` bounds the publication-wait spin
    /// (ORD-DEDUP-SPIN-003).
    pub(crate) fn intern(
        &self,
        fp: Fp128,
        mut is_same: impl FnMut(u32) -> bool,
        publish: impl FnOnce(u32),
        should_abort: impl Fn() -> bool,
    ) -> Probe {
        let key = if fp.lo == 0 {
            ZERO_KEY_SUBSTITUTE
        } else {
            fp.lo
        };
        let hi32 = fp.hi as u32;
        let mut idx = (key as usize) & self.mask;
        loop {
            let slot = &self.slots[idx];
            let cur = slot.fp.load(Ordering::Relaxed);
            if cur == key {
                // Candidate: spin out the claim-to-publish window, then
                // verify the high fingerprint half and (via `is_same`)
                // the code itself. ORD-DEDUP-SPIN-003 / ORD-DEDUP-META-002.
                let mut spins = 0u32;
                let meta = loop {
                    let meta = slot.meta.load(Ordering::Acquire);
                    if meta != 0 {
                        break meta;
                    }
                    spins = spins.wrapping_add(1);
                    if spins & 1023 == 0 && should_abort() {
                        return Probe::Aborted;
                    }
                    std::hint::spin_loop();
                };
                if meta == LIMIT_META {
                    return Probe::Limit;
                }
                if meta as u32 == hi32 {
                    let id = (meta >> 32) as u32 - 1;
                    if is_same(id) {
                        return Probe::Known(id);
                    }
                }
                // Different state sharing 64 (or even 96) fingerprint
                // bits: keep probing — it lives (or will live) in a
                // later slot of the same chain.
                idx = (idx + 1) & self.mask;
            } else if cur == 0 {
                // ORD-DEDUP-CLAIM-001: Relaxed claim; payload publication
                // is meta's job. On failure re-examine the same slot,
                // which is now permanently nonzero.
                if slot
                    .fp
                    .compare_exchange(0, key, Ordering::Relaxed, Ordering::Relaxed)
                    .is_ok()
                {
                    let id = self.next_id.fetch_add(1, Ordering::Relaxed);
                    if id >= self.limit {
                        // Claimants always publish, even on the limit
                        // path, so concurrent spinners can't hang.
                        slot.meta.store(LIMIT_META, Ordering::Release);
                        return Probe::Limit;
                    }
                    let id = id as u32;
                    publish(id);
                    let meta = (u64::from(id) + 1) << 32 | u64::from(hi32);
                    // ORD-DEDUP-META-002: Release-publish after payload.
                    slot.meta.store(meta, Ordering::Release);
                    return Probe::Fresh(id);
                }
            } else {
                idx = (idx + 1) & self.mask;
            }
        }
    }
}

/// Blocked atomic bloom filter over 128-bit fingerprints.
///
/// Sized at ~8 bits per expected state with two probes (one per
/// fingerprint half), for a false-positive rate around 5% at full load.
/// Inserts happen **before** the table claim, so anything ever interned
/// queries positive — the never-false-negative half of the contract is
/// unconditional; the false-positive rate is only a performance knob.
pub(crate) struct Bloom {
    words: Box<[AtomicU64]>,
    bit_mask: u64,
}

impl Bloom {
    pub(crate) fn new(expected_states: usize) -> Self {
        let bits = expected_states
            .saturating_mul(8)
            .checked_next_power_of_two()
            .unwrap_or(1 << 33)
            .clamp(1 << 12, 1 << 33);
        let words = (0..bits / 64).map(|_| AtomicU64::new(0)).collect();
        Bloom {
            words,
            bit_mask: bits as u64 - 1,
        }
    }

    fn bit_positions(&self, fp: Fp128) -> (u64, u64) {
        // Two probes drawn from distinct fingerprint halves (mixed so a
        // shared low half doesn't collapse both probes).
        (
            fp.hi & self.bit_mask,
            (fp.hi >> 32 ^ fp.lo.rotate_left(17)) & self.bit_mask,
        )
    }

    /// Marks `fp` present. ORD-DEDUP-BLOOM-004: Relaxed — the filter is
    /// advisory under concurrency.
    pub(crate) fn insert(&self, fp: Fp128) {
        let (a, b) = self.bit_positions(fp);
        self.words[(a >> 6) as usize].fetch_or(1 << (a & 63), Ordering::Relaxed);
        self.words[(b >> 6) as usize].fetch_or(1 << (b & 63), Ordering::Relaxed);
    }

    /// `true` if `fp` may have been inserted; `false` only if it
    /// definitely was not (by any insert that happens-before this query).
    pub(crate) fn query(&self, fp: Fp128) -> bool {
        let (a, b) = self.bit_positions(fp);
        self.words[(a >> 6) as usize].load(Ordering::Relaxed) & (1 << (a & 63)) != 0
            && self.words[(b >> 6) as usize].load(Ordering::Relaxed) & (1 << (b & 63)) != 0
    }
}

/// Packed spill location: bit 63 = published, bits 62..23 = byte offset,
/// bits 22..5 = length, bits 4..0 = worker index.
const LOC_PUBLISHED: u64 = 1 << 63;
const LOC_OFFSET_SHIFT: u32 = 23;
const LOC_LEN_SHIFT: u32 = 5;
const LOC_LEN_MASK: u64 = (1 << 18) - 1;
const LOC_WORKER_MASK: u64 = (1 << 5) - 1;

/// Spill writes are buffered per worker and flushed in chunks this big.
const FLUSH_CHUNK: usize = 1 << 20;

/// How many ways the in-memory LRU tier is sharded.
const LRU_SHARDS: usize = 16;

struct SpillWriter {
    buf: Vec<u8>,
    /// File offset where `buf[0]` will land.
    base: u64,
}

struct SpillFile {
    file: File,
    /// Bytes durably written and safe to `read_at`. ORD-DEDUP-FLUSH-006.
    flushed: AtomicU64,
    /// Owned by the worker the file belongs to; the mutex is for safety,
    /// not sharing (it is uncontended on the append path).
    writer: Mutex<SpillWriter>,
}

#[derive(Default)]
struct LruShard {
    codes: HashMap<u32, Box<[u8]>>,
    order: VecDeque<u32>,
    bytes: usize,
}

/// Running counters a [`SpillStore`] accumulates; drained into the probe
/// at the end of a run.
#[derive(Default)]
pub(crate) struct SpillCounters {
    pub(crate) bytes_spilled: AtomicU64,
    pub(crate) disk_reads: AtomicU64,
    pub(crate) unverified: AtomicU64,
}

/// Append-only on-disk canonical-code store with a sharded LRU front.
///
/// Each worker appends codes it interns to its own unlinked temp file
/// (deleted from the namespace at creation; the kernel reclaims the
/// blocks when the run drops the handle, even on panic). The packed
/// location of every code is published through `locs[id]` before the
/// dedup table's `meta` release, so any reader that found the id can
/// decode where its code lives.
pub(crate) struct SpillStore {
    files: Vec<SpillFile>,
    locs: Box<[AtomicU64]>,
    lru: Vec<Mutex<LruShard>>,
    lru_budget_per_shard: usize,
    pub(crate) counters: SpillCounters,
}

impl SpillStore {
    /// `workers` capped at 32 by the loc packing; the parallel engine
    /// clamps its thread count accordingly when spilling.
    pub(crate) fn new(
        workers: usize,
        max_states: usize,
        lru_budget_bytes: usize,
    ) -> io::Result<Self> {
        assert!(workers <= 32, "spill supports at most 32 workers");
        static STORE_SEQ: AtomicUsize = AtomicUsize::new(0);
        let seq = STORE_SEQ.fetch_add(1, Ordering::Relaxed);
        let dir = std::env::temp_dir();
        let mut files = Vec::with_capacity(workers);
        for w in 0..workers {
            let path = dir.join(format!("anonreg-spill-{}-{seq}-{w}", std::process::id()));
            let file = File::options()
                .read(true)
                .write(true)
                .create_new(true)
                .open(&path)?;
            // Unlink immediately: the data lives as long as the handle.
            let _ = std::fs::remove_file(&path);
            files.push(SpillFile {
                file,
                flushed: AtomicU64::new(0),
                writer: Mutex::new(SpillWriter {
                    buf: Vec::with_capacity(FLUSH_CHUNK),
                    base: 0,
                }),
            });
        }
        let locs = (0..max_states).map(|_| AtomicU64::new(0)).collect();
        let lru = (0..LRU_SHARDS)
            .map(|_| Mutex::new(LruShard::default()))
            .collect();
        Ok(SpillStore {
            files,
            locs,
            lru,
            lru_budget_per_shard: (lru_budget_bytes / LRU_SHARDS).max(1 << 16),
            counters: SpillCounters::default(),
        })
    }

    fn shard(&self, id: u32) -> &Mutex<LruShard> {
        &self.lru[id as usize % LRU_SHARDS]
    }

    fn cache(&self, id: u32, code: Box<[u8]>) {
        let mut shard = self.shard(id).lock().unwrap();
        if shard.codes.contains_key(&id) {
            return;
        }
        shard.bytes += code.len();
        shard.codes.insert(id, code);
        shard.order.push_back(id);
        while shard.bytes > self.lru_budget_per_shard {
            let Some(victim) = shard.order.pop_front() else {
                break;
            };
            if let Some(evicted) = shard.codes.remove(&victim) {
                shard.bytes -= evicted.len();
            }
        }
    }

    /// Appends `code` for freshly claimed `id` on behalf of `worker`.
    /// Must be called inside the table's `publish` callback so the
    /// location store is ordered before the meta release.
    pub(crate) fn publish(&self, worker: usize, id: u32, code: &[u8]) {
        debug_assert!(
            (code.len() as u64) <= LOC_LEN_MASK,
            "code too large to spill"
        );
        let offset;
        {
            let mut w = self.files[worker].writer.lock().unwrap();
            offset = w.base + w.buf.len() as u64;
            w.buf.extend_from_slice(code);
            if w.buf.len() >= FLUSH_CHUNK {
                self.flush_locked(worker, &mut w);
            }
        }
        self.counters
            .bytes_spilled
            .fetch_add(code.len() as u64, Ordering::Relaxed);
        self.cache(id, code.into());
        let loc = LOC_PUBLISHED
            | offset << LOC_OFFSET_SHIFT
            | (code.len() as u64) << LOC_LEN_SHIFT
            | worker as u64;
        // Ordered before the table's meta Release by ORD-DEDUP-META-002.
        self.locs[id as usize].store(loc, Ordering::Release);
    }

    fn flush_locked(&self, worker: usize, w: &mut SpillWriter) {
        if w.buf.is_empty() {
            return;
        }
        write_all_at(&self.files[worker].file, &w.buf, w.base)
            .expect("spill write failed: out of disk space?");
        w.base += w.buf.len() as u64;
        // ORD-DEDUP-FLUSH-006: watermark released only after the bytes hit
        // the file, so a covering read_at is well-defined.
        self.files[worker].flushed.store(w.base, Ordering::Release);
        w.buf.clear();
    }

    /// Compares candidate `id`'s code against `code`.
    ///
    /// Returns `Some(equal)` when the code was retrievable (LRU hit, or
    /// its spill range is below the flushed watermark), `None` when the
    /// bytes are still in another worker's unflushed buffer — the caller
    /// trusts the 128-bit fingerprint and bumps `unverified`.
    pub(crate) fn matches(&self, id: u32, code: &[u8]) -> Option<bool> {
        if let Some(cached) = self.shard(id).lock().unwrap().codes.get(&id) {
            return Some(&**cached == code);
        }
        let loc = self.locs[id as usize].load(Ordering::Acquire);
        debug_assert!(loc & LOC_PUBLISHED != 0, "matches() before publish()");
        let offset = (loc >> LOC_OFFSET_SHIFT) & ((1 << 40) - 1);
        let len = (loc >> LOC_LEN_SHIFT & LOC_LEN_MASK) as usize;
        let worker = (loc & LOC_WORKER_MASK) as usize;
        if len != code.len() {
            return Some(false);
        }
        if self.files[worker].flushed.load(Ordering::Acquire) < offset + len as u64 {
            return None;
        }
        let mut buf = vec![0u8; len];
        read_exact_at(&self.files[worker].file, &mut buf, offset)
            .expect("spill read failed beneath the flushed watermark");
        self.counters.disk_reads.fetch_add(1, Ordering::Relaxed);
        let equal = buf == code;
        self.cache(id, buf.into_boxed_slice());
        Some(equal)
    }

    /// Reads back the code for `id`, flushing the owning worker's buffer
    /// if needed. Only sound after all workers have quiesced (used by the
    /// round-trip tests, not the hot path).
    #[cfg(test)]
    pub(crate) fn read_back(&self, id: u32) -> Box<[u8]> {
        if let Some(cached) = self.shard(id).lock().unwrap().codes.get(&id) {
            return cached.clone();
        }
        let loc = self.locs[id as usize].load(Ordering::Acquire);
        assert!(loc & LOC_PUBLISHED != 0);
        let offset = (loc >> LOC_OFFSET_SHIFT) & ((1 << 40) - 1);
        let len = (loc >> LOC_LEN_SHIFT & LOC_LEN_MASK) as usize;
        let worker = (loc & LOC_WORKER_MASK) as usize;
        let mut w = self.files[worker].writer.lock().unwrap();
        self.flush_locked(worker, &mut w);
        drop(w);
        let mut buf = vec![0u8; len];
        read_exact_at(&self.files[worker].file, &mut buf, offset).unwrap();
        buf.into_boxed_slice()
    }
}

#[cfg(unix)]
fn write_all_at(file: &File, buf: &[u8], offset: u64) -> io::Result<()> {
    use std::os::unix::fs::FileExt;
    file.write_all_at(buf, offset)
}

#[cfg(unix)]
fn read_exact_at(file: &File, buf: &mut [u8], offset: u64) -> io::Result<()> {
    use std::os::unix::fs::FileExt;
    file.read_exact_at(buf, offset)
}

#[cfg(not(unix))]
fn write_all_at(file: &File, buf: &[u8], offset: u64) -> io::Result<()> {
    use std::io::{Seek, SeekFrom, Write};
    let mut f = file;
    f.seek(SeekFrom::Start(offset))?;
    f.write_all(buf)
}

#[cfg(not(unix))]
fn read_exact_at(file: &File, buf: &mut [u8], offset: u64) -> io::Result<()> {
    use std::io::{Read, Seek, SeekFrom};
    let mut f = file;
    f.seek(SeekFrom::Start(offset))?;
    f.read_exact(buf)
}

#[cfg(test)]
mod tests {
    use super::*;
    use anonreg_model::fingerprint::fp128;
    use std::sync::atomic::AtomicBool;
    use std::sync::Barrier;

    fn no_abort() -> bool {
        false
    }

    #[test]
    fn intern_assigns_dense_ids_and_finds_duplicates() {
        let table = FpTable::new(1000);
        let codes: Vec<Vec<u8>> = (0..100u32).map(|i| i.to_le_bytes().to_vec()).collect();
        let mut ids = Vec::new();
        for code in &codes {
            let fp = fp128(code);
            match table.intern(fp, |_| true, |id| ids.push(id), no_abort) {
                Probe::Fresh(id) => assert_eq!(id, *ids.last().unwrap()),
                other => panic!("expected fresh, got {other:?}"),
            }
        }
        let mut sorted = ids.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 100, "ids must be unique");
        assert_eq!(*sorted.last().unwrap(), 99, "ids must be dense");
        for (i, code) in codes.iter().enumerate() {
            let fp = fp128(code);
            match table.intern(fp, |id| id == ids[i], |_| panic!("no publish"), no_abort) {
                Probe::Known(id) => assert_eq!(id, ids[i]),
                other => panic!("expected known, got {other:?}"),
            }
        }
        assert_eq!(table.len(), 100);
    }

    #[test]
    fn forced_fingerprint_collisions_probe_to_distinct_slots() {
        // Same 128-bit fingerprint, genuinely different states: is_same
        // disambiguates and each gets its own id.
        let table = FpTable::new(100);
        let fp = Fp128 { lo: 42, hi: 7 };
        let a = match table.intern(fp, |_| false, |_| {}, no_abort) {
            Probe::Fresh(id) => id,
            other => panic!("{other:?}"),
        };
        let b = match table.intern(fp, |id| id == u32::MAX, |_| {}, no_abort) {
            Probe::Fresh(id) => id,
            other => panic!("{other:?}"),
        };
        assert_ne!(a, b);
        // Each is findable by its own identity.
        assert_eq!(
            table.intern(fp, |id| id == a, |_| {}, no_abort),
            Probe::Known(a)
        );
        assert_eq!(
            table.intern(fp, |id| id == b, |_| {}, no_abort),
            Probe::Known(b)
        );
    }

    #[test]
    fn zero_low_half_is_storable() {
        let table = FpTable::new(100);
        let fp = Fp128 { lo: 0, hi: 99 };
        assert_eq!(
            table.intern(fp, |_| true, |_| {}, no_abort),
            Probe::Fresh(0)
        );
        assert_eq!(
            table.intern(fp, |_| true, |_| {}, no_abort),
            Probe::Known(0)
        );
    }

    #[test]
    fn limit_is_enforced_and_published() {
        let table = FpTable::new(3);
        // MIN_SLOTS floors the table, but the limit still honours max_states.
        assert_eq!(table.limit(), 3);
        for i in 0..3u32 {
            let fp = fp128(&i.to_le_bytes());
            assert!(matches!(
                table.intern(fp, |_| true, |_| {}, no_abort),
                Probe::Fresh(_)
            ));
        }
        let fp = fp128(b"one too many");
        assert_eq!(table.intern(fp, |_| true, |_| {}, no_abort), Probe::Limit);
        // The sentinel is published: re-probing the same fingerprint
        // reports Limit instead of spinning.
        assert_eq!(table.intern(fp, |_| true, |_| {}, no_abort), Probe::Limit);
        assert_eq!(table.len(), 3);
    }

    /// Seeded multi-threaded hammer: every thread interns the same key
    /// universe in a seed-dependent order; exactly one Fresh claim per
    /// key may win, and all threads must agree on the id each key got.
    #[test]
    fn concurrent_interns_agree_on_ids() {
        const THREADS: usize = 4;
        const KEYS: usize = 256;
        for seed in 0u64..8 {
            let table = FpTable::new(KEYS * 2);
            let barrier = Barrier::new(THREADS);
            let fps: Vec<Fp128> = (0..KEYS)
                .map(|i| fp128(&(i as u64 ^ seed << 32).to_le_bytes()))
                .collect();
            let observed: Vec<Vec<u32>> = std::thread::scope(|s| {
                let handles: Vec<_> = (0..THREADS)
                    .map(|t| {
                        let table = &table;
                        let fps = &fps;
                        let barrier = &barrier;
                        s.spawn(move || {
                            barrier.wait();
                            let mut ids = vec![u32::MAX; KEYS];
                            // Seed-dependent visit order + stride makes
                            // threads collide on different keys each run.
                            let stride = (seed as usize * 2 + t * 4 + 1) | 1;
                            let mut k = (t * 31 + seed as usize * 17) % KEYS;
                            for step in 0..KEYS {
                                let i = k;
                                k = (k + stride) % KEYS;
                                let fp = fps[i];
                                let probe = table.intern(fp, |_| true, |_| {}, no_abort);
                                match probe {
                                    Probe::Fresh(id) | Probe::Known(id) => ids[i] = id,
                                    other => panic!("step {step}: {other:?}"),
                                }
                                if step % 16 == t {
                                    std::thread::yield_now();
                                }
                            }
                            ids
                        })
                    })
                    .collect();
                handles.into_iter().map(|h| h.join().unwrap()).collect()
            });
            // All threads agree per key; the id set is exactly 0..KEYS.
            let first = &observed[0];
            for other in &observed[1..] {
                assert_eq!(first, other, "seed {seed}: threads disagree on ids");
            }
            let mut all: Vec<u32> = first.clone();
            all.sort_unstable();
            let expect: Vec<u32> = (0..KEYS as u32).collect();
            assert_eq!(all, expect, "seed {seed}: ids not dense/unique");
            assert_eq!(table.len(), KEYS);
        }
    }

    /// Concurrent claimants racing over the limit must all observe
    /// Limit/Fresh consistently and never hang on an unpublished slot.
    #[test]
    fn concurrent_limit_race_terminates() {
        const THREADS: usize = 4;
        let table = FpTable::new(8);
        let aborted = AtomicBool::new(false);
        let fresh = AtomicUsize::new(0);
        std::thread::scope(|s| {
            for t in 0..THREADS {
                let table = &table;
                let aborted = &aborted;
                let fresh = &fresh;
                s.spawn(move || {
                    for i in 0..64u64 {
                        let fp = fp128(&(i * THREADS as u64 + t as u64).to_le_bytes());
                        match table.intern(fp, |_| true, |_| {}, || aborted.load(Ordering::Relaxed))
                        {
                            Probe::Fresh(_) => {
                                fresh.fetch_add(1, Ordering::Relaxed);
                            }
                            Probe::Known(_) => {}
                            Probe::Limit | Probe::Aborted => {
                                aborted.store(true, Ordering::Relaxed);
                                return;
                            }
                        }
                    }
                });
            }
        });
        assert!(
            aborted.load(Ordering::Relaxed),
            "limit should have been hit"
        );
        assert_eq!(
            fresh.load(Ordering::Relaxed),
            8,
            "exactly limit states claimed"
        );
    }

    #[test]
    fn bloom_never_false_negative() {
        let bloom = Bloom::new(10_000);
        let fps: Vec<Fp128> = (0..5_000u64).map(|i| fp128(&i.to_le_bytes())).collect();
        for fp in &fps {
            bloom.insert(*fp);
        }
        for (i, fp) in fps.iter().enumerate() {
            assert!(bloom.query(*fp), "false negative at {i}");
        }
        // False positives exist but must be rare at design load.
        let false_pos = (0..10_000u64)
            .map(|i| fp128(&(1 << 40 | i).to_le_bytes()))
            .filter(|fp| bloom.query(*fp))
            .count();
        assert!(
            false_pos < 1_500,
            "false positive rate too high: {false_pos}/10000"
        );
    }

    #[test]
    fn bloom_never_false_negative_across_threads() {
        let bloom = Bloom::new(4_096);
        std::thread::scope(|s| {
            for t in 0..4u64 {
                let bloom = &bloom;
                s.spawn(move || {
                    for i in 0..1_000u64 {
                        let fp = fp128(&(t << 32 | i).to_le_bytes());
                        bloom.insert(fp);
                        // Own inserts are immediately visible to self.
                        assert!(bloom.query(fp));
                    }
                });
            }
        });
        for t in 0..4u64 {
            for i in 0..1_000u64 {
                assert!(bloom.query(fp128(&(t << 32 | i).to_le_bytes())));
            }
        }
    }

    #[test]
    fn spill_round_trip_is_identity() {
        let spill = SpillStore::new(2, 10_000, 1 << 20).unwrap();
        // Codes long enough to straddle flush chunks, varied lengths.
        let codes: Vec<Box<[u8]>> = (0..2_000u32)
            .map(|i| {
                (0..(i % 97 + 3) as usize)
                    .map(|j| (i as usize * 131 + j * 7) as u8)
                    .collect()
            })
            .collect();
        for (i, code) in codes.iter().enumerate() {
            spill.publish(i % 2, i as u32, code);
        }
        for (i, code) in codes.iter().enumerate() {
            assert_eq!(
                spill.read_back(i as u32),
                *code,
                "round-trip mismatch at id {i}"
            );
        }
        assert_eq!(
            spill.counters.bytes_spilled.load(Ordering::Relaxed),
            codes.iter().map(|c| c.len() as u64).sum::<u64>()
        );
    }

    #[test]
    fn spill_matches_verifies_through_lru_and_disk() {
        // Tiny LRU budget forces disk verification for old ids.
        let spill = SpillStore::new(1, 10_000, 1).unwrap();
        // 4000 × 600-byte codes ≈ 2.4 MiB: well past the 1 MiB flush
        // chunk, so most ids are covered by the flushed watermark while
        // the tail stays in the write buffer (unverifiable by design).
        let codes: Vec<Box<[u8]>> = (0..4_000u32)
            .map(|i| {
                (0..600)
                    .map(|j| (i as usize).wrapping_mul(131).wrapping_add(j) as u8)
                    .collect()
            })
            .collect();
        for (i, code) in codes.iter().enumerate() {
            spill.publish(0, i as u32, code);
        }
        let mut unverified = 0u32;
        for (i, code) in codes.iter().enumerate() {
            match spill.matches(i as u32, code) {
                Some(equal) => assert!(equal, "own code must match at {i}"),
                None => unverified += 1, // tail still in the write buffer
            }
            assert_ne!(
                spill.matches(i as u32, b"definitely not that code"),
                Some(true),
                "wrong code must not match at {i}"
            );
        }
        assert!(unverified < 4_000, "nothing was verifiable");
        assert!(
            spill.counters.disk_reads.load(Ordering::Relaxed) > 0,
            "LRU budget of 1 byte must force disk reads"
        );
    }
}
