//! Theorem 6.2, constructively: deadlock-free mutual exclusion is
//! impossible with unnamed registers when the number of processes is not
//! known in advance.
//!
//! The adversary runs the victim alone into its critical section, has `m`
//! fresh processes cover every register the victim wrote, and releases the
//! block write. The shared memory is now **indistinguishable** from a world
//! in which the victim never existed — yet the victim sits in its critical
//! section. Whatever the algorithm now guarantees the coverers produces a
//! contradiction:
//!
//! * if some coverer can enter (as deadlock-freedom would demand in the
//!   victim-free world), mutual exclusion is violated — for Figure 1 this
//!   actually happens at `m = 1`;
//! * if no coverer ever enters while the victim stays put, deadlock-freedom
//!   is violated in the victim-free world — for Figure 1 with `m ≥ 2` the
//!   coverers starve forever.
//!
//! Either way, no register count `m` survives an unknown process count:
//! experiment E7 tabulates the observed failure mode per `m`.

use std::fmt;

use anonreg::mutex::{AnonMutex, MutexEvent, Section};
use anonreg::Pid;
use anonreg_sim::sched;

use crate::covering::CoveringAttack;

/// How Figure 1 fails under the unknown-process-count attack with `m`
/// registers.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum MutexFailure {
    /// A coverer entered its critical section while the victim was still in
    /// its own — a mutual exclusion violation.
    MutualExclusionViolated {
        /// The coverer slot (1-based within the combined simulation).
        intruder: usize,
    },
    /// No coverer entered within the (generous) budget even though the
    /// memory is indistinguishable from a fresh start — so in the
    /// victim-free world the algorithm starves its users: a
    /// deadlock-freedom violation.
    Starvation {
        /// Scheduling steps the coverers were given.
        steps_given: usize,
    },
}

impl fmt::Display for MutexFailure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MutexFailure::MutualExclusionViolated { intruder } => {
                write!(f, "coverer {intruder} entered the CS alongside the victim")
            }
            MutexFailure::Starvation { steps_given } => write!(
                f,
                "no coverer entered within {steps_given} steps of an indistinguishable fresh world"
            ),
        }
    }
}

/// Result of the unknown-process-count attack against Figure 1 with `m`
/// registers.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct UnknownNAttack {
    /// Number of registers.
    pub m: usize,
    /// Registers the victim wrote before entering its critical section
    /// (always all `m` of them, for Figure 1 run solo).
    pub write_set: Vec<usize>,
    /// Whether memory after the block write matched the victim-free world.
    pub indistinguishable: bool,
    /// The failure mode that materialized.
    pub failure: MutexFailure,
}

impl fmt::Display for UnknownNAttack {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "m = {}: {} (covered {:?}, indistinguishable = {})",
            self.m, self.failure, self.write_set, self.indistinguishable
        )
    }
}

/// Mounts the Theorem 6.2 attack against Figure 1 with `m` registers: one
/// victim plus `m` coverers (more processes than the two the algorithm was
/// designed for — the essence of "the number of processes is not a priori
/// known").
///
/// `budget` bounds both the victim's solo run and the coverers' post-block
/// scheduling (lock-step, the fairest possible schedule).
///
/// # Panics
///
/// Panics if `m == 0` or if the covering machinery fails — for Figure 1 the
/// attack always assembles, so failure indicates an implementation bug.
#[must_use]
pub fn unknown_n_attack(m: usize, budget: usize) -> UnknownNAttack {
    let victim = AnonMutex::new(Pid::new(1).unwrap(), m).expect("m >= 1");
    let coverers: Vec<AnonMutex> = (0..m)
        .map(|i| AnonMutex::new(Pid::new(i as u64 + 2).unwrap(), m).expect("m >= 1"))
        .collect();

    let mut attack = CoveringAttack::build(
        victim,
        coverers,
        |mach: &AnonMutex| mach.section() == Section::Critical,
        budget,
    )
    .expect("the covering attack always assembles against Figure 1");
    let write_set = attack.write_set.clone();
    let indistinguishable = attack.memory_indistinguishable();
    assert_eq!(
        attack.sim.machine(0).section(),
        Section::Critical,
        "victim must be parked in its critical section"
    );

    // Step 4: schedule only the coverers (slots 1..=m), lock-step, and
    // watch for an Enter event.
    let coverer_count = attack.sim.process_count() - 1;
    let mut next = 0usize;
    let steps_given = budget;
    sched::run_with(
        &mut attack.sim,
        |sim| {
            // Stop as soon as any coverer entered.
            let someone_in =
                (1..=coverer_count).any(|p| sim.machine(p).section() == Section::Critical);
            if someone_in {
                return None;
            }
            let proc = 1 + (next % coverer_count);
            next += 1;
            Some(proc)
        },
        steps_given,
    )
    .expect("coverer slots are valid");

    let intruder =
        (1..=coverer_count).find(|&p| attack.sim.machine(p).section() == Section::Critical);
    let failure = match intruder {
        Some(intruder) => {
            // The victim never moved: both are in their critical sections.
            debug_assert_eq!(attack.sim.machine(0).section(), Section::Critical);
            debug_assert!(
                attack
                    .sim
                    .trace()
                    .events()
                    .filter(|(_, _, e)| **e == MutexEvent::Enter)
                    .count()
                    >= 2
            );
            MutexFailure::MutualExclusionViolated { intruder }
        }
        None => MutexFailure::Starvation { steps_given },
    };

    UnknownNAttack {
        m,
        write_set,
        indistinguishable,
        failure,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn m1_yields_a_mutual_exclusion_violation() {
        let outcome = unknown_n_attack(1, 10_000);
        assert!(outcome.indistinguishable);
        assert_eq!(outcome.write_set, vec![0]);
        assert!(matches!(
            outcome.failure,
            MutexFailure::MutualExclusionViolated { .. }
        ));
    }

    #[test]
    fn larger_m_yields_starvation() {
        for m in [2, 3, 4, 5] {
            let outcome = unknown_n_attack(m, 20_000);
            assert!(outcome.indistinguishable, "m={m}");
            assert_eq!(outcome.write_set.len(), m, "victim writes all registers");
            assert!(
                matches!(outcome.failure, MutexFailure::Starvation { .. }),
                "m={m}: {:?}",
                outcome.failure
            );
        }
    }

    #[test]
    fn every_m_fails_somehow() {
        for m in 1..=6 {
            let outcome = unknown_n_attack(m, 20_000);
            assert!(!outcome.to_string().is_empty());
            // The attack always demonstrates one of the two failures.
            match outcome.failure {
                MutexFailure::MutualExclusionViolated { .. } | MutexFailure::Starvation { .. } => {}
            }
        }
    }
}
