//! E9 benchmark: real threads over real atomics — memory-anonymous
//! algorithms vs named-register baselines.
//!
//! Expected shape (matching the paper's model comparison): Peterson beats
//! the anonymous mutex by a small constant factor; lock-based consensus and
//! splitter renaming beat their anonymous counterparts increasingly as the
//! thread count grows, because the anonymous algorithms pay `O(n)` extra
//! registers and scans for the missing agreement.

use anonreg_bench::timing::{criterion_group, criterion_main, BenchmarkId, Criterion};

use anonreg_bench::e9_threads;

fn bench_mutex(c: &mut Criterion) {
    let mut group = c.benchmark_group("e9_mutex_2threads");
    group.sample_size(10);
    for m in [3usize, 5, 9] {
        group.bench_with_input(BenchmarkId::new("anonymous_fig1", m), &m, |b, &m| {
            b.iter(|| e9_threads::anonymous_mutex(m, 1_000));
        });
    }
    group.bench_function("peterson_named", |b| {
        b.iter(|| e9_threads::peterson_mutex(1_000));
    });
    group.finish();
}

fn bench_consensus(c: &mut Criterion) {
    let mut group = c.benchmark_group("e9_consensus");
    group.sample_size(10);
    for n in [2usize, 4] {
        group.bench_with_input(BenchmarkId::new("anonymous_fig2", n), &n, |b, &n| {
            b.iter(|| e9_threads::anonymous_consensus(n, 5));
        });
        group.bench_with_input(BenchmarkId::new("lock_named", n), &n, |b, &n| {
            b.iter(|| e9_threads::lock_consensus(n, 5));
        });
    }
    group.finish();
}

fn bench_renaming(c: &mut Criterion) {
    let mut group = c.benchmark_group("e9_renaming");
    group.sample_size(10);
    for n in [2usize, 4] {
        group.bench_with_input(BenchmarkId::new("anonymous_fig3", n), &n, |b, &n| {
            b.iter(|| e9_threads::anonymous_renaming(n, 5));
        });
        group.bench_with_input(BenchmarkId::new("splitter_named", n), &n, |b, &n| {
            b.iter(|| e9_threads::splitter_renaming(n, 5));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_mutex, bench_consensus, bench_renaming);
criterion_main!(benches);
