//! The certificate container: writer, streaming replay verifier, errors.
//!
//! # On-disk layout (version 2, all integers little-endian)
//!
//! ```text
//! header   96 bytes  magic "ANRGCERT" | version u32 | verdict_count u32
//!                    | structural lo,hi | state_count | edge_count
//!                    | state_set_fp lo,hi | edge_fp lo,hi
//!                    | verdict_fp lo,hi
//! states   per state, in strictly ascending code order:
//!                    varint(shared prefix with previous code)
//!                    varint(suffix length) + suffix bytes
//! edges    per edge, sorted by (src, tgt, proc, crash):
//!                    varint(src - previous src) + varint(tgt)
//!                    + varint(proc) + u8 crash
//! verdicts per verdict: varint(name length) + name utf-8 + u8 bool
//! ```
//!
//! State codes are the explorer's canonical encodings, so sorting them
//! gives every state a *canonical index* (its rank) that is identical no
//! matter which engine — or which run — produced the certificate; edges
//! are recorded against those ranks, which is what makes certificates
//! from the race-ordered parallel engine byte-comparable to sequential
//! ones. The state and edge fingerprints are wrapping sums of per-item
//! [`fp128`] values, so they are order-independent and recomputable in
//! one streaming pass; the verdict fingerprint additionally folds each
//! record's index in, because verdict *order* is meaningful (it is the
//! registration order the explorer reports back).

use std::fmt;
use std::fs::File;
use std::io::{self, BufReader, BufWriter, Read, Seek, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

use anonreg_model::fingerprint::{fp128, Fp128};

/// File magic: an anonreg reachability certificate.
const MAGIC: [u8; 8] = *b"ANRGCERT";
/// Container version this crate reads and writes.
const VERSION: u32 = 2;
/// Fixed header length in bytes.
const HEADER_LEN: usize = 96;
/// Sanity cap on a single state code's length (codes are flat register +
/// slot encodings, a few hundred bytes at the extreme; a corrupt length
/// prefix must not drive an allocation by gigabytes).
const MAX_CODE_LEN: u64 = 1 << 24;
/// Sanity cap on a verdict name's length.
const MAX_NAME_LEN: u64 = 1 << 12;
/// Sanity cap on the header's verdict count — same rule as
/// [`MAX_CODE_LEN`]: a corrupt count must not drive an allocation by
/// gigabytes (explorations register a handful of verdicts, not 2³²).
const MAX_VERDICTS: u32 = 1 << 16;

/// Why a certificate could not be written or replayed.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CertError {
    /// The underlying file operation failed.
    Io(String),
    /// The bytes are not a well-formed certificate (bad magic, torn
    /// section, non-ascending codes, out-of-range edge index, mismatched
    /// section fingerprint…). The message names the first violation.
    Corrupt(String),
    /// The certificate is well-formed but pins a different verification
    /// problem: its structural key does not match the current machines,
    /// limits or symmetry mode. Re-run a cold exploration (or
    /// `check verify-cache --invalidate`) to refresh it.
    Stale {
        /// The structural key of the problem being verified now.
        expected: Fp128,
        /// The structural key embedded in the certificate.
        found: Fp128,
    },
    /// The certificate was written by an incompatible container version.
    Version {
        /// The version field found in the header.
        found: u32,
    },
    /// The certificate is intact and pins the right structural key, but
    /// the verdict set it records is not the one registered on the
    /// replaying explorer. The structural key already covers the
    /// registered verdict names, so reaching this means a key collision
    /// or a tampered store — either way the recorded verdicts cannot be
    /// trusted to answer the current question.
    VerdictMismatch {
        /// Verdict names the certificate records, in recorded order.
        recorded: Vec<String>,
        /// Verdict names registered on the replaying explorer, in
        /// registration order.
        registered: Vec<String>,
    },
}

/// Renders a 128-bit key the way [`crate::store::CacheStore`] names
/// certificate files: high half first, 32 hex digits.
fn key_hex(fp: Fp128) -> String {
    format!("{:016x}{:016x}", fp.hi, fp.lo)
}

impl fmt::Display for CertError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CertError::Io(msg) => write!(f, "certificate io error: {msg}"),
            CertError::Corrupt(msg) => write!(f, "corrupt certificate: {msg}"),
            CertError::Stale { expected, found } => write!(
                f,
                "stale certificate: it pins structural key {} but the current \
                 machines/config hash to {}; the verified semantics changed, so \
                 the cached verdicts cannot be trusted — re-run a cold \
                 exploration to refresh it",
                key_hex(*found),
                key_hex(*expected),
            ),
            CertError::Version { found } => write!(
                f,
                "unsupported certificate version {found} (this build reads version {VERSION})"
            ),
            CertError::VerdictMismatch {
                recorded,
                registered,
            } => write!(
                f,
                "verdict-set mismatch: the certificate records [{}] but the replaying \
                 explorer registers [{}]; re-run a cold exploration to refresh it",
                recorded.join(", "),
                registered.join(", "),
            ),
        }
    }
}

impl std::error::Error for CertError {}

impl From<io::Error> for CertError {
    fn from(e: io::Error) -> Self {
        CertError::Io(e.to_string())
    }
}

/// What a successful [`replay`] re-validated.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ReplaySummary {
    /// Distinct states in the certified reachable set.
    pub states: u64,
    /// Transitions in the certified edge multiset.
    pub edges: u64,
    /// The named verdicts the original exploration established, in
    /// recorded order.
    pub verdicts: Vec<(String, bool)>,
}

/// LEB128-encodes `value` into `out`.
fn write_varint(out: &mut impl Write, mut value: u64) -> io::Result<()> {
    loop {
        let byte = (value & 0x7f) as u8;
        value >>= 7;
        if value == 0 {
            return out.write_all(&[byte]);
        }
        out.write_all(&[byte | 0x80])?;
    }
}

/// Decodes one LEB128 value, rejecting encodings longer than 10 bytes.
/// A file that ends mid-varint is damage, not an IO failure, so EOF maps
/// to [`CertError::Corrupt`] like every other truncation; callers inside
/// section decoding add the section/index context via [`in_section`].
fn read_varint(input: &mut impl Read) -> Result<u64, CertError> {
    let mut value = 0u64;
    let mut shift = 0u32;
    loop {
        let mut byte = [0u8; 1];
        input.read_exact(&mut byte).map_err(|e| {
            if e.kind() == io::ErrorKind::UnexpectedEof {
                CertError::Corrupt("truncated varint".into())
            } else {
                CertError::Io(e.to_string())
            }
        })?;
        if shift >= 63 && byte[0] > 1 {
            return Err(CertError::Corrupt("varint overflows 64 bits".into()));
        }
        value |= u64::from(byte[0] & 0x7f) << shift;
        if byte[0] & 0x80 == 0 {
            return Ok(value);
        }
        shift += 7;
        if shift > 63 {
            return Err(CertError::Corrupt("varint longer than 10 bytes".into()));
        }
    }
}

/// Prefixes a corruption report with its section/index context, so a
/// truncation inside `read_varint` names where the damage was found just
/// like the neighbouring `read_exact` sites. Other variants pass through.
fn in_section(e: CertError, context: impl FnOnce() -> String) -> CertError {
    match e {
        CertError::Corrupt(msg) => CertError::Corrupt(format!("{}: {msg}", context())),
        other => other,
    }
}

/// Order-independent section fingerprint: a wrapping sum of per-item
/// 128-bit FNV fingerprints, halves accumulated separately.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
struct FpSum {
    lo: u64,
    hi: u64,
}

impl FpSum {
    fn absorb(&mut self, fp: Fp128) {
        self.lo = self.lo.wrapping_add(fp.lo);
        self.hi = self.hi.wrapping_add(fp.hi);
    }

    fn as_fp(self) -> Fp128 {
        Fp128 {
            lo: self.lo,
            hi: self.hi,
        }
    }
}

/// The 25-byte edge record hashed into the edge-multiset fingerprint.
fn edge_fp(src: u64, tgt: u64, proc: u64, crash: bool) -> Fp128 {
    let mut buf = [0u8; 25];
    buf[0..8].copy_from_slice(&src.to_le_bytes());
    buf[8..16].copy_from_slice(&tgt.to_le_bytes());
    buf[16..24].copy_from_slice(&proc.to_le_bytes());
    buf[24] = u8::from(crash);
    fp128(&buf)
}

/// The fingerprint of one verdict record. The state and edge sections
/// are fingerprinted order-independently, but verdict *order* carries
/// meaning (it is the registration order the explorer reports back), so
/// the record's index is folded in — reordering, renaming or flipping a
/// verdict all change the section fingerprint.
fn verdict_fp(index: u64, name: &str, value: bool) -> Fp128 {
    let mut buf = Vec::with_capacity(17 + name.len());
    buf.extend_from_slice(&index.to_le_bytes());
    buf.extend_from_slice(&(name.len() as u64).to_le_bytes());
    buf.extend_from_slice(name.as_bytes());
    buf.push(u8::from(value));
    fp128(&buf)
}

/// Length of the shared prefix of two byte strings.
fn common_prefix(a: &[u8], b: &[u8]) -> usize {
    a.iter().zip(b).take_while(|(x, y)| x == y).count()
}

/// Distinguishes concurrently written temp files in one process.
static TMP_SEQ: AtomicU64 = AtomicU64::new(0);

/// Streams one certificate to disk. Codes first (strictly ascending),
/// then edges (sorted by source index), then [`CertWriter::finish`] with
/// the verdicts; the header is back-patched and the file atomically
/// renamed into place, so readers never observe a half-written
/// certificate.
#[derive(Debug)]
pub struct CertWriter {
    /// `Some` until `finish` consumes it (the `Drop` impl forbids a
    /// plain move-out).
    out: Option<BufWriter<File>>,
    tmp: PathBuf,
    path: PathBuf,
    structural: Fp128,
    prev_code: Vec<u8>,
    state_count: u64,
    state_fp: FpSum,
    edges_started: bool,
    prev_src: u64,
    edge_count: u64,
    edge_fp: FpSum,
}

impl CertWriter {
    /// Opens a writer that will become the certificate at `path` (its
    /// parent directory must exist) for the problem keyed `structural`.
    pub fn create(path: &Path, structural: Fp128) -> Result<Self, CertError> {
        let seq = TMP_SEQ.fetch_add(1, Ordering::Relaxed);
        let mut name = path
            .file_name()
            .ok_or_else(|| CertError::Io("certificate path has no file name".into()))?
            .to_os_string();
        name.push(format!(".tmp.{}.{seq}", std::process::id()));
        let tmp = path.with_file_name(name);
        let mut out = BufWriter::new(File::create(&tmp)?);
        // Placeholder header; back-patched by `finish`.
        out.write_all(&[0u8; HEADER_LEN])?;
        Ok(CertWriter {
            out: Some(out),
            tmp,
            path: path.to_path_buf(),
            structural,
            prev_code: Vec::new(),
            state_count: 0,
            state_fp: FpSum::default(),
            edges_started: false,
            prev_src: 0,
            edge_count: 0,
            edge_fp: FpSum::default(),
        })
    }

    /// Appends the next canonical state code. Codes must arrive in
    /// strictly ascending lexicographic order (their rank is the state's
    /// canonical index).
    pub fn push_code(&mut self, code: &[u8]) -> Result<(), CertError> {
        if self.edges_started {
            return Err(CertError::Corrupt(
                "writer misuse: state code pushed after the edge section began".into(),
            ));
        }
        if self.state_count > 0 && code <= self.prev_code.as_slice() {
            return Err(CertError::Corrupt(
                "writer misuse: state codes must be strictly ascending".into(),
            ));
        }
        let prefix = common_prefix(&self.prev_code, code);
        let out = self.out.as_mut().expect("writer already finished");
        write_varint(out, prefix as u64)?;
        write_varint(out, (code.len() - prefix) as u64)?;
        out.write_all(&code[prefix..])?;
        self.state_fp.absorb(fp128(code));
        self.prev_code.clear();
        self.prev_code.extend_from_slice(code);
        self.state_count += 1;
        Ok(())
    }

    /// Appends one edge over canonical state indices. Edges must arrive
    /// with non-decreasing `src`.
    pub fn push_edge(
        &mut self,
        src: u64,
        tgt: u64,
        proc: u64,
        crash: bool,
    ) -> Result<(), CertError> {
        if self.edges_started && src < self.prev_src {
            return Err(CertError::Corrupt(
                "writer misuse: edges must be sorted by source index".into(),
            ));
        }
        if src >= self.state_count || tgt >= self.state_count {
            return Err(CertError::Corrupt(format!(
                "writer misuse: edge ({src} -> {tgt}) references a state beyond the \
                 {} recorded",
                self.state_count
            )));
        }
        let delta = if self.edges_started {
            src - self.prev_src
        } else {
            src
        };
        let out = self.out.as_mut().expect("writer already finished");
        write_varint(out, delta)?;
        write_varint(out, tgt)?;
        write_varint(out, proc)?;
        out.write_all(&[u8::from(crash)])?;
        self.edge_fp.absorb(edge_fp(src, tgt, proc, crash));
        self.edges_started = true;
        self.prev_src = src;
        self.edge_count += 1;
        Ok(())
    }

    /// Writes the verdict section, back-patches the header and renames
    /// the finished certificate into place.
    pub fn finish(mut self, verdicts: &[(String, bool)]) -> Result<(), CertError> {
        let out = self.out.as_mut().expect("writer already finished");
        let mut verdicts_fp = FpSum::default();
        for (index, (name, value)) in verdicts.iter().enumerate() {
            write_varint(out, name.len() as u64)?;
            out.write_all(name.as_bytes())?;
            out.write_all(&[u8::from(*value)])?;
            verdicts_fp.absorb(verdict_fp(index as u64, name, *value));
        }
        let mut header = [0u8; HEADER_LEN];
        header[0..8].copy_from_slice(&MAGIC);
        header[8..12].copy_from_slice(&VERSION.to_le_bytes());
        header[12..16].copy_from_slice(
            &u32::try_from(verdicts.len())
                .map_err(|_| CertError::Corrupt("more than u32::MAX verdicts".into()))?
                .to_le_bytes(),
        );
        header[16..24].copy_from_slice(&self.structural.lo.to_le_bytes());
        header[24..32].copy_from_slice(&self.structural.hi.to_le_bytes());
        header[32..40].copy_from_slice(&self.state_count.to_le_bytes());
        header[40..48].copy_from_slice(&self.edge_count.to_le_bytes());
        header[48..56].copy_from_slice(&self.state_fp.lo.to_le_bytes());
        header[56..64].copy_from_slice(&self.state_fp.hi.to_le_bytes());
        header[64..72].copy_from_slice(&self.edge_fp.lo.to_le_bytes());
        header[72..80].copy_from_slice(&self.edge_fp.hi.to_le_bytes());
        header[80..88].copy_from_slice(&verdicts_fp.lo.to_le_bytes());
        header[88..96].copy_from_slice(&verdicts_fp.hi.to_le_bytes());

        let mut file = self
            .out
            .take()
            .expect("writer already finished")
            .into_inner()
            .map_err(|e| CertError::Io(e.to_string()))?;
        file.rewind()?;
        file.write_all(&header)?;
        file.sync_all()?;
        drop(file);
        std::fs::rename(&self.tmp, &self.path)?;
        Ok(())
    }
}

impl Drop for CertWriter {
    fn drop(&mut self) {
        // An unfinished writer leaves no debris behind: `finish` renames
        // the temp file away before `self` drops, making this a no-op on
        // the success path.
        let _ = std::fs::remove_file(&self.tmp);
    }
}

fn read_u32(buf: &[u8]) -> u32 {
    u32::from_le_bytes(buf.try_into().expect("4-byte slice"))
}

fn read_u64(buf: &[u8]) -> u64 {
    u64::from_le_bytes(buf.try_into().expect("8-byte slice"))
}

/// Re-validates the certificate at `path` against the problem keyed
/// `expected` whose initial configuration encodes to `initial_code`.
///
/// One buffered sequential pass, bounded memory (the previous code and
/// the current one — never the whole set): the structural key must
/// match, the code list must be strictly ascending (so its entries are
/// distinct and their ranks well-defined), `initial_code` must be a
/// member, every edge endpoint must land inside the recorded set (the
/// closure check: no recorded successor escapes), and all three section
/// fingerprints — states, edges, verdicts — must re-derive bit-exactly
/// from the streamed items.
///
/// # Errors
///
/// [`CertError::Stale`] when the structural key differs — the machines,
/// limits or symmetry mode changed since emission; [`CertError::Corrupt`]
/// for any structural violation; [`CertError::Version`] /
/// [`CertError::Io`] as named.
pub fn replay(
    path: &Path,
    expected: Fp128,
    initial_code: &[u8],
) -> Result<ReplaySummary, CertError> {
    let mut input = BufReader::new(File::open(path)?);
    let mut header = [0u8; HEADER_LEN];
    input
        .read_exact(&mut header)
        .map_err(|_| CertError::Corrupt("file shorter than the fixed certificate header".into()))?;
    if header[0..8] != MAGIC {
        return Err(CertError::Corrupt(
            "bad magic: not an anonreg reachability certificate".into(),
        ));
    }
    let version = read_u32(&header[8..12]);
    if version != VERSION {
        return Err(CertError::Version { found: version });
    }
    let verdict_count = read_u32(&header[12..16]);
    if verdict_count > MAX_VERDICTS {
        return Err(CertError::Corrupt(format!(
            "verdict count {verdict_count} exceeds the {MAX_VERDICTS} sanity cap"
        )));
    }
    let found = Fp128 {
        lo: read_u64(&header[16..24]),
        hi: read_u64(&header[24..32]),
    };
    if found != expected {
        return Err(CertError::Stale { expected, found });
    }
    let state_count = read_u64(&header[32..40]);
    let edge_count = read_u64(&header[40..48]);
    let state_fp_want = Fp128 {
        lo: read_u64(&header[48..56]),
        hi: read_u64(&header[56..64]),
    };
    let edge_fp_want = Fp128 {
        lo: read_u64(&header[64..72]),
        hi: read_u64(&header[72..80]),
    };
    let verdict_fp_want = Fp128 {
        lo: read_u64(&header[80..88]),
        hi: read_u64(&header[88..96]),
    };
    if state_count == 0 {
        return Err(CertError::Corrupt("certificate records zero states".into()));
    }

    // States: strictly ascending delta-decoded codes, membership check
    // for the initial configuration, running set fingerprint.
    let mut prev: Vec<u8> = Vec::new();
    let mut current: Vec<u8> = Vec::new();
    let mut state_fp_got = FpSum::default();
    let mut initial_found = false;
    for index in 0..state_count {
        let ctx = |e| in_section(e, || format!("state {index}"));
        let prefix = read_varint(&mut input).map_err(ctx)?;
        let suffix = read_varint(&mut input).map_err(ctx)?;
        if suffix > MAX_CODE_LEN {
            return Err(CertError::Corrupt(format!(
                "state {index}: suffix length {suffix} exceeds the {MAX_CODE_LEN}-byte cap"
            )));
        }
        if prefix as usize > prev.len() {
            return Err(CertError::Corrupt(format!(
                "state {index}: shared prefix {prefix} exceeds the previous code's length"
            )));
        }
        current.clear();
        current.extend_from_slice(&prev[..prefix as usize]);
        let start = current.len();
        current.resize(start + suffix as usize, 0);
        input
            .read_exact(&mut current[start..])
            .map_err(|_| CertError::Corrupt(format!("state {index}: truncated code suffix")))?;
        if index > 0 && current <= prev {
            return Err(CertError::Corrupt(format!(
                "state {index}: codes are not strictly ascending"
            )));
        }
        state_fp_got.absorb(fp128(&current));
        initial_found |= current == initial_code;
        std::mem::swap(&mut prev, &mut current);
    }
    if state_fp_got.as_fp() != state_fp_want {
        return Err(CertError::Corrupt(
            "state-set fingerprint does not re-derive from the recorded codes".into(),
        ));
    }
    if !initial_found {
        return Err(CertError::Corrupt(
            "the initial configuration is not a member of the recorded state set".into(),
        ));
    }

    // Edges: closure check (both endpoints inside the set), source
    // monotonicity, running multiset fingerprint.
    let mut edge_fp_got = FpSum::default();
    let mut src = 0u64;
    let mut started = false;
    for index in 0..edge_count {
        let ctx = |e| in_section(e, || format!("edge {index}"));
        let delta = read_varint(&mut input).map_err(ctx)?;
        src = if started {
            src.checked_add(delta).ok_or_else(|| {
                CertError::Corrupt(format!("edge {index}: source index overflows"))
            })?
        } else {
            delta
        };
        started = true;
        let tgt = read_varint(&mut input).map_err(ctx)?;
        let proc = read_varint(&mut input).map_err(ctx)?;
        let mut crash = [0u8; 1];
        input
            .read_exact(&mut crash)
            .map_err(|_| CertError::Corrupt(format!("edge {index}: truncated record")))?;
        if crash[0] > 1 {
            return Err(CertError::Corrupt(format!(
                "edge {index}: crash flag must be 0 or 1"
            )));
        }
        if src >= state_count || tgt >= state_count {
            return Err(CertError::Corrupt(format!(
                "edge {index} ({src} -> {tgt}): successor escapes the recorded set of \
                 {state_count} states (closure violation)"
            )));
        }
        edge_fp_got.absorb(edge_fp(src, tgt, proc, crash[0] == 1));
    }
    if edge_fp_got.as_fp() != edge_fp_want {
        return Err(CertError::Corrupt(
            "edge-multiset fingerprint does not re-derive from the recorded edges".into(),
        ));
    }

    // Verdicts (count already capped at MAX_VERDICTS, so the
    // pre-allocation is bounded), then a hard end-of-file.
    let mut verdict_fp_got = FpSum::default();
    let mut verdicts = Vec::with_capacity(verdict_count as usize);
    for index in 0..verdict_count {
        let len =
            read_varint(&mut input).map_err(|e| in_section(e, || format!("verdict {index}")))?;
        if len > MAX_NAME_LEN {
            return Err(CertError::Corrupt(format!(
                "verdict {index}: name length {len} exceeds the {MAX_NAME_LEN}-byte cap"
            )));
        }
        let mut name = vec![0u8; len as usize];
        input
            .read_exact(&mut name)
            .map_err(|_| CertError::Corrupt(format!("verdict {index}: truncated name")))?;
        let name = String::from_utf8(name)
            .map_err(|_| CertError::Corrupt(format!("verdict {index}: name is not utf-8")))?;
        let mut value = [0u8; 1];
        input
            .read_exact(&mut value)
            .map_err(|_| CertError::Corrupt(format!("verdict {index}: truncated value")))?;
        if value[0] > 1 {
            return Err(CertError::Corrupt(format!(
                "verdict {index}: value must be 0 or 1"
            )));
        }
        verdict_fp_got.absorb(verdict_fp(u64::from(index), &name, value[0] == 1));
        verdicts.push((name, value[0] == 1));
    }
    if verdict_fp_got.as_fp() != verdict_fp_want {
        return Err(CertError::Corrupt(
            "verdict-section fingerprint does not re-derive from the recorded verdicts".into(),
        ));
    }
    let mut trailing = [0u8; 1];
    if input.read(&mut trailing)? != 0 {
        return Err(CertError::Corrupt(
            "trailing bytes after the verdict section".into(),
        ));
    }

    Ok(ReplaySummary {
        states: state_count,
        edges: edge_count,
        verdicts,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_path(name: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("anonreg-cache-test-{}-{name}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir.join("t.cert")
    }

    fn key(n: u64) -> Fp128 {
        Fp128 { lo: n, hi: !n }
    }

    /// A tiny three-state certificate used across the tests.
    fn write_sample(path: &Path, structural: Fp128) {
        let mut w = CertWriter::create(path, structural).unwrap();
        w.push_code(b"alpha").unwrap();
        w.push_code(b"alphb").unwrap();
        w.push_code(b"beta").unwrap();
        w.push_edge(0, 1, 0, false).unwrap();
        w.push_edge(0, 2, 1, false).unwrap();
        w.push_edge(1, 2, 1, true).unwrap();
        w.finish(&[("safety".into(), true), ("livelock".into(), false)])
            .unwrap();
    }

    #[test]
    fn round_trips() {
        let path = tmp_path("roundtrip");
        write_sample(&path, key(7));
        let summary = replay(&path, key(7), b"alpha").unwrap();
        assert_eq!(summary.states, 3);
        assert_eq!(summary.edges, 3);
        assert_eq!(
            summary.verdicts,
            vec![
                ("safety".to_string(), true),
                ("livelock".to_string(), false)
            ]
        );
    }

    #[test]
    fn initial_membership_is_checked_anywhere_in_the_set() {
        let path = tmp_path("membership");
        write_sample(&path, key(7));
        // A middle member works; a non-member is refused.
        assert!(replay(&path, key(7), b"alphb").is_ok());
        let err = replay(&path, key(7), b"gamma").unwrap_err();
        assert!(matches!(err, CertError::Corrupt(_)), "{err}");
        assert!(err.to_string().contains("initial configuration"));
    }

    #[test]
    fn stale_structural_key_is_refused_with_both_keys_named() {
        let path = tmp_path("stale");
        write_sample(&path, key(7));
        let err = replay(&path, key(8), b"alpha").unwrap_err();
        assert_eq!(
            err,
            CertError::Stale {
                expected: key(8),
                found: key(7)
            }
        );
        let msg = err.to_string();
        assert!(msg.contains("re-run a cold exploration"), "{msg}");
    }

    #[test]
    fn truncated_and_garbage_files_are_corrupt_not_panics() {
        let path = tmp_path("garbage");
        std::fs::write(&path, b"short").unwrap();
        assert!(matches!(
            replay(&path, key(1), b"x").unwrap_err(),
            CertError::Corrupt(_)
        ));
        std::fs::write(&path, vec![0u8; HEADER_LEN + 8]).unwrap();
        assert!(matches!(
            replay(&path, key(1), b"x").unwrap_err(),
            CertError::Corrupt(_)
        ));
    }

    #[test]
    fn flipped_code_byte_breaks_the_set_fingerprint() {
        let path = tmp_path("bitflip");
        write_sample(&path, key(7));
        let mut bytes = std::fs::read(&path).unwrap();
        // Flip a byte inside the states section (just past the header).
        let idx = HEADER_LEN + 3;
        bytes[idx] ^= 0x20;
        std::fs::write(&path, bytes).unwrap();
        let err = replay(&path, key(7), b"alpha").unwrap_err();
        assert!(matches!(err, CertError::Corrupt(_)), "{err}");
    }

    #[test]
    fn huge_verdict_count_is_refused_before_allocating() {
        let path = tmp_path("verdictcount");
        write_sample(&path, key(7));
        let mut bytes = std::fs::read(&path).unwrap();
        // Patch the header's verdict_count to u32::MAX: replay must
        // report corruption, not attempt a multi-gigabyte allocation.
        bytes[12..16].copy_from_slice(&u32::MAX.to_le_bytes());
        std::fs::write(&path, bytes).unwrap();
        let err = replay(&path, key(7), b"alpha").unwrap_err();
        assert!(matches!(err, CertError::Corrupt(_)), "{err}");
        assert!(err.to_string().contains("sanity cap"), "{err}");
    }

    #[test]
    fn truncation_mid_varint_is_corrupt_with_section_context() {
        let path = tmp_path("midvarint");
        write_sample(&path, key(7));
        let bytes = std::fs::read(&path).unwrap();
        // Cut inside the states section: the first record's prefix
        // varint survives, its suffix-length varint does not.
        std::fs::write(&path, &bytes[..HEADER_LEN + 1]).unwrap();
        let err = replay(&path, key(7), b"alpha").unwrap_err();
        assert!(
            matches!(err, CertError::Corrupt(_)),
            "truncation is damage, not io: {err}"
        );
        let msg = err.to_string();
        assert!(
            msg.contains("state 0") && msg.contains("truncated varint"),
            "{msg}"
        );
    }

    #[test]
    fn flipped_verdict_value_breaks_the_verdict_fingerprint() {
        let path = tmp_path("verdictflip");
        write_sample(&path, key(7));
        let mut bytes = std::fs::read(&path).unwrap();
        // The last byte is the "livelock" verdict's value; names and
        // values are pinned by the verdict fingerprint, so a flip must
        // not replay as a clean (wrong) answer.
        let last = bytes.len() - 1;
        bytes[last] ^= 1;
        std::fs::write(&path, bytes).unwrap();
        let err = replay(&path, key(7), b"alpha").unwrap_err();
        assert!(matches!(err, CertError::Corrupt(_)), "{err}");
        assert!(
            err.to_string().contains("verdict-section fingerprint"),
            "{err}"
        );
    }

    #[test]
    fn unknown_version_is_reported() {
        let path = tmp_path("version");
        write_sample(&path, key(7));
        let mut bytes = std::fs::read(&path).unwrap();
        bytes[8] = 9;
        std::fs::write(&path, bytes).unwrap();
        assert_eq!(
            replay(&path, key(7), b"alpha").unwrap_err(),
            CertError::Version { found: 9 }
        );
    }

    #[test]
    fn writer_enforces_code_order_and_edge_closure() {
        let path = tmp_path("misuse");
        let mut w = CertWriter::create(&path, key(1)).unwrap();
        w.push_code(b"bb").unwrap();
        assert!(w.push_code(b"aa").is_err(), "descending code accepted");
        assert!(
            w.push_edge(0, 5, 0, false).is_err(),
            "dangling edge accepted"
        );
        // The unfinished temp file is cleaned up on drop.
        drop(w);
        assert!(!path.exists());
    }

    #[test]
    fn varints_round_trip_across_widths() {
        for value in [0u64, 1, 127, 128, 300, u64::from(u32::MAX), u64::MAX] {
            let mut buf = Vec::new();
            write_varint(&mut buf, value).unwrap();
            let got = read_varint(&mut io::Cursor::new(&buf)).unwrap();
            assert_eq!(got, value);
        }
    }
}
