//! Algorithms as deterministic single-operation state machines.

use std::fmt::Debug;
use std::hash::Hash;

use crate::{Pid, RegisterValue};

/// One step of a [`Machine`]: the next action the process wants to perform.
///
/// Register indices in `Read` and `Write` are **process-local**: the machine
/// speaks in its own private numbering `0..m`, and the driver (simulator or
/// thread runtime) translates through the process's [`View`](crate::View).
/// Machines never see physical register indices — that is the whole point of
/// the memory-anonymous model.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub enum Step<V, E> {
    /// Atomically read the register with the given *local* index. The driver
    /// answers by calling [`Machine::resume`] with `Some(value)`.
    Read(usize),
    /// Atomically write `V` to the register with the given *local* index.
    Write(usize, V),
    /// Announce an observable milestone (critical-section entry, a decision,
    /// a newly acquired name, …). Events have no shared-memory effect; they
    /// exist so specification checkers can observe the run.
    Event(E),
    /// The process has terminated and will take no further steps.
    Halt,
}

impl<V, E> Step<V, E> {
    /// Returns `true` for [`Step::Read`] and [`Step::Write`] — the steps that
    /// count as atomic shared-memory operations in the paper's proofs.
    #[must_use]
    pub fn is_memory_op(&self) -> bool {
        matches!(self, Step::Read(_) | Step::Write(_, _))
    }
}

/// A process's algorithm, expressed as a deterministic state machine that
/// performs **one atomic register operation at a time**.
///
/// This is the execution model the paper's proofs assume: a run is a sequence
/// of atomic reads and writes, interleaved by an adversarial scheduler. By
/// expressing algorithms this way, the *same* implementation is
///
/// * exhaustively model-checked by `anonreg-sim` (every interleaving, plus
///   adversaries that pause a process *covering* a register — the key move in
///   the paper's impossibility proofs), and
/// * run at full speed on real threads by `anonreg-runtime`.
///
/// # Protocol
///
/// The driver repeatedly calls [`resume`](Machine::resume):
///
/// 1. The first call, and every call after a `Write` or `Event` step, passes
///    `None`.
/// 2. After a `Read(j)` step, the driver performs the read and passes
///    `Some(value)`.
/// 3. After `Halt`, the driver stops; calling `resume` again is a contract
///    violation and implementations are encouraged to panic.
///
/// # Determinism
///
/// `resume` must be a pure function of the machine's state and the read
/// value. Model checking and trace replay rely on this. Where the paper says
/// "an arbitrary index such that …" (e.g. Figure 2 line 6), implementations
/// must fix a deterministic choice, such as the smallest qualifying local
/// index.
///
/// # Symmetry
///
/// The paper studies *symmetric* algorithms: all processes run identical code
/// and may compare identifiers only for equality. Machines respect this by
/// construction when they only ever compare [`Pid`]s (which do not implement
/// `Ord`) and never branch on the numeric content of an identifier.
pub trait Machine: Clone + Debug + Send {
    /// The type of value this algorithm stores in the shared registers.
    type Value: RegisterValue;
    /// Observable milestones this algorithm announces.
    type Event: Clone + Eq + Hash + Debug + Send;

    /// The identifier of the process running this machine.
    fn pid(&self) -> Pid;

    /// The number of shared registers, `m`, this machine expects. Local
    /// indices in [`Step::Read`]/[`Step::Write`] are in `0..m`.
    fn register_count(&self) -> usize;

    /// Advances the machine to its next step. See the trait documentation
    /// for the calling protocol.
    ///
    /// # Panics
    ///
    /// Implementations may panic if the protocol is violated — `Some` passed
    /// when no read was pending, `None` passed when one was, or a call after
    /// `Halt`.
    fn resume(&mut self, read: Option<Self::Value>) -> Step<Self::Value, Self::Event>;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn step_is_memory_op() {
        let read: Step<u64, ()> = Step::Read(0);
        let write: Step<u64, ()> = Step::Write(1, 9);
        let event: Step<u64, ()> = Step::Event(());
        let halt: Step<u64, ()> = Step::Halt;
        assert!(read.is_memory_op());
        assert!(write.is_memory_op());
        assert!(!event.is_memory_op());
        assert!(!halt.is_memory_op());
    }

    /// A tiny machine used to exercise the protocol from the trait docs.
    #[derive(Clone, Debug, PartialEq, Eq, Hash)]
    struct Echo {
        pid: Pid,
        phase: u8,
    }

    impl Machine for Echo {
        type Value = u64;
        type Event = u64;

        fn pid(&self) -> Pid {
            self.pid
        }

        fn register_count(&self) -> usize {
            1
        }

        fn resume(&mut self, read: Option<u64>) -> Step<u64, u64> {
            match self.phase {
                0 => {
                    assert!(read.is_none());
                    self.phase = 1;
                    Step::Read(0)
                }
                1 => {
                    let value = read.expect("read result expected after Step::Read");
                    self.phase = 2;
                    Step::Event(value)
                }
                _ => Step::Halt,
            }
        }
    }

    #[test]
    fn machine_protocol_round_trip() {
        let mut m = Echo {
            pid: Pid::new(1).unwrap(),
            phase: 0,
        };
        assert_eq!(m.resume(None), Step::Read(0));
        assert_eq!(m.resume(Some(41)), Step::Event(41));
        assert_eq!(m.resume(None), Step::Halt);
    }
}
