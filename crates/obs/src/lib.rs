//! Zero-dependency observability for memory-anonymous substrates.
//!
//! The paper's claims are claims about *runs*: how many registers a solo
//! run touches (§6's covering sets), how long a process runs without
//! interference before its algorithm must make progress (obstruction
//! freedom, §2/§4), how the state space grows with processes and
//! registers. This crate makes those quantities observable on every
//! execution substrate in the workspace without changing what the
//! substrates compute:
//!
//! * [`Probe`] — the sink trait. Substrates (`anonreg-runtime`'s driver,
//!   `anonreg-sim`'s explorer, `anonreg-lower`'s covering builder) are
//!   generic over a probe and emit counters, gauges, histograms, spans and
//!   events into it. [`NoopProbe`] has [`Probe::ENABLED`]` == false` and
//!   compiles every hook away — the timing check in `crates/bench`
//!   holds the default path to the uninstrumented cost. [`MemProbe`]
//!   aggregates in memory and yields a deterministic
//!   [`MetricsSnapshot`].
//! * [`json`] — a hand-rolled JSON value type, writer and strict parser
//!   (the workspace builds offline; no serde), plus the
//!   [`JsonEncode`]/[`JsonDecode`] codec traits register values and
//!   events implement for lossless trace round-trips.
//! * [`schema`] — the versioned JSONL wire format every tool emits, with
//!   a validator CI runs against real output. Schema v1 is the snapshot
//!   format; schema v2 adds the live-stream record types
//!   (`delta`/`progress`/`profile`/`snapshot`).
//! * [`export`] — the live streaming exporter: a background thread
//!   diffs successive [`MemProbe`] snapshots into schema-v2 delta
//!   records while a run is in flight, plus the [`export::DeltaReplayer`]
//!   that reconstructs the final snapshot from the deltas.
//! * [`profile`] — the wall-clock profiler: per-worker
//!   [`profile::PhaseTimer`] phase stacks collected by a
//!   [`profile::Profiler`], exported as schema-v2 `profile` records and
//!   collapsed-stack flamegraph text.
//! * [`trace_io`] — `Trace` ⇄ JSONL with a replay schedule, so any
//!   recorded run is a shareable, re-checkable artifact.
//! * [`heatmap`] — an ASCII per-register contention heatmap for quick
//!   terminal triage.
//!
//! # Example
//!
//! ```
//! use anonreg_obs::{MemProbe, Metric, Probe};
//!
//! let probe = MemProbe::new();
//! probe.counter(Metric::RegWrite, 3, 1); // physical register 3 written
//! let snapshot = probe.into_snapshot();
//! assert_eq!(snapshot.counter_total(Metric::RegWrite), 1);
//! let jsonl = anonreg_obs::emit::snapshot_to_jsonl(&snapshot);
//! anonreg_obs::schema::validate_jsonl(&jsonl).unwrap();
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod emit;
pub mod export;
pub mod heatmap;
pub mod json;
pub mod probe;
pub mod profile;
pub mod schema;
pub mod trace_io;

pub use export::{
    delta_record, replay_stream, stream_status, DeltaReplayer, Progress, ProgressTracker,
    ReplaySnapshot, StreamExporter, StreamOptions, StreamStatus, StreamSummary,
};
pub use heatmap::Heatmap;
pub use json::{Json, JsonDecode, JsonEncode, JsonError};
pub use probe::{
    EventRecord, GaugeStat, HistogramStat, MemProbe, Metric, MetricsSnapshot, NoopProbe, Probe,
    Span, SpanRecord,
};
pub use profile::{Phase, PhaseTimer, Profiler, WorkerProfile};
pub use schema::{SchemaError, SCHEMA_VERSION, STREAM_SCHEMA_VERSION};
pub use trace_io::{register_stats, schedule_of, trace_from_jsonl, trace_to_jsonl, TraceMeta};
