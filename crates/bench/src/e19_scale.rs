//! E19 — model checking at scale: stats-mode exploration with ample-set
//! partial-order reduction and disk spill.
//!
//! E16 measures *symmetry* reduction on graphs small enough to
//! materialise; this experiment pushes past that, running the
//! fingerprint-table engine in stats-only mode (no graph, no stored
//! states unless spilled) over workloads an order of magnitude larger
//! — the fully loaded `m = 3` ring (the E16 bottleneck), the Figure 1
//! ring mutex at `m = 4`, and the Figure 2 consensus at `n = 4`. Each
//! workload runs under a named configuration:
//!
//! * `off` — no reduction, the exact-count parity anchor (only used on
//!   the quick workload, where the full space is still cheap);
//! * `por` — ample-set POR, in memory;
//! * `por_spill` — POR with interned state codes spilled to disk behind
//!   the LRU tier, the configuration the 10-minute scale budget is
//!   measured against.
//!
//! The headline metric is **throughput** (distinct states interned per
//! second, unit `ops_per_s`, higher-better under `check bench-diff`);
//! `states`/`edges` on `por*` rows compare lower-better there because
//! the names declare the reduction (see [`crate::benchdiff`]).

use std::time::{Duration, Instant};

use anonreg_sim::prelude::*;

use crate::benchjson::BenchMetric;
use crate::e16_symmetry::{mutex_ring_sim, symmetric_consensus_sim, Workload};
use crate::live::{self, Instruments};
use crate::table::Table;

/// One named explorer configuration of a scale run.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RunConfig {
    /// Ample-set partial-order reduction.
    pub por: bool,
    /// Disk spill of interned state codes.
    pub spill: bool,
}

impl RunConfig {
    /// Metric-name segment: `off`, `por`, or `por_spill`. The `por`
    /// segment is what flips `check bench-diff` into lower-better
    /// comparison for the counts.
    #[must_use]
    pub fn slug(&self) -> &'static str {
        match (self.por, self.spill) {
            (false, false) => "off",
            (false, true) => "spill",
            (true, false) => "por",
            (true, true) => "por_spill",
        }
    }
}

/// One stats-mode exploration of a workload under one configuration.
#[derive(Clone, Debug)]
pub struct Row {
    /// Which workload was explored.
    pub workload: Workload,
    /// The reduction/spill configuration.
    pub config: RunConfig,
    /// Explorer worker threads (`1` = the sequential engine).
    pub threads: usize,
    /// The exploration counters.
    pub stats: ExploreStats,
    /// Wall time of the exploration.
    pub elapsed: Duration,
}

impl Row {
    /// Distinct states interned per wall-clock second.
    #[must_use]
    pub fn throughput(&self) -> f64 {
        self.stats.states as f64 / self.elapsed.as_secs_f64().max(1e-9)
    }
}

/// The full-scale workload trio the 10-minute budget covers.
///
/// The headline space is the fully loaded `m = 3`, `ℓ = 3` ring — the
/// E16 bottleneck workload (multi-million states), here explored
/// without materializing the graph. The `m = 4` ring runs with
/// `ℓ = 2`: `ℓ` must divide `m` for the ring views, and the fully
/// loaded `ℓ = 4` ring exceeds **100M states after POR** (measured:
/// `LimitExceeded` at 24 minutes on one core), so it busts any
/// single-core budget. Likewise the `n = 4` consensus runs with one
/// register per process: at `r = 2` the space passes 40M states with
/// the frontier still growing at ten minutes. Those two measured
/// walls are the honest scale frontier — the engine streams >100M
/// distinct states through the fingerprint table without falling
/// over; what runs to completion here is everything on this side of
/// that wall.
#[must_use]
pub fn full_scale() -> [Workload; 3] {
    [
        Workload::MutexRing { m: 3, procs: 3 },
        Workload::MutexRing { m: 4, procs: 2 },
        Workload::SymmetricConsensus { n: 4, registers: 1 },
    ]
}

/// The CI-sized workload: the E16 consensus space, small enough to run
/// all three configurations (including the exact-count `off` anchor).
#[must_use]
pub fn quick() -> [Workload; 1] {
    [Workload::SymmetricConsensus { n: 3, registers: 2 }]
}

/// The configurations run per workload. The `off` anchor only runs when
/// `with_baseline` (the quick flow); at full scale the unreduced space
/// is the thing we are avoiding.
#[must_use]
pub fn configs(with_baseline: bool) -> Vec<RunConfig> {
    let mut out = Vec::new();
    if with_baseline {
        out.push(RunConfig {
            por: false,
            spill: false,
        });
    }
    out.push(RunConfig {
        por: true,
        spill: false,
    });
    out.push(RunConfig {
        por: true,
        spill: true,
    });
    out
}

fn run_one(
    workload: Workload,
    config: RunConfig,
    threads: usize,
    max_states: usize,
    ins: &Instruments<'_>,
) -> Result<ExploreStats, ExploreError> {
    match workload {
        Workload::MutexRing { m, procs } => live::explore_stats(
            mutex_ring_sim(m, procs),
            config.por,
            config.spill,
            threads,
            max_states,
            ins,
        ),
        Workload::SymmetricConsensus { n, registers } => live::explore_stats(
            symmetric_consensus_sim(n, registers),
            config.por,
            config.spill,
            threads,
            max_states,
            ins,
        ),
    }
}

/// Runs every `(workload, config)` pair in stats mode and asserts the
/// POR soundness invariants the scale flow can still afford to check:
/// within a workload, every configuration with the same `por` setting
/// interns the same state and edge counts (spill must be
/// count-invisible), and a `por` row never exceeds an `off` row.
///
/// # Errors
///
/// Propagates the first exploration error.
///
/// # Panics
///
/// Panics if spill changes the counts or POR grows them — either is an
/// engine soundness bug, not a measurement.
pub fn rows_with(
    workloads: &[Workload],
    with_baseline: bool,
    threads: usize,
    max_states: usize,
    ins: &Instruments<'_>,
) -> Result<Vec<Row>, ExploreError> {
    let mut rows = Vec::new();
    for &workload in workloads {
        let mut per_workload: Vec<Row> = Vec::new();
        for config in configs(with_baseline) {
            let start = Instant::now();
            let stats = run_one(workload, config, threads, max_states, ins)?;
            let elapsed = start.elapsed();
            for prior in &per_workload {
                if prior.config.por == config.por {
                    assert_eq!(
                        (prior.stats.states, prior.stats.edges),
                        (stats.states, stats.edges),
                        "{}: spill changed the counts",
                        workload.slug()
                    );
                } else if !prior.config.por && config.por {
                    assert!(
                        stats.states <= prior.stats.states && stats.edges <= prior.stats.edges,
                        "{}: POR grew the state space",
                        workload.slug()
                    );
                }
            }
            per_workload.push(Row {
                workload,
                config,
                threads,
                stats,
                elapsed,
            });
        }
        rows.extend(per_workload);
    }
    Ok(rows)
}

/// [`rows_with`] without instrumentation.
///
/// # Errors
///
/// Propagates the first exploration error.
pub fn rows(
    workloads: &[Workload],
    with_baseline: bool,
    threads: usize,
    max_states: usize,
) -> Result<Vec<Row>, ExploreError> {
    rows_with(
        workloads,
        with_baseline,
        threads,
        max_states,
        &Instruments::none(),
    )
}

/// Renders the human table.
#[must_use]
pub fn render(rows: &[Row]) -> String {
    let mut t = Table::new(vec![
        "workload",
        "config",
        "threads",
        "states",
        "edges",
        "dedup hits",
        "max depth",
        "time",
        "states/s",
    ]);
    for row in rows {
        t.row(vec![
            row.workload.slug(),
            row.config.slug().to_string(),
            row.threads.to_string(),
            row.stats.states.to_string(),
            row.stats.edges.to_string(),
            row.stats.dedup.to_string(),
            row.stats.max_depth.to_string(),
            format!("{:.1} ms", row.elapsed.as_secs_f64() * 1e3),
            format!("{:.0}", row.throughput()),
        ]);
    }
    t.render()
}

/// Emits the schema-v1 bench metrics:
/// `{workload}_{config}_t{threads}_{states|edges|time|throughput}`.
#[must_use]
pub fn metrics(rows: &[Row]) -> Vec<BenchMetric> {
    let mut out = Vec::new();
    for row in rows {
        let family = match row.workload {
            Workload::MutexRing { .. } => "mutex",
            Workload::SymmetricConsensus { .. } => "consensus",
        };
        let base = format!(
            "{}_{}_t{}",
            row.workload.slug(),
            row.config.slug(),
            row.threads
        );
        out.push(BenchMetric::new(
            "E19",
            family,
            format!("{base}_states"),
            row.stats.states as f64,
            "states",
        ));
        out.push(BenchMetric::new(
            "E19",
            family,
            format!("{base}_edges"),
            row.stats.edges as f64,
            "edges",
        ));
        out.push(BenchMetric::new(
            "E19",
            family,
            format!("{base}_time"),
            row.elapsed.as_secs_f64() * 1e3,
            "ms",
        ));
        out.push(BenchMetric::new(
            "E19",
            family,
            format!("{base}_throughput"),
            row.throughput(),
            "ops_per_s",
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use anonreg_obs::schema::validate_jsonl;

    /// Diagnostic probe, not part of the suite: sizes the m=4 ring
    /// mutex under every engine/POR combination.
    #[test]
    #[ignore = "manual sizing probe"]
    fn probe_m4l2_counts() {
        let graph = Explorer::new(mutex_ring_sim(4, 2))
            .max_states(50_000_000)
            .run()
            .unwrap();
        println!(
            "graph seq off: {} states {} edges",
            graph.state_count(),
            graph.edge_count()
        );
        for (por, threads) in [(false, 1), (false, 4), (true, 1), (true, 4)] {
            let stats = live::explore_stats(
                mutex_ring_sim(4, 2),
                por,
                false,
                threads,
                50_000_000,
                &Instruments::none(),
            )
            .unwrap();
            println!(
                "stats por={por} t={threads}: {} states {} edges",
                stats.states, stats.edges
            );
        }
    }

    /// Diagnostic probe, not part of the suite: sizes the full-scale
    /// workload candidates to completion in stats mode under POR.
    #[test]
    #[ignore = "manual sizing probe"]
    fn probe_full_scale_counts() {
        use std::time::Instant;
        for (label, por) in [("por", true), ("off", false)] {
            let t1 = Instant::now();
            let stats = live::explore_stats(
                mutex_ring_sim(3, 3),
                por,
                false,
                4,
                100_000_000,
                &Instruments::none(),
            )
            .unwrap();
            println!(
                "mutex m3 l3 {label} t4: {} states {} edges in {:?}",
                stats.states,
                stats.edges,
                t1.elapsed()
            );
        }
    }

    /// A tiny consensus space exercises all three configurations end to
    /// end and holds the cross-configuration count invariants.
    #[test]
    fn quick_rows_hold_invariants_and_emit_valid_metrics() {
        let workloads = [Workload::SymmetricConsensus { n: 2, registers: 2 }];
        let rows = rows(&workloads, true, 2, 100_000).unwrap();
        assert_eq!(rows.len(), 3);
        let off = &rows[0];
        let por = &rows[1];
        let por_spill = &rows[2];
        assert_eq!(off.config.slug(), "off");
        assert!(por.stats.states <= off.stats.states);
        assert_eq!(por.stats.states, por_spill.stats.states);
        assert_eq!(por.stats.edges, por_spill.stats.edges);
        assert!(rows.iter().all(|r| r.throughput() > 0.0));

        let jsonl = crate::benchjson::to_jsonl(&metrics(&rows));
        assert_eq!(validate_jsonl(&jsonl).unwrap(), 12);
        assert!(jsonl.contains("consensus_n2_r2_por_spill_t2_throughput"));
    }
}
