//! Structural hashing: stable 128-bit keys for proof-carrying caches.
//!
//! A reachability certificate (see the `anonreg-cache` crate) is only
//! valid for the exact verification problem it was emitted from: the
//! machines' transition structure, the register contents and process
//! views of the initial configuration, the exploration limits, the
//! failure model and the symmetry mode all determine the reachable set
//! and every verdict drawn from it. [`StructuralHasher`] folds those
//! inputs into one [`Fp128`] key that changes **iff the verified
//! semantics can change**: it reuses the deterministic FNV-1a 128
//! infrastructure from [`fingerprint`](crate::fingerprint) over
//! byte-stable [`ByteSink`] encodings, so two processes (or two
//! checkouts) hashing the same problem always agree.
//!
//! # Framing
//!
//! Each component is hashed into its *own* sink first and then framed
//! into the accumulating stream as
//! `(label length, label bytes, value length, value bytes)`. The length
//! prefixes make the stream prefix-free: no pair of distinct component
//! sequences can serialize to the same bytes, so a hash equality cannot
//! be manufactured by sliding bytes between adjacent components (the
//! classic `("ab", "c")` vs `("a", "bc")` ambiguity).

use std::hash::{Hash, Hasher};

use crate::canon::ByteSink;
use crate::fingerprint::{fp128, Fp128};

/// Accumulates labelled components into a stable 128-bit structural key.
///
/// ```
/// use anonreg_model::structural::StructuralHasher;
///
/// let a = StructuralHasher::new("demo-v1")
///     .component("max_states", &1_000_000u64)
///     .component("crashes", &false)
///     .finish();
/// let b = StructuralHasher::new("demo-v1")
///     .component("max_states", &1_000_000u64)
///     .component("crashes", &true)
///     .finish();
/// assert_ne!(a, b);
/// ```
#[derive(Debug)]
#[must_use = "a StructuralHasher does nothing until `.finish()` is called"]
pub struct StructuralHasher {
    sink: ByteSink,
}

impl StructuralHasher {
    /// Starts a hash under `domain`, a version-carrying namespace string
    /// (e.g. `"anonreg-cert-v1"`). Two hashes under different domains
    /// never collide by construction, so bumping the domain retires
    /// every previously issued key at once.
    pub fn new(domain: &str) -> Self {
        let mut sink = ByteSink::new();
        sink.write_usize(domain.len());
        sink.write(domain.as_bytes());
        StructuralHasher { sink }
    }

    /// Folds in a hashable component under `label`. The value is hashed
    /// through its [`Hash`] impl into a fresh byte-stable sink, then
    /// framed with both the label's and the encoding's length.
    pub fn component<T: Hash + ?Sized>(mut self, label: &str, value: &T) -> Self {
        let mut encoded = ByteSink::new();
        value.hash(&mut encoded);
        self.frame(label, encoded.bytes());
        self
    }

    /// Folds in a pre-encoded byte component under `label` — for inputs
    /// that already have a canonical byte form (state codes, view
    /// permutations) where re-hashing through `Hash` would be indirect.
    pub fn raw(mut self, label: &str, bytes: &[u8]) -> Self {
        self.frame(label, bytes);
        self
    }

    fn frame(&mut self, label: &str, value: &[u8]) {
        self.sink.write_usize(label.len());
        self.sink.write(label.as_bytes());
        self.sink.write_usize(value.len());
        self.sink.write(value);
    }

    /// The accumulated 128-bit structural key.
    #[must_use]
    pub fn finish(self) -> Fp128 {
        fp128(self.sink.bytes())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_across_instances() {
        let build = || {
            StructuralHasher::new("t-v1")
                .component("limit", &42u64)
                .raw("code", b"\x01\x02\x03")
                .finish()
        };
        assert_eq!(build(), build());
    }

    #[test]
    fn domain_separates() {
        let a = StructuralHasher::new("t-v1").component("x", &1u8).finish();
        let b = StructuralHasher::new("t-v2").component("x", &1u8).finish();
        assert_ne!(a, b);
    }

    #[test]
    fn labels_and_values_both_discriminate() {
        let base = StructuralHasher::new("t").component("a", &7u64).finish();
        let label = StructuralHasher::new("t").component("b", &7u64).finish();
        let value = StructuralHasher::new("t").component("a", &8u64).finish();
        assert_ne!(base, label);
        assert_ne!(base, value);
    }

    #[test]
    fn framing_is_prefix_free() {
        // Sliding bytes between adjacent raw components must not collide.
        let a = StructuralHasher::new("t")
            .raw("x", b"ab")
            .raw("y", b"c")
            .finish();
        let b = StructuralHasher::new("t")
            .raw("x", b"a")
            .raw("y", b"bc")
            .finish();
        assert_ne!(a, b);
        // Nor between a label and its value.
        let c = StructuralHasher::new("t").raw("xy", b"z").finish();
        let d = StructuralHasher::new("t").raw("x", b"yz").finish();
        assert_ne!(c, d);
    }

    #[test]
    fn component_order_matters() {
        let a = StructuralHasher::new("t")
            .component("p", &1u8)
            .component("q", &2u8)
            .finish();
        let b = StructuralHasher::new("t")
            .component("q", &2u8)
            .component("p", &1u8)
            .finish();
        assert_ne!(a, b);
    }
}
