//! Real-thread runtime for memory-anonymous algorithms.
//!
//! The simulator (`anonreg-sim`) executes algorithms under a fully
//! controlled adversary; this crate runs the *same*
//! [`Machine`](anonreg_model::Machine) implementations on **real threads
//! over real atomics**, where the scheduler of the host OS plays the
//! adversary. That is the configuration the paper's introduction speculates
//! about — memory-anonymous algorithms' "plasticity" letting each thread
//! scan the shared registers in its own order — and experiment E9 measures.
//!
//! # Architecture
//!
//! * [`Register`] — the linearizable single-register contract, with two
//!   implementations:
//!   [`PackedAtomicRegister`] (a lock-free `AtomicU64`, for values that
//!   implement [`Pack64`] — the paper's remark in §4.1 notes multi-field
//!   records can be encoded into a single value, which is exactly what
//!   packing does) and [`LockRegister`] (an `RwLock`-based register for
//!   wide values like Figure 3's unbounded history sets; linearizable, not
//!   lock-free — the documented substitution in DESIGN.md).
//! * [`AnonymousMemory`] — a shared array of registers handed to threads
//!   through per-thread permuted [`MemoryView`]s. By default every thread
//!   receives a fresh *random* permutation: no thread can rely on register
//!   names agreeing with any other thread's, keeping implementations
//!   honest.
//! * [`Driver`] — drives any `Machine` against a `MemoryView`, with
//!   optional randomized backoff so obstruction-free algorithms make
//!   progress under real contention.
//! * High-level facades: [`AnonymousMutex`], [`AnonymousConsensus`],
//!   [`AnonymousElection`], [`AnonymousRenaming`].
//!
//! # Quickstart
//!
//! ```
//! use anonreg_runtime::AnonymousConsensus;
//! use anonreg_model::Pid;
//!
//! // Two threads agree on a value without agreeing on register names.
//! let consensus = AnonymousConsensus::new(2)?;
//! let a = consensus.handle(Pid::new(1).unwrap())?;
//! let b = consensus.handle(Pid::new(2).unwrap())?;
//! let (da, db) = std::thread::scope(|s| {
//!     let ta = s.spawn(move || a.propose(10).unwrap());
//!     let tb = s.spawn(move || b.propose(20).unwrap());
//!     (ta.join().unwrap(), tb.join().unwrap())
//! });
//! assert_eq!(da, db);
//! assert!(da == 10 || da == 20);
//! # Ok::<(), anonreg_runtime::RuntimeError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod driver;
mod facade;
mod fault;
mod memory;
mod pack;
mod register;

pub use driver::{Backoff, Driver, DriverReport, DriverStep};
pub use facade::{
    AnonymousConsensus, AnonymousElection, AnonymousMutex, AnonymousRenaming, ConsensusHandle,
    ElectionHandle, FaultyHybridMutexHandle, FaultyMutexHandle, HybridAnonymousMutex,
    HybridMutexGuard, HybridMutexHandle, MutexGuard, MutexHandle, RenamingHandle, RuntimeError,
};
pub use fault::{
    DriveOutcome, FaultCell, FaultKind, FaultPlan, FaultPoint, FaultProfile, FaultRecord,
    FaultyDriver, FaultyStep,
};
pub use memory::{AnonymousMemory, MemoryView};
pub use pack::Pack64;
pub use register::{LockRegister, PackedAtomicRegister, Register};
