//! JSONL codecs for the algorithm event types.
//!
//! Implementing [`JsonEncode`]/[`JsonDecode`] here (the event types are
//! local to this crate; the traits live in `anonreg-obs`) makes every
//! trace over these algorithms exportable with
//! `anonreg_obs::trace_to_jsonl` and re-importable losslessly — recorded
//! counterexamples become shareable artifacts.
//!
//! Wire shapes (part of schema v1):
//!
//! * [`MutexEvent`] — `"enter"` / `"exit"` / `"aborted"`
//! * [`ConsensusEvent`] — `{"decide": <u64>}`
//! * [`ElectionEvent`] — `{"elected": <pid as u64>}`
//! * [`RenamingEvent`] — `{"named": <u32>}`

use anonreg_model::Pid;
use anonreg_obs::{Json, JsonDecode, JsonEncode, JsonError};

use crate::consensus::ConsensusEvent;
use crate::election::ElectionEvent;
use crate::mutex::MutexEvent;
use crate::renaming::RenamingEvent;

fn err(reason: &'static str) -> JsonError {
    JsonError { pos: 0, reason }
}

fn tagged(tag: &str, value: Json) -> Json {
    Json::Obj(vec![(tag.to_string(), value)])
}

fn untag(json: &Json, tag: &str, reason: &'static str) -> Result<u64, JsonError> {
    json.get(tag).and_then(Json::as_u64).ok_or(err(reason))
}

impl JsonEncode for MutexEvent {
    fn to_json(&self) -> Json {
        Json::Str(
            match self {
                MutexEvent::Enter => "enter",
                MutexEvent::Exit => "exit",
                MutexEvent::Aborted => "aborted",
            }
            .to_string(),
        )
    }
}

impl JsonDecode for MutexEvent {
    fn from_json(json: &Json) -> Result<Self, JsonError> {
        match json.as_str() {
            Some("enter") => Ok(MutexEvent::Enter),
            Some("exit") => Ok(MutexEvent::Exit),
            Some("aborted") => Ok(MutexEvent::Aborted),
            _ => Err(err("expected a mutex event string")),
        }
    }
}

impl JsonEncode for ConsensusEvent {
    fn to_json(&self) -> Json {
        let ConsensusEvent::Decide(v) = self;
        tagged("decide", Json::U64(*v))
    }
}

impl JsonDecode for ConsensusEvent {
    fn from_json(json: &Json) -> Result<Self, JsonError> {
        Ok(ConsensusEvent::Decide(untag(
            json,
            "decide",
            "expected {\"decide\": u64}",
        )?))
    }
}

impl JsonEncode for ElectionEvent {
    fn to_json(&self) -> Json {
        let ElectionEvent::Elected(pid) = self;
        tagged("elected", Json::U64(pid.get()))
    }
}

impl JsonDecode for ElectionEvent {
    fn from_json(json: &Json) -> Result<Self, JsonError> {
        let raw = untag(json, "elected", "expected {\"elected\": u64}")?;
        let pid = Pid::new(raw).ok_or(err("elected pid must be nonzero"))?;
        Ok(ElectionEvent::Elected(pid))
    }
}

impl JsonEncode for RenamingEvent {
    fn to_json(&self) -> Json {
        let RenamingEvent::Named(name) = self;
        tagged("named", Json::U64(u64::from(*name)))
    }
}

impl JsonDecode for RenamingEvent {
    fn from_json(json: &Json) -> Result<Self, JsonError> {
        let raw = untag(json, "named", "expected {\"named\": u32}")?;
        let name = u32::try_from(raw).map_err(|_| err("name exceeds u32"))?;
        Ok(RenamingEvent::Named(name))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip<T>(value: T)
    where
        T: JsonEncode + JsonDecode + PartialEq + std::fmt::Debug,
    {
        let json = value.to_json();
        // Through the wire: render and re-parse before decoding.
        let parsed = Json::parse(&json.render()).unwrap();
        assert_eq!(T::from_json(&parsed).unwrap(), value);
    }

    #[test]
    fn all_events_round_trip() {
        round_trip(MutexEvent::Enter);
        round_trip(MutexEvent::Exit);
        round_trip(MutexEvent::Aborted);
        round_trip(ConsensusEvent::Decide(u64::MAX));
        round_trip(ElectionEvent::Elected(Pid::new(42).unwrap()));
        round_trip(RenamingEvent::Named(7));
    }

    #[test]
    fn bad_payloads_are_rejected() {
        assert!(MutexEvent::from_json(&Json::Str("enterr".into())).is_err());
        assert!(ConsensusEvent::from_json(&Json::U64(3)).is_err());
        assert!(ElectionEvent::from_json(&tagged("elected", Json::U64(0))).is_err());
        assert!(RenamingEvent::from_json(&tagged("named", Json::U64(u64::MAX))).is_err());
    }

    #[test]
    fn full_mutex_trace_round_trips() {
        use anonreg_model::trace::{Trace, TraceOp};
        let mut trace: Trace<u64, MutexEvent> = Trace::new();
        let pid = Pid::new(9).unwrap();
        trace.record(
            0,
            pid,
            TraceOp::Write {
                local: 1,
                physical: 0,
                value: 9,
            },
        );
        trace.record(0, pid, TraceOp::Event(MutexEvent::Enter));
        trace.record(0, pid, TraceOp::Event(MutexEvent::Exit));
        trace.record(0, pid, TraceOp::Halt);
        let jsonl = anonreg_obs::trace_to_jsonl(&trace);
        let back: Trace<u64, MutexEvent> = anonreg_obs::trace_from_jsonl(&jsonl).unwrap();
        assert_eq!(back, trace);
    }
}
