//! Proof-carrying reachability certificates for the anonreg model checker.
//!
//! Exploring a family's state space is expensive; *re-checking* a recorded
//! exploration is not. This crate gives the explorer a durable, compact
//! witness of a finished run — the **certificate** — and a verifier that
//! re-validates it by streaming membership/closure checks instead of
//! frontier search:
//!
//! * [`cert::CertWriter`] serializes the reachable set as a delta-encoded,
//!   lexicographically sorted list of canonical state codes, the edge
//!   multiset as `(source, target, process, crash)` index tuples over that
//!   sorted order, a 128-bit fingerprint of each section (including the
//!   verdict section, so a tampered verdict cannot replay cleanly), and
//!   the named safety/liveness verdicts the run established.
//! * [`cert::replay`] re-validates a certificate from disk in **bounded
//!   memory** (one previous-code buffer, buffered sequential IO — the same
//!   discipline as the explorer's spill tier): codes must be strictly
//!   ascending (hence distinct), the initial configuration must be a
//!   member, every recorded successor index must land inside the recorded
//!   set, and both section fingerprints must re-derive bit-exactly.
//! * [`store::CacheStore`] keys certificates by the 128-bit *structural
//!   hash* of the verification problem
//!   ([`anonreg_model::structural::StructuralHasher`]): machine type
//!   identity and build version, initial configuration, views, limits,
//!   failure model, symmetry mode and the registered verdict names. A
//!   certificate whose embedded key no longer matches is refused as
//!   [`cert::CertError::Stale`] — the cache can serve wrong-but-fast
//!   answers only by breaking a 128-bit FNV collision.
//!
//! What replay does **not** re-establish is that the recorded set is the
//! true reachable set of the machines — that is exactly the part pinned by
//! the structural key, which changes whenever the machines, limits or
//! symmetry mode do. One caveat lives there: a transition function is
//! code, so the key pins its type name and crate version, not its logic —
//! editing `resume()` without bumping the crate version requires a manual
//! invalidation (`check verify-cache --invalidate` or
//! [`store::CacheStore::clear`]) before persisted stores can be trusted
//! again. The scheme mirrors the sanitizer's `ORD-*` certificates: derive
//! once, re-check cheaply, invalidate structurally.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cert;
pub mod store;

pub use cert::{replay, CertError, CertWriter, ReplaySummary};
pub use store::{cache_disabled, CacheStore};
