//! Tier-1 cached model checking: the seven verified families answered
//! through the proof-carrying reachability cache.
//!
//! Every family is checked twice through [`run_cached`] — once cold
//! (explore + certify) and once warm (streaming certificate replay) —
//! and the cached verdicts are compared against a direct
//! [`Explorer::run`] of the same configuration. Replay never searches:
//! it re-validates the stored reachable set by membership and closure
//! checking, so a divergence here would mean the certificate format or
//! the structural keying is unsound.
//!
//! The suite consults the cache by default (scratch stores here, the
//! `ANONREG_CACHE_DIR`-driven default store in
//! `cached_suite_uses_the_default_store`); setting `ANONREG_NO_CACHE`
//! forces every run cold — that escape hatch lives in its own test
//! binary (`cache_escape_hatch.rs`) because the variable is
//! process-global.

use std::hash::Hash;

use anonreg::baseline::Peterson;
use anonreg::consensus::AnonConsensus;
use anonreg::election::AnonElection;
use anonreg::hybrid::{named_view, HybridMutex};
use anonreg::mutex::{AnonMutex, Section};
use anonreg::ordered::OrderedMutex;
use anonreg::renaming::AnonRenaming;
use anonreg::{Machine, Pid, View};
use anonreg_sim::prelude::*;
use anonreg_sim::Simulation;

fn pid(n: u64) -> Pid {
    Pid::new(n).unwrap()
}

/// A private per-test store so parallel tests never share keys with a
/// half-written state from another binary.
fn scratch_store(name: &str) -> CacheStore {
    let dir =
        std::env::temp_dir().join(format!("anonreg-incremental-{}-{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    CacheStore::new(dir).unwrap()
}

/// Cold-then-warm through `store`, parity-checked against a direct
/// uncached exploration of the same configuration.
fn check_cached<M>(
    family: &str,
    store: &CacheStore,
    build: impl Fn() -> Simulation<M>,
    violation: impl Fn(&Simulation<M>) -> bool + Copy + 'static,
) where
    M: Machine + Eq + Hash,
{
    let make = || {
        Explorer::new(build()).verdict("safety", move |g: &StateGraph<M>| {
            g.find_state(violation).is_some()
        })
    };
    let cold = run_cached(store, make).unwrap();
    assert!(!cold.warm, "{family}: scratch store had a certificate");
    let warm = run_cached(store, make).unwrap();
    assert!(warm.warm, "{family}: second run did not replay");
    assert_eq!(
        (cold.states, cold.edges),
        (warm.states, warm.edges),
        "{family}: warm replay changed the counts"
    );
    assert_eq!(
        cold.verdicts, warm.verdicts,
        "{family}: warm replay changed a verdict"
    );

    let graph = Explorer::new(build()).run().unwrap();
    assert_eq!(
        (cold.states, cold.edges),
        (graph.state_count() as u64, graph.edge_count() as u64),
        "{family}: cached counts diverge from a direct exploration"
    );
    assert_eq!(
        cold.verdicts,
        vec![("safety".to_string(), graph.find_state(violation).is_some())],
        "{family}: cached verdict diverges from a direct exploration"
    );
}

/// The ≥2-in-critical-section overlap predicate of the mutex families.
fn overlap<M>(section: impl Fn(&M) -> Section + Copy) -> impl Fn(&Simulation<M>) -> bool + Copy
where
    M: Machine + Eq + Hash,
{
    move |s: &Simulation<M>| {
        s.machines()
            .filter(|m| section(m) == Section::Critical)
            .count()
            >= 2
    }
}

#[test]
fn mutex_cached_verdicts_match_cold() {
    let store = scratch_store("mutex");
    check_cached(
        "mutex",
        &store,
        || {
            Simulation::builder()
                .process(AnonMutex::new(pid(1), 3).unwrap(), View::identity(3))
                .process(AnonMutex::new(pid(2), 3).unwrap(), View::rotated(3, 1))
                .build()
                .unwrap()
        },
        overlap(AnonMutex::section),
    );
    let _ = std::fs::remove_dir_all(store.dir());
}

#[test]
fn ordered_mutex_cached_verdicts_match_cold() {
    let store = scratch_store("ordered");
    check_cached(
        "ordered",
        &store,
        || {
            Simulation::builder()
                .process(OrderedMutex::new(pid(1), 3).unwrap(), View::identity(3))
                .process(OrderedMutex::new(pid(2), 3).unwrap(), View::rotated(3, 1))
                .build()
                .unwrap()
        },
        overlap(OrderedMutex::section),
    );
    let _ = std::fs::remove_dir_all(store.dir());
}

#[test]
fn hybrid_mutex_cached_verdicts_match_cold() {
    let store = scratch_store("hybrid");
    check_cached(
        "hybrid",
        &store,
        || {
            let anon: Vec<usize> = (0..3).map(|j| (j + 1) % 3).collect();
            Simulation::builder()
                .process(
                    HybridMutex::new(pid(1), 3).unwrap(),
                    named_view(3, (0..3).collect()).unwrap(),
                )
                .process(
                    HybridMutex::new(pid(2), 3).unwrap(),
                    named_view(3, anon).unwrap(),
                )
                .build()
                .unwrap()
        },
        overlap(HybridMutex::section),
    );
    let _ = std::fs::remove_dir_all(store.dir());
}

#[test]
fn peterson_cached_verdicts_match_cold() {
    let store = scratch_store("peterson");
    check_cached(
        "peterson",
        &store,
        || {
            Simulation::builder()
                .process_identity(Peterson::new(pid(1), 0).unwrap())
                .process_identity(Peterson::new(pid(2), 1).unwrap())
                .build()
                .unwrap()
        },
        overlap(Peterson::section),
    );
    let _ = std::fs::remove_dir_all(store.dir());
}

#[test]
fn consensus_cached_verdicts_match_cold() {
    let store = scratch_store("consensus");
    check_cached(
        "consensus",
        &store,
        || {
            Simulation::builder()
                .process(
                    AnonConsensus::new(pid(1), 2, 1).unwrap().with_registers(2),
                    View::identity(2),
                )
                .process(
                    AnonConsensus::new(pid(2), 2, 2).unwrap().with_registers(2),
                    View::rotated(2, 1),
                )
                .build()
                .unwrap()
        },
        |s| {
            let decided: Vec<u64> = s
                .machines()
                .filter(|m| m.has_decided())
                .map(AnonConsensus::preference)
                .collect();
            decided.len() == 2 && decided[0] != decided[1]
        },
    );
    let _ = std::fs::remove_dir_all(store.dir());
}

#[test]
fn renaming_cached_verdicts_match_cold() {
    let store = scratch_store("renaming");
    check_cached(
        "renaming",
        &store,
        || {
            Simulation::builder()
                .process(AnonRenaming::new(pid(1), 2).unwrap(), View::identity(3))
                .process(AnonRenaming::new(pid(2), 2).unwrap(), View::rotated(3, 1))
                .build()
                .unwrap()
        },
        |s| s.all_halted() && s.machines().any(|m| !m.has_name()),
    );
    let _ = std::fs::remove_dir_all(store.dir());
}

#[test]
fn election_cached_verdicts_match_cold() {
    let store = scratch_store("election");
    check_cached(
        "election",
        &store,
        || {
            Simulation::builder()
                .process(AnonElection::new(pid(1), 2).unwrap(), View::identity(3))
                .process(AnonElection::new(pid(2), 2).unwrap(), View::rotated(3, 1))
                .build()
                .unwrap()
        },
        |s| s.all_halted() && s.machines().any(|m| !m.has_elected()),
    );
    let _ = std::fs::remove_dir_all(store.dir());
}

/// The default store (`CacheStore::from_env`) works end to end: this is
/// the path the CI cache job exercises with `ANONREG_CACHE_DIR` set.
#[test]
fn cached_suite_uses_the_default_store() {
    let store = CacheStore::from_env();
    let make = || {
        Explorer::new(
            Simulation::builder()
                .process(AnonMutex::new(pid(1), 3).unwrap(), View::identity(3))
                .process(AnonMutex::new(pid(2), 3).unwrap(), View::rotated(3, 2))
                .build()
                .unwrap(),
        )
        .verdict("safety", |g: &StateGraph<AnonMutex>| {
            g.find_state(overlap(AnonMutex::section)).is_some()
        })
    };
    // Whatever a previous run left behind, two consecutive runs agree
    // and the second answers from the certificate.
    let first = run_cached(&store, make).unwrap();
    let second = run_cached(&store, make).unwrap();
    assert!(second.warm, "default store did not serve a replay");
    assert_eq!((first.states, first.edges), (second.states, second.edges));
    assert_eq!(first.verdicts, second.verdicts);
    let _ = store.invalidate(make().structural_hash());
}

// ---------------------------------------------------------------------
// Invalidation: anything that can change the verified semantics must
// change the structural key, and a key mismatch must be refused loudly.
// ---------------------------------------------------------------------

#[test]
fn structural_hash_tracks_the_transition_table() {
    let build = |m: usize, cycles: u64| {
        Explorer::new(
            Simulation::builder()
                .process(
                    AnonMutex::new(pid(1), m).unwrap().with_cycles(cycles),
                    View::identity(m),
                )
                .process(
                    AnonMutex::new(pid(2), m).unwrap().with_cycles(cycles),
                    View::rotated(m, 1),
                )
                .build()
                .unwrap(),
        )
    };
    let base = build(3, 1).structural_hash();
    // More registers = a different machine *and* different views.
    assert_ne!(base, build(5, 1).structural_hash());
    // Same registers, more critical-section cycles = a different
    // transition table behind the same interface.
    assert_ne!(base, build(3, 2).structural_hash());
    // Rebuilding the identical configuration reproduces the key.
    assert_eq!(base, build(3, 1).structural_hash());
}

/// `AnonMutex` and `OrderedMutex` share a field layout, so their initial
/// configurations can encode identically — only the machine's type
/// identity in the key separates them. Without it, one family's
/// certificate would replay as the other's verdicts.
#[test]
fn structural_hash_distinguishes_machine_types() {
    let anon = Explorer::new(
        Simulation::builder()
            .process(AnonMutex::new(pid(1), 3).unwrap(), View::identity(3))
            .process(AnonMutex::new(pid(2), 3).unwrap(), View::rotated(3, 1))
            .build()
            .unwrap(),
    )
    .structural_hash();
    let ordered = Explorer::new(
        Simulation::builder()
            .process(OrderedMutex::new(pid(1), 3).unwrap(), View::identity(3))
            .process(OrderedMutex::new(pid(2), 3).unwrap(), View::rotated(3, 1))
            .build()
            .unwrap(),
    )
    .structural_hash();
    assert_ne!(anon, ordered);
}

/// The registered verdict set is part of the key: a run asking a new or
/// renamed verdict must explore cold, never warm-hit a certificate that
/// recorded different questions.
#[test]
fn structural_hash_tracks_the_verdict_set() {
    let bare = || {
        Explorer::new(
            Simulation::builder()
                .process(AnonMutex::new(pid(1), 3).unwrap(), View::identity(3))
                .process(AnonMutex::new(pid(2), 3).unwrap(), View::rotated(3, 1))
                .build()
                .unwrap(),
        )
    };
    let base = bare().structural_hash();
    let safety = bare()
        .verdict("safety", |_: &StateGraph<AnonMutex>| false)
        .structural_hash();
    let renamed = bare()
        .verdict("liveness", |_: &StateGraph<AnonMutex>| false)
        .structural_hash();
    assert_ne!(base, safety);
    assert_ne!(safety, renamed);
    assert_eq!(
        safety,
        bare()
            .verdict("safety", |_: &StateGraph<AnonMutex>| true)
            .structural_hash()
    );
}

#[test]
fn structural_hash_tracks_limits_and_symmetry() {
    let build = || {
        Explorer::new(
            Simulation::builder()
                .process(AnonMutex::new(pid(1), 3).unwrap(), View::identity(3))
                .process(AnonMutex::new(pid(2), 3).unwrap(), View::rotated(3, 1))
                .build()
                .unwrap(),
        )
    };
    let base = build().structural_hash();
    assert_ne!(base, build().max_states(12_345).structural_hash());
    assert_ne!(base, build().crashes(true).structural_hash());
    assert_ne!(base, build().por(true).structural_hash());
    assert_ne!(
        base,
        build().symmetry(SymmetryMode::Registers).structural_hash()
    );
    // Parallelism never changes the graph, so it must not change the key
    // (a 4-thread run may replay a 1-thread certificate).
    assert_eq!(base, build().parallelism(4).structural_hash());
}

#[test]
fn stale_certificate_is_refused_with_a_clear_error() {
    let store = scratch_store("stale");
    let build = |m: usize| {
        Explorer::new(
            Simulation::builder()
                .process(AnonMutex::new(pid(1), m).unwrap(), View::identity(m))
                .process(AnonMutex::new(pid(2), m).unwrap(), View::rotated(m, 1))
                .build()
                .unwrap(),
        )
    };
    // Certify m = 3, then try to replay it as if it answered m = 5.
    let path = store.path(build(3).structural_hash());
    build(3).certify(&path).run().unwrap();
    let err = build(5).replay_certificate(&path).unwrap_err();
    assert!(
        matches!(err, CertError::Stale { .. }),
        "expected a stale-key refusal, got: {err}"
    );
    let message = err.to_string();
    assert!(
        message.contains("stale certificate") && message.contains("re-run a cold exploration"),
        "unhelpful stale error: {message}"
    );
    let _ = std::fs::remove_dir_all(store.dir());
}

/// `run_cached` degrades a stale certificate to a recomputation: mutate
/// the configuration behind the same path and the driver re-explores
/// instead of erroring.
#[test]
fn run_cached_recovers_from_manual_store_corruption() {
    let store = scratch_store("recover");
    let make = || {
        Explorer::new(
            Simulation::builder()
                .process(AnonMutex::new(pid(1), 3).unwrap(), View::identity(3))
                .process(AnonMutex::new(pid(2), 3).unwrap(), View::rotated(3, 1))
                .build()
                .unwrap(),
        )
    };
    let cold = run_cached(&store, make).unwrap();
    let path = store.path(make().structural_hash());
    // Truncate the certificate mid-file: replay must fail internally and
    // the driver must fall back to a cold run with the right answer.
    let bytes = std::fs::read(&path).unwrap();
    std::fs::write(&path, &bytes[..bytes.len() / 2]).unwrap();
    let recovered = run_cached(&store, make).unwrap();
    assert!(!recovered.warm, "corrupt certificate was replayed");
    assert_eq!(
        (cold.states, cold.edges),
        (recovered.states, recovered.edges)
    );
    let _ = std::fs::remove_dir_all(store.dir());
}
