//! Shared workload helpers for the randomized experiment sweeps.

use anonreg_model::rng::Rng64;
use anonreg_model::{Machine, View};
use anonreg_sim::{sched, Simulation};

/// `count` independent uniformly random permutations of `0..m`,
/// deterministically derived from `seed`.
#[must_use]
pub fn random_views(m: usize, count: usize, seed: u64) -> Vec<View> {
    let mut rng = Rng64::seed_from_u64(seed);
    (0..count)
        .map(|_| View::from_perm(rng.permutation(m)).expect("a shuffled range is a permutation"))
        .collect()
}

/// Builds a simulation giving each machine a fresh random view (derived
/// from `seed`) and runs it under the seeded burst scheduler until all
/// processes halt or `budget` scheduling decisions pass. Returns the
/// finished simulation for trace inspection.
///
/// Burst scheduling matters for the obstruction-free algorithms: progress
/// is only guaranteed in solo windows, which long bursts provide.
///
/// # Panics
///
/// Panics if `machines` is empty or disagrees on register counts.
#[must_use]
pub fn run_randomized<M: Machine>(
    machines: Vec<M>,
    seed: u64,
    max_burst: usize,
    budget: usize,
) -> Simulation<M> {
    let m = machines
        .first()
        .expect("at least one machine")
        .register_count();
    let views = random_views(m, machines.len(), seed ^ 0xABCD_EF01);
    let mut builder = Simulation::builder();
    for (machine, view) in machines.into_iter().zip(views) {
        builder = builder.process(machine, view);
    }
    let mut sim = builder.build().expect("uniform register counts");
    sched::random_bursts(&mut sim, seed, max_burst, budget);
    sim
}

#[cfg(test)]
mod tests {
    use super::*;
    use anonreg::consensus::AnonConsensus;
    use anonreg_model::Pid;

    #[test]
    fn random_views_are_deterministic_per_seed() {
        let a = random_views(5, 3, 9);
        let b = random_views(5, 3, 9);
        let c = random_views(5, 3, 10);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn randomized_consensus_run_completes() {
        let machines: Vec<AnonConsensus> = (0..3)
            .map(|i| AnonConsensus::new(Pid::new(i + 1).unwrap(), 3, i + 1).unwrap())
            .collect();
        let sim = run_randomized(machines, 7, 64, 1_000_000);
        assert!(sim.all_halted(), "burst scheduling lets everyone decide");
    }
}
