//! E6 — the renaming space-bound table (Theorem 6.5).
//!
//! Mirror of E4: for each under-provisioned register count, the covering
//! attack makes the victim and a coverer both acquire name 1.

use anonreg_lower::renaming_cover::duplicate_name;

use crate::benchjson::{flag, BenchMetric};
use crate::table::Table;

/// One row of the renaming space-bound table.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Row {
    /// Processes.
    pub n: usize,
    /// Registers provided.
    pub registers: usize,
    /// Whether the attack produced a duplicate name.
    pub violated: bool,
    /// The duplicated name (1, by adaptivity) when violated.
    pub name: u32,
}

/// Runs the attack for every `n ∈ 2..=max_n` and `r ∈ 1..n`.
#[must_use]
pub fn rows(max_n: usize) -> Vec<Row> {
    let mut out = Vec::new();
    for n in 2..=max_n {
        for r in 1..n {
            match duplicate_name(n, r) {
                Ok(d) => out.push(Row {
                    n,
                    registers: r,
                    violated: true,
                    name: d.name,
                }),
                Err(_) => out.push(Row {
                    n,
                    registers: r,
                    violated: false,
                    name: 0,
                }),
            }
        }
    }
    out
}

/// Renders the table for the given rows.
#[must_use]
pub fn render(rows: &[Row]) -> String {
    let mut t = Table::new(vec![
        "n",
        "registers",
        "required (2n-1)",
        "uniqueness",
        "dup name",
    ]);
    for r in rows {
        t.row(vec![
            r.n.to_string(),
            r.registers.to_string(),
            (2 * r.n - 1).to_string(),
            if r.violated {
                "VIOLATED (attack)"
            } else {
                "held?!"
            }
            .into(),
            if r.violated {
                r.name.to_string()
            } else {
                "-".into()
            },
        ]);
    }
    t.render()
}

/// Machine-readable metrics for the given rows.
#[must_use]
pub fn metrics(rows: &[Row]) -> Vec<BenchMetric> {
    rows.iter()
        .map(|r| {
            BenchMetric::new(
                "E6",
                "renaming",
                format!("n{}_r{}_violated", r.n, r.registers),
                flag(r.violated),
                "bool",
            )
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_underprovisioned_count_is_attacked() {
        for row in rows(5) {
            assert!(row.violated, "n={}, r={}", row.n, row.registers);
            assert_eq!(row.name, 1);
        }
    }
}
