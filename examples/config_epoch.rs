//! Scenario: replicas of a freshly booted service must agree on a
//! configuration epoch **before** any naming infrastructure exists.
//!
//! ```text
//! cargo run --release --example config_epoch
//! ```
//!
//! The bootstrapping chicken-and-egg the paper's model captures: agreeing
//! on which shared location is "the config register" is itself an
//! agreement problem. Here each replica maps the shared segment in its own
//! order (a random view), proposes the config epoch it believes is
//! current, and the Figure 2 consensus object yields one winning epoch.
//! Election then designates the replica that will own follow-up work —
//! without ordering identifiers (the model allows equality checks only).

use anonreg_model::Pid;
use anonreg_runtime::{AnonymousConsensus, AnonymousElection, RuntimeError};

/// A replica's boot-time belief.
#[derive(Clone, Copy, Debug)]
struct Replica {
    /// Self-assigned identifier (e.g. derived from a MAC address — unique
    /// but from an unbounded space, exactly the paper's assumption).
    id: u64,
    /// The config epoch this replica last saw before the restart.
    believed_epoch: u64,
}

fn main() -> Result<(), RuntimeError> {
    let replicas = [
        Replica {
            id: 0xA11CE,
            believed_epoch: 41,
        },
        Replica {
            id: 0xB0B,
            believed_epoch: 42,
        },
        Replica {
            id: 0xCA51,
            believed_epoch: 41,
        },
        Replica {
            id: 0xD0D0,
            believed_epoch: 40,
        },
        Replica {
            id: 0xE66,
            believed_epoch: 42,
        },
    ];
    let n = replicas.len();

    // Phase 1: agree on the epoch to resume from.
    let consensus = AnonymousConsensus::new(n)?;
    let epochs: Vec<(u64, u64)> = std::thread::scope(|s| {
        let joins: Vec<_> = replicas
            .iter()
            .map(|replica| {
                let handle = consensus.handle(Pid::new(replica.id).unwrap()).unwrap();
                let replica = *replica;
                s.spawn(move || {
                    let agreed = handle.propose(replica.believed_epoch).expect("valid epoch");
                    (replica.id, agreed)
                })
            })
            .collect();
        joins.into_iter().map(|j| j.join().unwrap()).collect()
    });
    let agreed_epoch = epochs[0].1;
    for (id, epoch) in &epochs {
        println!("replica {id:#x}: resuming at epoch {epoch}");
        assert_eq!(epoch, &agreed_epoch, "agreement");
    }
    assert!(
        replicas.iter().any(|r| r.believed_epoch == agreed_epoch),
        "validity: the agreed epoch was somebody's belief"
    );

    // Phase 2: elect the replica that will rebuild the naming service.
    let election = AnonymousElection::new(n)?;
    let leaders: Vec<Pid> = std::thread::scope(|s| {
        let joins: Vec<_> = replicas
            .iter()
            .map(|replica| {
                let handle = election.handle(Pid::new(replica.id).unwrap()).unwrap();
                s.spawn(move || handle.elect().expect("ids fit in 32 bits"))
            })
            .collect();
        joins.into_iter().map(|j| j.join().unwrap()).collect()
    });
    let leader = leaders[0];
    assert!(leaders.iter().all(|&l| l == leader));
    assert!(replicas.iter().any(|r| r.id == leader.get()));
    println!(
        "replica {:#x} elected to rebuild the naming service",
        leader.get()
    );
    println!("bootstrapped epoch {agreed_epoch} without prior agreement ✓");
    Ok(())
}
