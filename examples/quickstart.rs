//! Quickstart: the three coordination primitives, on real threads, with
//! **zero prior agreement** on register names.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```
//!
//! Every thread in this example sees the shared registers through its own
//! random permutation — thread A's "register 0" is thread B's "register 3"
//! — and coordination still works, which is the point of the paper.

use std::sync::atomic::{AtomicU64, Ordering};

use anonreg_model::Pid;
use anonreg_runtime::{AnonymousConsensus, AnonymousMutex, AnonymousRenaming, RuntimeError};

fn pid(n: u64) -> Pid {
    Pid::new(n).expect("nonzero id")
}

fn main() -> Result<(), RuntimeError> {
    // --- Mutual exclusion (Figure 1): two threads, five anonymous
    // registers (any odd m >= 3 works; even m livelocks — Theorem 3.1).
    let lock = AnonymousMutex::new(5)?;
    let mut alice = lock.handle(pid(101))?;
    let mut bob = lock.handle(pid(202))?;
    let counter = AtomicU64::new(0);
    std::thread::scope(|s| {
        for handle in [&mut alice, &mut bob] {
            s.spawn(|| {
                for _ in 0..10_000 {
                    let _guard = handle.enter();
                    // Non-atomic-looking read-modify-write, protected by
                    // the anonymous lock.
                    let v = counter.load(Ordering::Relaxed);
                    counter.store(v + 1, Ordering::Relaxed);
                }
            });
        }
    });
    println!("mutex: counter = {} (expected 20000)", counter.into_inner());

    // --- Consensus (Figure 2): four threads agree on one proposal.
    let consensus = AnonymousConsensus::new(4)?;
    let decisions: Vec<u64> = std::thread::scope(|s| {
        let joins: Vec<_> = (0..4u64)
            .map(|i| {
                let handle = consensus.handle(pid(1000 + i)).unwrap();
                s.spawn(move || handle.propose(10 * (i + 1)).expect("valid input"))
            })
            .collect();
        joins.into_iter().map(|j| j.join().unwrap()).collect()
    });
    println!("consensus: all four threads decided {decisions:?}");
    assert!(decisions.windows(2).all(|w| w[0] == w[1]));

    // --- Adaptive perfect renaming (Figure 3): three participants (out of
    // up to five) squeeze their huge ids into exactly {1, 2, 3}.
    let renaming = AnonymousRenaming::new(5)?;
    let names: Vec<(u64, u32)> = std::thread::scope(|s| {
        let joins: Vec<_> = [987_654_321u64, 31_337, 424_242]
            .into_iter()
            .map(|id| {
                let handle = renaming.handle(pid(id)).unwrap();
                s.spawn(move || (id, handle.acquire()))
            })
            .collect();
        joins.into_iter().map(|j| j.join().unwrap()).collect()
    });
    for (id, name) in &names {
        println!("renaming: process {id} is now \"{name}\"");
    }
    let mut acquired: Vec<u32> = names.iter().map(|&(_, n)| n).collect();
    acquired.sort_unstable();
    assert_eq!(
        acquired,
        vec![1, 2, 3],
        "adaptive: 3 participants, names 1..3"
    );

    println!("all three primitives coordinated without prior agreement ✓");
    Ok(())
}
