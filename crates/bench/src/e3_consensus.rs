//! E3 — consensus validation sweeps (Theorems 4.1, 4.2).
//!
//! For each `n`, run many seeded adversary schedules over the Figure 2
//! algorithm with fresh random views per process and check every completed
//! run against the consensus specification (agreement + validity). The
//! exhaustive `n = 2` check lives in the integration tests; this sweep
//! scales the evidence to larger `n`.

use anonreg::consensus::AnonConsensus;
use anonreg::spec::check_consensus;
use anonreg::Pid;

use crate::benchjson::BenchMetric;
use crate::table::Table;
use crate::workload::run_randomized;

/// One row of the consensus sweep.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Row {
    /// Processes (registers = `2n − 1`).
    pub n: usize,
    /// Seeded schedules executed.
    pub runs: usize,
    /// Runs in which every process decided within the budget.
    pub completed: usize,
    /// Specification violations found (agreement or validity) — the paper
    /// predicts zero.
    pub violations: usize,
}

/// Runs the sweep for `n ∈ 2..=max_n`, `seeds` schedules each.
///
/// # Panics
///
/// Panics if a specification violation is *detected in the checker*
/// — no: violations are counted, not panicked on; the table reports them.
#[must_use]
pub fn rows(max_n: usize, seeds: u64) -> Vec<Row> {
    (2..=max_n)
        .map(|n| {
            let mut completed = 0;
            let mut violations = 0;
            for seed in 0..seeds {
                let inputs: Vec<u64> = (0..n as u64).map(|i| 10 + i).collect();
                let machines: Vec<AnonConsensus> = inputs
                    .iter()
                    .enumerate()
                    .map(|(i, &input)| {
                        AnonConsensus::new(Pid::new(100 + i as u64).unwrap(), n, input)
                            .expect("valid configuration")
                    })
                    .collect();
                let budget = 40_000 * n;
                let sim = run_randomized(machines, seed, 8 * n, budget);
                if sim.all_halted() {
                    completed += 1;
                }
                if check_consensus(sim.trace(), &inputs).is_err() {
                    violations += 1;
                }
            }
            Row {
                n,
                runs: seeds as usize,
                completed,
                violations,
            }
        })
        .collect()
}

/// Renders the table for the given rows.
#[must_use]
pub fn render(rows: &[Row]) -> String {
    let mut t = Table::new(vec!["n", "registers", "runs", "all decided", "violations"]);
    for r in rows {
        t.row(vec![
            r.n.to_string(),
            (2 * r.n - 1).to_string(),
            r.runs.to_string(),
            r.completed.to_string(),
            r.violations.to_string(),
        ]);
    }
    t.render()
}

/// Machine-readable metrics for the given rows.
#[must_use]
pub fn metrics(rows: &[Row]) -> Vec<BenchMetric> {
    let mut out = Vec::new();
    for r in rows {
        let n = r.n;
        out.push(BenchMetric::new(
            "E3",
            "consensus",
            format!("n{n}_runs"),
            r.runs as f64,
            "runs",
        ));
        out.push(BenchMetric::new(
            "E3",
            "consensus",
            format!("n{n}_completed"),
            r.completed as f64,
            "runs",
        ));
        out.push(BenchMetric::new(
            "E3",
            "consensus",
            format!("n{n}_violations"),
            r.violations as f64,
            "violations",
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_violations_across_seeds() {
        for row in rows(4, 25) {
            assert_eq!(row.violations, 0, "n={}", row.n);
            // Burst scheduling should let most runs finish.
            assert!(row.completed * 2 >= row.runs, "n={}: {row:?}", row.n);
        }
    }

    #[test]
    fn render_shape() {
        let s = render(&rows(2, 3));
        assert_eq!(s.lines().count(), 3);
    }
}
