//! Consensus in the failure-free *named-register* model: grab a lock, then
//! read-or-set a decision register.
//!
//! This is the textbook demonstration that consensus is trivial when
//! processes cannot crash and registers have agreed names: `2n` Bakery
//! registers implement mutual exclusion, one extra named register holds the
//! decision. The first process into the critical section writes its input;
//! everyone else reads it. Contrast with the paper's Figure 2, which needs
//! neither named registers nor a critical section — but only guarantees
//! obstruction-free progress, the price of crash tolerance (FLP) and
//! anonymity.

use std::fmt;

use anonreg_model::{Machine, Pid, Step};

use crate::baseline::bakery::Bakery;
use crate::consensus::{ConsensusConfigError, ConsensusEvent};
use crate::mutex::MutexEvent;

#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
enum Phase {
    /// Running the Bakery entry code.
    Locking,
    /// Inside the critical section; read of the decision register issued.
    ReadDecision,
    /// Wrote our input into the decision register.
    WroteDecision,
    /// Running the Bakery exit code; the decided value is latched.
    Unlocking(u64),
    /// Decision announced; next step halts.
    Decided,
}

/// Lock-based consensus for `n` processes over `2n + 1` *named* registers
/// (a Bakery lock plus one decision register).
///
/// Deadlock-free rather than obstruction-free, and **not crash-tolerant**:
/// a process that stops inside the critical section blocks everyone — the
/// exact failure mode the paper's register-only algorithms are designed to
/// avoid. It serves as the named-model performance baseline in
/// experiment E9.
///
/// # Example
///
/// ```
/// use anonreg::baseline::LockConsensus;
/// use anonreg::Machine;
/// use anonreg::Pid;
///
/// let machine = LockConsensus::new(Pid::new(3).unwrap(), 0, 2, 99)?;
/// assert_eq!(machine.register_count(), 5); // 2n Bakery + 1 decision
/// # Ok::<(), anonreg::consensus::ConsensusConfigError>(())
/// ```
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct LockConsensus {
    lock: Bakery,
    n: usize,
    input: u64,
    phase: Phase,
}

impl LockConsensus {
    /// Creates the machine for process `pid` playing `slot` among `n`
    /// agreed-upon slots, proposing `input`.
    ///
    /// # Errors
    ///
    /// Returns [`ConsensusConfigError`] if `n == 0`, `input == 0` (zero
    /// encodes "no decision yet"), or `slot >= n`.
    pub fn new(pid: Pid, slot: usize, n: usize, input: u64) -> Result<Self, ConsensusConfigError> {
        if input == 0 {
            return Err(ConsensusConfigError::ZeroInput);
        }
        let lock = Bakery::new(pid, slot, n)
            .map_err(|_| ConsensusConfigError::NoProcesses)?
            .with_cycles(1);
        Ok(LockConsensus {
            lock,
            n,
            input,
            phase: Phase::Locking,
        })
    }

    /// The index of the decision register (after the `2n` Bakery registers).
    fn decision_reg(&self) -> usize {
        2 * self.n
    }
}

impl Machine for LockConsensus {
    type Value = u64;
    type Event = ConsensusEvent;

    fn pid(&self) -> Pid {
        self.lock.pid()
    }

    fn register_count(&self) -> usize {
        2 * self.n + 1
    }

    fn resume(&mut self, read: Option<u64>) -> Step<u64, ConsensusEvent> {
        match self.phase {
            Phase::Locking => match self.lock.resume(read) {
                Step::Read(j) => Step::Read(j),
                Step::Write(j, v) => Step::Write(j, v),
                Step::Event(MutexEvent::Enter) => {
                    self.phase = Phase::ReadDecision;
                    Step::Read(self.decision_reg())
                }
                Step::Event(MutexEvent::Exit | MutexEvent::Aborted) | Step::Halt => {
                    unreachable!("lock exits only after the decision phase")
                }
            },
            Phase::ReadDecision => {
                let d = read.expect("decision read result expected");
                if d == 0 {
                    self.phase = Phase::WroteDecision;
                    Step::Write(self.decision_reg(), self.input)
                } else {
                    self.phase = Phase::Unlocking(d);
                    // The Bakery machine is still parked in its critical
                    // section; resuming it emits Exit first.
                    self.resume(None)
                }
            }
            Phase::WroteDecision => {
                debug_assert!(read.is_none());
                self.phase = Phase::Unlocking(self.input);
                self.resume(None)
            }
            Phase::Unlocking(decided) => match self.lock.resume(read) {
                Step::Event(MutexEvent::Exit) => self.resume(None),
                Step::Read(j) => Step::Read(j),
                Step::Write(j, v) => Step::Write(j, v),
                Step::Halt => {
                    self.phase = Phase::Decided;
                    Step::Event(ConsensusEvent::Decide(decided))
                }
                Step::Event(MutexEvent::Enter | MutexEvent::Aborted) => {
                    unreachable!("single-cycle lock cannot re-enter or abort")
                }
            },
            Phase::Decided => Step::Halt,
        }
    }
}

impl fmt::Debug for LockConsensus {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("LockConsensus")
            .field("pid", &self.lock.pid())
            .field("n", &self.n)
            .field("input", &self.input)
            .field("phase", &self.phase)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pid(n: u64) -> Pid {
        Pid::new(n).unwrap()
    }

    fn run_solo(mut machine: LockConsensus, regs: &mut [u64]) -> u64 {
        let mut read = None;
        for _ in 0..100_000 {
            match machine.resume(read.take()) {
                Step::Read(j) => read = Some(regs[j]),
                Step::Write(j, v) => regs[j] = v,
                Step::Event(ConsensusEvent::Decide(v)) => return v,
                Step::Halt => panic!("halt before decide"),
            }
        }
        panic!("machine did not decide");
    }

    #[test]
    fn config_validation() {
        assert!(LockConsensus::new(pid(1), 0, 2, 0).is_err());
        assert!(LockConsensus::new(pid(1), 2, 2, 5).is_err());
        assert!(LockConsensus::new(pid(1), 0, 0, 5).is_err());
        assert!(LockConsensus::new(pid(1), 1, 2, 5).is_ok());
    }

    #[test]
    fn solo_decides_own_input() {
        let machine = LockConsensus::new(pid(9), 0, 3, 44).unwrap();
        let mut regs = vec![0u64; machine.register_count()];
        assert_eq!(run_solo(machine, &mut regs), 44);
        // Decision register retains the value; lock registers are released.
        assert_eq!(regs[6], 44);
        assert!(regs[..6].iter().all(|&v| v == 0));
    }

    #[test]
    fn second_process_adopts_existing_decision() {
        let mut regs = vec![0u64; 5];
        let first = LockConsensus::new(pid(1), 0, 2, 11).unwrap();
        assert_eq!(run_solo(first, &mut regs), 11);
        let second = LockConsensus::new(pid(2), 1, 2, 22).unwrap();
        assert_eq!(run_solo(second, &mut regs), 11);
    }

    #[test]
    fn decided_machine_halts() {
        let mut machine = LockConsensus::new(pid(9), 0, 1, 7).unwrap();
        let mut regs = [0u64; 3];
        let mut read = None;
        loop {
            match machine.resume(read.take()) {
                Step::Read(j) => read = Some(regs[j]),
                Step::Write(j, v) => regs[j] = v,
                Step::Event(ConsensusEvent::Decide(7)) => break,
                other => panic!("unexpected {other:?}"),
            }
        }
        assert_eq!(machine.resume(None), Step::Halt);
    }
}
