//! The contract register contents must satisfy.

use std::fmt::Debug;
use std::hash::Hash;

/// Contents of an atomic multi-writer multi-reader register.
///
/// The paper's registers hold arbitrary (finite) values and start in a known
/// initial state ("initially all 0"). We capture the initial state with
/// [`Default`]; everything else exists so that values can be stored in
/// traces, hashed by the model checker and shipped across threads:
///
/// * [`Clone`] + [`Eq`] + [`Hash`] — explicit-state model checking hashes
///   whole memory snapshots.
/// * [`Debug`] — traces must be printable.
/// * [`Send`] + [`Sync`] + `'static` — the runtime shares registers between
///   threads.
///
/// The trait is implemented automatically for every type meeting the bounds;
/// there is nothing to implement by hand.
///
/// # Example
///
/// ```
/// fn assert_register_value<V: anonreg_model::RegisterValue>() {}
/// assert_register_value::<u64>();
/// assert_register_value::<(u64, u32)>();
/// ```
pub trait RegisterValue: Clone + Eq + Hash + Debug + Default + Send + Sync + 'static {}

impl<T> RegisterValue for T where T: Clone + Eq + Hash + Debug + Default + Send + Sync + 'static {}

#[cfg(test)]
mod tests {
    use super::*;

    fn is_register_value<V: RegisterValue>() {}

    #[test]
    fn common_types_qualify() {
        is_register_value::<u64>();
        is_register_value::<u128>();
        is_register_value::<(u64, u64)>();
        is_register_value::<Vec<u64>>();
        is_register_value::<Option<u64>>();
    }
}
