//! Shared plumbing for live-streamed and profiled experiment runs.
//!
//! The experiment modules normally explore silently; the `check`
//! streaming flags (`--stream`, `check profile`) need the *same* runs
//! with a shared [`MemProbe`] (snapshotted by the background
//! [`anonreg_obs::StreamExporter`]) and/or a [`Profiler`] attached.
//! [`Instruments`] carries both options so one extra parameter threads
//! through instead of four, and [`explore`] centralizes the
//! probe-type branching the [`Explorer`] builder requires.

use std::hash::Hash;
use std::sync::Arc;

use anonreg::{Machine, PidMap};
use anonreg_obs::{MemProbe, Profiler};
use anonreg_sim::prelude::*;

/// Optional instrumentation attached to an experiment run.
#[derive(Clone, Debug, Default)]
pub struct Instruments<'a> {
    /// Shared metrics sink, typically snapshotted live by a
    /// [`anonreg_obs::StreamExporter`].
    pub probe: Option<&'a MemProbe>,
    /// Wall-clock phase profiler; workers flush their phase trees here.
    pub profiler: Option<Arc<Profiler>>,
}

impl Instruments<'static> {
    /// No instrumentation — the silent default every plain experiment
    /// entry point uses.
    #[must_use]
    pub fn none() -> Self {
        Instruments::default()
    }
}

/// Explores `sim` under `mode` with whatever instruments are attached.
///
/// # Errors
///
/// Propagates [`ExploreError::StateLimitExceeded`].
pub fn explore<M>(
    sim: Simulation<M>,
    mode: SymmetryMode,
    threads: usize,
    max_states: usize,
    ins: &Instruments<'_>,
) -> Result<StateGraph<M>, ExploreError>
where
    M: Machine + Eq + Hash + PidMap,
    M::Value: PidMap,
{
    let mut explorer = Explorer::new(sim)
        .max_states(max_states)
        .parallelism(threads)
        .symmetry(mode);
    if let Some(profiler) = &ins.profiler {
        explorer = explorer.profiler(Arc::clone(profiler));
    }
    match ins.probe {
        Some(probe) => explorer.probe(probe).run(),
        None => explorer.run(),
    }
}

/// Explores `sim` in stats-only mode (no graph is materialised) with
/// POR and disk spill switches — the E19 scale path, where the state
/// space is the product, not the graph.
///
/// # Errors
///
/// Propagates [`ExploreError::StateLimitExceeded`].
pub fn explore_stats<M>(
    sim: Simulation<M>,
    por: bool,
    spill: bool,
    threads: usize,
    max_states: usize,
    ins: &Instruments<'_>,
) -> Result<ExploreStats, ExploreError>
where
    M: Machine + Eq + Hash,
{
    let mut explorer = Explorer::new(sim)
        .max_states(max_states)
        .parallelism(threads)
        .por(por)
        .spill(spill);
    if let Some(profiler) = &ins.profiler {
        explorer = explorer.profiler(Arc::clone(profiler));
    }
    match ins.probe {
        Some(probe) => explorer.probe(probe).run_stats(),
        None => explorer.run_stats(),
    }
}
