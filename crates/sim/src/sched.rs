//! Adversarial schedulers.
//!
//! A scheduler is the paper's adversary: it picks which process performs the
//! next atomic operation. All schedulers here are deterministic —
//! randomized sweeps take an explicit seed — so every counterexample they
//! find is replayable.

use anonreg_model::rng::Rng64;
use anonreg_model::Machine;

use crate::{SimError, Simulation, StepOutcome};

/// Drives the simulation with a caller-supplied chooser: at each step the
/// chooser sees the simulation and returns the slot to schedule, or `None`
/// to stop. Halted choices are skipped (they count against `max_steps` but
/// perform nothing). Returns the number of memory operations performed.
///
/// This is the most general adversary; the other functions in this module
/// are conveniences built on the same loop.
///
/// # Errors
///
/// Propagates [`SimError::NoSuchProcess`] from an out-of-range choice.
pub fn run_with<M, F>(
    sim: &mut Simulation<M>,
    mut choose: F,
    max_steps: usize,
) -> Result<usize, SimError>
where
    M: Machine,
    F: FnMut(&Simulation<M>) -> Option<usize>,
{
    let mut ops = 0;
    for _ in 0..max_steps {
        if sim.all_halted() {
            break;
        }
        let Some(proc) = choose(sim) else { break };
        if proc >= sim.process_count() {
            return Err(SimError::NoSuchProcess { proc });
        }
        if sim.is_halted(proc) {
            continue;
        }
        match sim.step(proc)? {
            StepOutcome::Halted | StepOutcome::Event => {}
            _ => ops += 1,
        }
    }
    Ok(ops)
}

/// Round-robin: processes take turns in slot order, skipping halted ones.
/// Runs until everyone halts or `max_steps` scheduling decisions have been
/// made. Returns the number of memory operations performed.
pub fn round_robin<M: Machine>(sim: &mut Simulation<M>, max_steps: usize) -> usize {
    let n = sim.process_count();
    let mut next = 0;
    run_with(
        sim,
        move |_| {
            let proc = next;
            next = (next + 1) % n;
            Some(proc)
        },
        max_steps,
    )
    .expect("round robin only chooses valid slots")
}

/// Lock-step: every round grants exactly one step to each non-halted
/// process, in slot order — the adversary from the proof of Theorem 3.4
/// ("we run the ℓ processes in lock steps"). Runs `rounds` rounds or until
/// everyone halts. Returns the number of memory operations performed.
pub fn lock_step<M: Machine>(sim: &mut Simulation<M>, rounds: usize) -> usize {
    let mut ops = 0;
    for _ in 0..rounds {
        if sim.all_halted() {
            break;
        }
        for proc in 0..sim.process_count() {
            if !sim.is_halted(proc) {
                match sim.step(proc).expect("slot is valid and not halted") {
                    StepOutcome::Halted | StepOutcome::Event => {}
                    _ => ops += 1,
                }
            }
        }
    }
    ops
}

/// Seeded uniformly-random scheduling: at each step a uniformly random
/// non-halted process moves. Runs until everyone halts or `max_steps`
/// decisions have been made. Returns the number of memory operations.
///
/// Determinism: the same seed always produces the same run.
pub fn random<M: Machine>(sim: &mut Simulation<M>, seed: u64, max_steps: usize) -> usize {
    let mut rng = Rng64::seed_from_u64(seed);
    let n = sim.process_count();
    run_with(
        sim,
        move |sim| {
            // Choose among non-halted slots only, uniformly.
            let alive = (0..n).filter(|&p| !sim.is_halted(p)).count();
            if alive == 0 {
                return None;
            }
            let mut k = rng.gen_index(alive);
            (0..n).find(|&p| {
                if sim.is_halted(p) {
                    false
                } else if k == 0 {
                    true
                } else {
                    k -= 1;
                    false
                }
            })
        },
        max_steps,
    )
    .expect("random scheduler only chooses valid slots")
}

/// Seeded random scheduling with *bursts*: the chosen process runs a random
/// number of consecutive steps (1..=`max_burst`) before the adversary picks
/// again. Long bursts approximate low contention and give obstruction-free
/// algorithms room to finish; short bursts maximize interleaving.
pub fn random_bursts<M: Machine>(
    sim: &mut Simulation<M>,
    seed: u64,
    max_burst: usize,
    max_steps: usize,
) -> usize {
    let mut rng = Rng64::seed_from_u64(seed);
    let n = sim.process_count();
    let mut current: Option<(usize, usize)> = None; // (proc, remaining)
    run_with(
        sim,
        move |sim| {
            if let Some((proc, remaining)) = current {
                if remaining > 0 && !sim.is_halted(proc) {
                    current = Some((proc, remaining - 1));
                    return Some(proc);
                }
            }
            let alive: Vec<usize> = (0..n).filter(|&p| !sim.is_halted(p)).collect();
            if alive.is_empty() {
                return None;
            }
            let proc = alive[rng.gen_index(alive.len())];
            let burst = rng.gen_range_inclusive(1, max_burst.max(1));
            current = Some((proc, burst - 1));
            Some(proc)
        },
        max_steps,
    )
    .expect("burst scheduler only chooses valid slots")
}

#[cfg(test)]
mod tests {
    use super::*;
    use anonreg_model::{Pid, Step, View};

    /// Halts after writing its pid `k` times into register 0.
    #[derive(Clone, Debug, PartialEq, Eq, Hash)]
    struct Stamper {
        pid: Pid,
        k: usize,
    }

    impl Machine for Stamper {
        type Value = u64;
        type Event = ();

        fn pid(&self) -> Pid {
            self.pid
        }

        fn register_count(&self) -> usize {
            1
        }

        fn resume(&mut self, _read: Option<u64>) -> Step<u64, ()> {
            if self.k == 0 {
                Step::Halt
            } else {
                self.k -= 1;
                Step::Write(0, self.pid.get())
            }
        }
    }

    fn sim_of(ks: &[usize]) -> Simulation<Stamper> {
        let mut b = Simulation::builder();
        for (i, &k) in ks.iter().enumerate() {
            b = b.process(
                Stamper {
                    pid: Pid::new(i as u64 + 1).unwrap(),
                    k,
                },
                View::identity(1),
            );
        }
        b.build().unwrap()
    }

    #[test]
    fn round_robin_interleaves_and_finishes() {
        let mut sim = sim_of(&[2, 2, 2]);
        let ops = round_robin(&mut sim, 1000);
        assert_eq!(ops, 6);
        assert!(sim.all_halted());
    }

    #[test]
    fn round_robin_respects_step_budget() {
        let mut sim = sim_of(&[100, 100]);
        let ops = round_robin(&mut sim, 10);
        assert_eq!(ops, 10);
        assert!(!sim.all_halted());
    }

    #[test]
    fn lock_step_gives_everyone_one_step_per_round() {
        let mut sim = sim_of(&[3, 3]);
        let ops = lock_step(&mut sim, 1);
        assert_eq!(ops, 2);
        let ops = lock_step(&mut sim, 10);
        assert_eq!(ops, 4);
        assert!(sim.all_halted());
    }

    #[test]
    fn random_is_deterministic_per_seed() {
        let trace_of = |seed: u64| {
            let mut sim = sim_of(&[3, 3, 3]);
            random(&mut sim, seed, 1000);
            format!("{}", sim.trace())
        };
        assert_eq!(trace_of(42), trace_of(42));
        // Different seeds almost surely give different interleavings.
        assert_ne!(trace_of(1), trace_of(2));
    }

    #[test]
    fn random_finishes_all_processes() {
        let mut sim = sim_of(&[5, 5, 5, 5]);
        let ops = random(&mut sim, 7, 10_000);
        assert_eq!(ops, 20);
        assert!(sim.all_halted());
    }

    #[test]
    fn bursts_run_consecutive_steps() {
        let mut sim = sim_of(&[4, 4]);
        let ops = random_bursts(&mut sim, 3, 4, 10_000);
        assert_eq!(ops, 8);
        assert!(sim.all_halted());
    }

    #[test]
    fn run_with_stops_on_none() {
        let mut sim = sim_of(&[10]);
        let ops = run_with(&mut sim, |_| None, 100).unwrap();
        assert_eq!(ops, 0);
    }

    #[test]
    fn run_with_rejects_bad_slot() {
        let mut sim = sim_of(&[1]);
        let err = run_with(&mut sim, |_| Some(5), 100).unwrap_err();
        assert!(matches!(err, SimError::NoSuchProcess { proc: 5 }));
    }
}
