//! Packing multi-field register records into single 64-bit words.
//!
//! The paper remarks (§4.1) that defining a register as a multi-field
//! record "is done only for convenience. The two values in these fields can
//! be encoded as a single value." [`Pack64`] is that encoding, which lets
//! the consensus records ride in one lock-free `AtomicU64`.

use anonreg::consensus::ConsRecord;

/// A value that fits losslessly into a `u64`, so it can live in a
/// [`PackedAtomicRegister`](crate::PackedAtomicRegister).
///
/// # Contract
///
/// `Self::unpack(v.pack()) == v` for every value the algorithm actually
/// writes. Implementations may *restrict* the representable range (e.g.
/// 32-bit identifiers) — they must then document the restriction and panic
/// loudly on out-of-range values rather than truncate silently.
pub trait Pack64: Sized {
    /// Encodes the value into a single word.
    ///
    /// # Panics
    ///
    /// Panics if the value is outside the implementation's representable
    /// range.
    fn pack(&self) -> u64;

    /// Decodes a previously packed value.
    fn unpack(word: u64) -> Self;
}

impl Pack64 for u64 {
    fn pack(&self) -> u64 {
        *self
    }

    fn unpack(word: u64) -> Self {
        word
    }
}

/// Consensus records pack as `id << 32 | val`; both fields must fit in 32
/// bits. `(0, 0)` — the untouched register — packs to `0`, preserving the
/// "initially all fields are 0" convention.
impl Pack64 for ConsRecord {
    fn pack(&self) -> u64 {
        assert!(
            self.id <= u64::from(u32::MAX) && self.val <= u64::from(u32::MAX),
            "packed consensus records need 32-bit ids and values, got ({}, {})",
            self.id,
            self.val
        );
        (self.id << 32) | self.val
    }

    fn unpack(word: u64) -> Self {
        ConsRecord {
            id: word >> 32,
            val: word & u64::from(u32::MAX),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn u64_is_identity() {
        for v in [0u64, 1, 42, u64::MAX] {
            assert_eq!(u64::unpack(v.pack()), v);
        }
    }

    #[test]
    fn cons_record_round_trips() {
        let samples = [
            ConsRecord { id: 0, val: 0 },
            ConsRecord { id: 1, val: 2 },
            ConsRecord {
                id: u64::from(u32::MAX),
                val: u64::from(u32::MAX),
            },
        ];
        for r in samples {
            assert_eq!(ConsRecord::unpack(r.pack()), r);
        }
    }

    #[test]
    fn untouched_record_packs_to_zero() {
        assert_eq!(ConsRecord::default().pack(), 0);
        assert_eq!(ConsRecord::unpack(0), ConsRecord::default());
    }

    #[test]
    #[should_panic(expected = "32-bit")]
    fn oversized_id_panics() {
        let r = ConsRecord {
            id: 1 << 33,
            val: 0,
        };
        let _ = r.pack();
    }

    #[test]
    #[should_panic(expected = "32-bit")]
    fn oversized_val_panics() {
        let r = ConsRecord {
            id: 1,
            val: 1 << 40,
        };
        let _ = r.pack();
    }
}
