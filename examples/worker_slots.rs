//! Scenario: dynamically arriving workers claim **dense** slot numbers.
//!
//! ```text
//! cargo run --release --example worker_slots
//! ```
//!
//! Workers arrive with sparse, huge identifiers (thread ids, UUIDs) but
//! need dense indices `1..=k` to address per-worker rows of a fixed stats
//! table. That is exactly *adaptive perfect renaming* (Figure 3): when only
//! `k` of the up-to-`n` potential workers show up, the acquired names are
//! `{1..k}` — no holes, no oversized table — and a second wave reuses the
//! remaining names `k+1..`.

use std::sync::atomic::{AtomicU64, Ordering};

use anonreg_model::Pid;
use anonreg_runtime::{AnonymousRenaming, RuntimeError};

const MAX_WORKERS: usize = 8;

fn main() -> Result<(), RuntimeError> {
    let renaming = AnonymousRenaming::new(MAX_WORKERS)?;
    // The stats table is sized for the maximum; adaptivity guarantees the
    // first k workers use only the first k rows.
    let stats: Vec<AtomicU64> = (0..MAX_WORKERS).map(|_| AtomicU64::new(0)).collect();

    // Wave 1: three workers arrive concurrently.
    let wave1 = [0xDEAD_BEEFu64, 0xFACE_FEED, 0x0BAD_CAFE];
    let assigned = std::thread::scope(|s| {
        let joins: Vec<_> = wave1
            .iter()
            .map(|&id| {
                let handle = renaming.handle(Pid::new(id).unwrap()).unwrap();
                let stats = &stats;
                s.spawn(move || {
                    let slot = handle.acquire();
                    // Work: bump our dense row a few times.
                    for _ in 0..100 {
                        stats[(slot - 1) as usize].fetch_add(1, Ordering::Relaxed);
                    }
                    (id, slot)
                })
            })
            .collect();
        joins
            .into_iter()
            .map(|j| j.join().unwrap())
            .collect::<Vec<_>>()
    });
    let mut wave1_slots: Vec<u32> = assigned.iter().map(|&(_, s)| s).collect();
    wave1_slots.sort_unstable();
    assert_eq!(
        wave1_slots,
        vec![1, 2, 3],
        "adaptive: 3 workers -> rows 1..3"
    );
    for (id, slot) in &assigned {
        println!("wave 1: worker {id:#x} -> slot {slot}");
    }

    // Wave 2: two more workers join later; they get the next dense slots.
    let wave2 = [0x1234u64, 0x5678];
    let assigned2 = std::thread::scope(|s| {
        let joins: Vec<_> = wave2
            .iter()
            .map(|&id| {
                let handle = renaming.handle(Pid::new(id).unwrap()).unwrap();
                s.spawn(move || (id, handle.acquire()))
            })
            .collect();
        joins
            .into_iter()
            .map(|j| j.join().unwrap())
            .collect::<Vec<_>>()
    });
    let mut all_slots = wave1_slots;
    for (id, slot) in &assigned2 {
        println!("wave 2: worker {id:#x} -> slot {slot}");
        all_slots.push(*slot);
    }
    all_slots.sort_unstable();
    assert_eq!(all_slots, vec![1, 2, 3, 4, 5], "5 workers occupy rows 1..5");

    let used_rows = stats
        .iter()
        .take(3)
        .map(|row| row.load(Ordering::Relaxed))
        .collect::<Vec<_>>();
    println!("stats rows for wave 1: {used_rows:?} (each 100)");
    assert!(used_rows.iter().all(|&v| v == 100));
    println!("dense slots assigned without prior agreement ✓");
    Ok(())
}
