//! Exhaustive verification of the §8-inspired hybrid mutex (m anonymous
//! registers + 1 named tie-breaker): THE correctness argument for
//! `anonreg::hybrid` — every claim it makes is decided here.

use anonreg::hybrid::{named_view, HybridMutex};
use anonreg::mutex::{MutexEvent, Section};
use anonreg::Pid;
use anonreg_sim::prelude::*;
use anonreg_sim::Simulation;

fn pid(n: u64) -> Pid {
    Pid::new(n).unwrap()
}

fn sim_for(m: usize, shift: usize) -> Simulation<HybridMutex> {
    // Process 0 scans the anonymous registers in identity order; process 1
    // in an order rotated by `shift`. The named T (index m) is fixed for
    // both — that is the single piece of agreement the hybrid model grants.
    let anon_identity: Vec<usize> = (0..m).collect();
    let anon_rotated: Vec<usize> = (0..m).map(|j| (j + shift) % m).collect();
    Simulation::builder()
        .process(
            HybridMutex::new(pid(1), m).unwrap(),
            named_view(m, anon_identity).unwrap(),
        )
        .process(
            HybridMutex::new(pid(2), m).unwrap(),
            named_view(m, anon_rotated).unwrap(),
        )
        .build()
        .unwrap()
}

#[test]
fn hybrid_is_safe_for_even_and_odd_m_all_rotations() {
    for m in [2usize, 3, 4] {
        for shift in 0..m {
            let graph = Explorer::new(sim_for(m, shift))
                .max_states(4_000_000)
                .run()
                .unwrap_or_else(|e| panic!("m={m} shift={shift}: {e}"));
            let both_in_cs = graph.find_state(|s| {
                s.machines()
                    .filter(|mach| mach.section() == Section::Critical)
                    .count()
                    >= 2
            });
            assert!(
                both_in_cs.is_none(),
                "mutual exclusion violated for m={m}, shift={shift}: schedule {:?}",
                both_in_cs.map(|id| graph.schedule_to(id))
            );
        }
    }
}

#[test]
fn hybrid_is_livelock_free_for_even_and_odd_m_all_rotations() {
    // The headline: even m, which livelocks Figure 1 (Theorem 3.1), is
    // deadlock-free once a single named register exists.
    for m in [2usize, 3, 4] {
        for shift in 0..m {
            let graph = Explorer::new(sim_for(m, shift))
                .max_states(4_000_000)
                .run()
                .unwrap_or_else(|e| panic!("m={m} shift={shift}: {e}"));
            let livelock = graph.find_fair_livelock(
                |mach| mach.section() == Section::Entry,
                |event| *event == MutexEvent::Enter,
            );
            assert!(
                livelock.is_none(),
                "fair livelock for m={m}, shift={shift} (component of {} states)",
                livelock.as_ref().map_or(0, Vec::len)
            );
        }
    }
}

#[test]
fn abortable_hybrid_preserves_safety() {
    // try-lock configurations of the hybrid mutex: safety must survive
    // every abort mix (aborting is the algorithm's own lose path plus the
    // tie-wait escape). m = 2 — the even case Figure 1 cannot do — keeps
    // the abort-enlarged state space tractable.
    for m in [2usize] {
        for aborters in [[true, false], [false, true], [true, true]] {
            let mut builder = Simulation::builder();
            for (i, &aborts) in aborters.iter().enumerate() {
                let mut machine = HybridMutex::new(pid(i as u64 + 1), m).unwrap();
                if aborts {
                    machine = machine.with_abort_after(1);
                }
                let anon: Vec<usize> = (0..m).map(|j| (j + i) % m).collect();
                builder = builder.process(machine, named_view(m, anon).unwrap());
            }
            let sim = builder.build().unwrap();
            let graph = Explorer::new(sim)
                .max_states(6_000_000)
                .crashes(false)
                .run()
                .unwrap();
            let both = graph.find_state(|s| {
                s.machines()
                    .filter(|mach| mach.section() == Section::Critical)
                    .count()
                    >= 2
            });
            assert!(both.is_none(), "m={m} aborters={aborters:?}");
        }
    }
}
