//! E14 — parallel model-checking scalability on the Figure 2 consensus
//! state space.
//!
//! Every verdict in this reproduction rests on exhaustively enumerating
//! reachable configurations, and anonymous-register spaces explode with
//! `n` and the register count. This experiment measures how far the
//! breadth-parallel [`Explorer`] engine (sharded dedup table, per-worker
//! work-stealing deques, interned states) pushes that wall: the same
//! Figure 2 consensus space is explored at increasing thread counts and
//! each run must reproduce the sequential run's exact state and edge
//! counts — a speedup only counts if the graph is identical.
//!
//! The default full-scale workload is `n = 3` with 2 registers
//! (under-provisioned). That choice is deliberate: at `n = 3` the
//! provisioned `2n − 1 = 5`-register space exceeds several million states
//! and does not fit CI-class memory, while the 2-register space
//! (~390 000 states, ~1.1 M transitions) is the largest n = 3 Figure 2
//! space that completes everywhere. Exploration cost per state is
//! identical whether or not agreement holds, so the under-provisioned
//! space is a faithful scaling workload — and `check explore --registers`
//! lets bigger machines run the provisioned one.

use std::time::{Duration, Instant};

use anonreg::consensus::AnonConsensus;
use anonreg::{Pid, View};
use anonreg_sim::prelude::*;

use crate::benchjson::BenchMetric;
use crate::live::{self, Instruments};
use crate::table::Table;

/// One timed exploration of the consensus space.
#[derive(Clone, Debug)]
pub struct Row {
    /// Number of consensus processes.
    pub n: usize,
    /// Number of anonymous registers.
    pub registers: usize,
    /// Explorer worker threads (`1` = the sequential engine).
    pub threads: usize,
    /// Distinct reachable states.
    pub states: usize,
    /// Transitions.
    pub edges: usize,
    /// Wall time of the exploration.
    pub elapsed: Duration,
}

impl Row {
    /// Wall-clock speedup relative to `baseline` (normally the
    /// single-thread row of the same workload).
    #[must_use]
    pub fn speedup_over(&self, baseline: &Row) -> f64 {
        baseline.elapsed.as_secs_f64() / self.elapsed.as_secs_f64().max(1e-9)
    }
}

/// Builds the Figure 2 consensus simulation explored by this experiment:
/// `n` processes with distinct inputs `1..=n`, `registers` anonymous
/// registers, process `i`'s view rotated by `i · shift`.
///
/// # Panics
///
/// Panics if `n` or `registers` is zero.
#[must_use]
pub fn consensus_sim(n: usize, registers: usize, shift: usize) -> Simulation<AnonConsensus> {
    let mut builder = Simulation::builder();
    for i in 0..n {
        builder = builder.process(
            AnonConsensus::new(Pid::new(i as u64 + 1).unwrap(), n, i as u64 + 1)
                .unwrap()
                .with_registers(registers),
            View::rotated(registers, (i * shift) % registers),
        );
    }
    builder.build().unwrap()
}

/// Explores the workload once at the given thread count.
///
/// # Errors
///
/// Propagates [`ExploreError::StateLimitExceeded`] if the space exceeds
/// `max_states`.
pub fn timed_explore(
    n: usize,
    registers: usize,
    threads: usize,
    max_states: usize,
) -> Result<Row, ExploreError> {
    timed_explore_with(n, registers, threads, max_states, &Instruments::none())
}

/// [`timed_explore`] with live instrumentation (shared probe and/or
/// profiler) attached to the run.
///
/// # Errors
///
/// Propagates [`ExploreError::StateLimitExceeded`].
pub fn timed_explore_with(
    n: usize,
    registers: usize,
    threads: usize,
    max_states: usize,
    ins: &Instruments<'_>,
) -> Result<Row, ExploreError> {
    let sim = consensus_sim(n, registers, 1);
    let start = Instant::now();
    let graph = live::explore(sim, SymmetryMode::Off, threads, max_states, ins)?;
    Ok(Row {
        n,
        registers,
        threads,
        states: graph.state_count(),
        edges: graph.edge_count(),
        elapsed: start.elapsed(),
    })
}

/// The scaling sweep: the workload explored once per entry of
/// `thread_counts` (the first entry should be `1`, the sequential
/// baseline).
///
/// # Errors
///
/// Propagates [`ExploreError::StateLimitExceeded`].
///
/// # Panics
///
/// Panics if any run disagrees with the first on state or edge counts —
/// a parallel exploration that loses or invents states is a checker bug,
/// not a measurement.
pub fn rows(
    n: usize,
    registers: usize,
    thread_counts: &[usize],
    max_states: usize,
) -> Result<Vec<Row>, ExploreError> {
    rows_with(
        n,
        registers,
        thread_counts,
        max_states,
        &Instruments::none(),
    )
}

/// [`rows`] with live instrumentation attached to every exploration.
///
/// # Errors
///
/// Propagates [`ExploreError::StateLimitExceeded`].
///
/// # Panics
///
/// Same divergence assertion as [`rows`].
pub fn rows_with(
    n: usize,
    registers: usize,
    thread_counts: &[usize],
    max_states: usize,
    ins: &Instruments<'_>,
) -> Result<Vec<Row>, ExploreError> {
    let mut out: Vec<Row> = Vec::new();
    for &threads in thread_counts {
        let row = timed_explore_with(n, registers, threads, max_states, ins)?;
        if let Some(first) = out.first() {
            assert_eq!(
                (row.states, row.edges),
                (first.states, first.edges),
                "parallel exploration at {threads} threads diverged from the baseline graph"
            );
        }
        out.push(row);
    }
    Ok(out)
}

/// Renders the scaling table.
#[must_use]
pub fn render(rows: &[Row]) -> String {
    let mut t = Table::new(vec![
        "n",
        "registers",
        "threads",
        "states",
        "edges",
        "elapsed",
        "speedup",
    ]);
    let baseline = rows.first();
    for r in rows {
        t.row(vec![
            r.n.to_string(),
            r.registers.to_string(),
            r.threads.to_string(),
            r.states.to_string(),
            r.edges.to_string(),
            format!("{:?}", r.elapsed),
            baseline.map_or_else(String::new, |b| format!("{:.2}x", r.speedup_over(b))),
        ]);
    }
    t.render()
}

/// Machine-readable metrics for the given rows (experiment `E14`).
#[must_use]
pub fn metrics(rows: &[Row]) -> Vec<BenchMetric> {
    let mut out = Vec::new();
    let baseline = rows.first();
    for r in rows {
        let base = format!("consensus_n{}_r{}_t{}", r.n, r.registers, r.threads);
        out.push(BenchMetric::new(
            "E14",
            "consensus",
            format!("{base}_states"),
            r.states as f64,
            "states",
        ));
        out.push(BenchMetric::new(
            "E14",
            "consensus",
            format!("{base}_edges"),
            r.edges as f64,
            "edges",
        ));
        out.push(BenchMetric::new(
            "E14",
            "consensus",
            format!("{base}_time"),
            r.elapsed.as_secs_f64() * 1000.0,
            "ms",
        ));
        if let Some(b) = baseline {
            out.push(BenchMetric::new(
                "E14",
                "consensus",
                format!("{base}_speedup"),
                r.speedup_over(b),
                "x",
            ));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_sweep_counts_agree() {
        // n = 2 fully provisioned is small enough for a test.
        let rows = rows(2, 3, &[1, 2], 200_000).unwrap();
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].states, rows[1].states);
        assert_eq!(rows[0].edges, rows[1].edges);
        assert!(rows[0].states > 100);
    }

    #[test]
    fn render_and_metrics_cover_all_rows() {
        let rows = rows(2, 2, &[1, 2], 200_000).unwrap();
        let table = render(&rows);
        assert!(table.contains("speedup"));
        let metrics = metrics(&rows);
        // states/edges/time for every row, speedup for every row.
        assert_eq!(metrics.len(), 4 * rows.len());
        assert!(metrics.iter().all(|m| m.experiment == "E14"));
    }

    #[test]
    fn limit_error_propagates() {
        assert!(matches!(
            timed_explore(2, 3, 2, 10),
            Err(ExploreError::StateLimitExceeded { limit: 10 })
        ));
    }
}
