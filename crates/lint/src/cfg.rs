//! Control-flow-graph extraction by exhaustive abstract resumption.
//!
//! A [`Machine`](anonreg_model::Machine) is an opaque coroutine: the only
//! way to learn its control structure is to run it. This module runs it
//! *abstractly*: from the initial state it resumes clones of the machine
//! with every read result drawn from a caller-supplied finite **value
//! domain**, deduplicating machine states, until the reachable state space
//! is exhausted. The result is a per-process control-flow graph whose nodes
//! are machine states and whose edges are the steps the machine emitted —
//! the object all the lints in this crate analyze.
//!
//! The domain is an abstraction choice, not a soundness claim: a lint
//! verdict is exhaustive *over the chosen domain*. For the paper's
//! algorithms small domains suffice because the machines branch on
//! equality with their own identifier, not on value magnitude (the
//! symmetry restriction of §2), so `{initial, own-id, other-id}` already
//! drives every branch.

use std::collections::hash_map::Entry;
use std::collections::{HashMap, VecDeque};
use std::hash::Hash;
use std::panic::{catch_unwind, AssertUnwindSafe};

use anonreg_model::{Machine, Step};

/// Parameters of an abstract resumption.
#[derive(Clone, Debug)]
pub struct CfgConfig<V> {
    /// Finite set of values a `Read` may return. Should include the
    /// register initial value (`V::default()`) — a solo process always
    /// reads it first — plus every value the algorithm can write.
    pub domain: Vec<V>,
    /// Exploration cap on CFG nodes; extraction fails with
    /// [`CfgError::StateSpaceExceeded`] beyond it.
    pub max_nodes: usize,
}

impl<V> CfgConfig<V> {
    /// A configuration over `domain` with the default node cap (100 000).
    #[must_use]
    pub fn new(domain: Vec<V>) -> Self {
        CfgConfig {
            domain,
            max_nodes: 100_000,
        }
    }
}

/// Why extraction could not complete.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CfgError {
    /// The reachable abstract state space exceeded
    /// [`CfgConfig::max_nodes`].
    StateSpaceExceeded {
        /// The cap that was hit.
        max_nodes: usize,
    },
    /// The value domain is empty but the machine asked to read.
    EmptyDomain,
}

impl std::fmt::Display for CfgError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CfgError::StateSpaceExceeded { max_nodes } => {
                write!(f, "abstract state space exceeds {max_nodes} nodes")
            }
            CfgError::EmptyDomain => {
                write!(f, "machine reads, but the value domain is empty")
            }
        }
    }
}

impl std::error::Error for CfgError {}

/// One transition of the extracted graph.
#[derive(Clone, Debug)]
pub struct CfgEdge<M: Machine> {
    /// The read result fed to `resume` (`None` everywhere except after a
    /// `Read` step).
    pub input: Option<M::Value>,
    /// What the machine did.
    pub kind: EdgeKind<M>,
}

/// The observed outcome of one abstract `resume` call.
#[derive(Clone, Debug)]
pub enum EdgeKind<M: Machine> {
    /// A normal step to a successor node.
    Step {
        /// The emitted step.
        step: Step<M::Value, M::Event>,
        /// Index of the successor node in [`Cfg::nodes`].
        target: usize,
    },
    /// `resume` panicked on protocol-correct input.
    Panicked {
        /// Rendered panic payload.
        message: String,
    },
    /// Two resumptions of clones of the same state with the same input
    /// produced different outcomes — `resume` is not a pure function of
    /// (state, input).
    NonDeterministic {
        /// Rendered first outcome.
        first: String,
        /// Rendered second outcome.
        second: String,
    },
}

/// One node of the extracted graph: a distinct (machine state, mode) pair.
#[derive(Clone, Debug)]
pub struct CfgNode<M: Machine> {
    /// The machine state at this node, *before* its next `resume`.
    pub state: M,
    /// `true` if the last step was a `Read` — the next resume takes
    /// `Some(value)` for each domain value.
    pub awaiting_read: bool,
    /// `true` if the machine emitted `Halt`; halted nodes have no edges.
    pub halted: bool,
    /// Outgoing transitions, one per protocol-correct input.
    pub edges: Vec<CfgEdge<M>>,
    /// `(node, edge)` that first reached this node (`None` for the root);
    /// following parents to the root yields a replayable witness path.
    pub parent: Option<(usize, usize)>,
}

/// The control-flow graph of one machine over a finite value domain.
#[derive(Clone, Debug)]
pub struct Cfg<M: Machine> {
    nodes: Vec<CfgNode<M>>,
}

impl<M> Cfg<M>
where
    M: Machine + Eq + Hash,
{
    /// Extracts the CFG of `machine` by exhaustive abstract resumption
    /// over `config.domain`.
    ///
    /// Protocol anomalies (panics, nondeterminism) do not abort
    /// extraction; they are recorded as [`EdgeKind::Panicked`] /
    /// [`EdgeKind::NonDeterministic`] edges and left to the lints to
    /// interpret.
    ///
    /// # Errors
    ///
    /// [`CfgError::StateSpaceExceeded`] if the reachable state space is
    /// larger than `config.max_nodes`; [`CfgError::EmptyDomain`] if the
    /// machine reads and the domain is empty.
    pub fn extract(machine: M, config: &CfgConfig<M::Value>) -> Result<Self, CfgError> {
        let mut nodes: Vec<CfgNode<M>> = vec![CfgNode {
            state: machine.clone(),
            awaiting_read: false,
            halted: false,
            edges: Vec::new(),
            parent: None,
        }];
        let mut index: HashMap<(M, bool, bool), usize> = HashMap::new();
        index.insert((machine, false, false), 0);
        let mut queue: VecDeque<usize> = VecDeque::from([0]);

        while let Some(at) = queue.pop_front() {
            if nodes[at].halted {
                continue;
            }
            let inputs: Vec<Option<M::Value>> = if nodes[at].awaiting_read {
                if config.domain.is_empty() {
                    return Err(CfgError::EmptyDomain);
                }
                config.domain.iter().cloned().map(Some).collect()
            } else {
                vec![None]
            };
            for input in inputs {
                let kind = Self::observe(&nodes[at].state, input.clone());
                let kind = match kind {
                    Observed::Step { step, next } => {
                        let halted = matches!(step, Step::Halt);
                        let awaiting = matches!(step, Step::Read(_));
                        let edge_idx = nodes[at].edges.len();
                        let target = match index.entry((next.clone(), awaiting, halted)) {
                            Entry::Occupied(o) => *o.get(),
                            Entry::Vacant(v) => {
                                if nodes.len() >= config.max_nodes {
                                    return Err(CfgError::StateSpaceExceeded {
                                        max_nodes: config.max_nodes,
                                    });
                                }
                                let id = nodes.len();
                                nodes.push(CfgNode {
                                    state: next,
                                    awaiting_read: awaiting,
                                    halted,
                                    edges: Vec::new(),
                                    parent: Some((at, edge_idx)),
                                });
                                queue.push_back(id);
                                v.insert(id);
                                id
                            }
                        };
                        EdgeKind::Step { step, target }
                    }
                    Observed::Panicked { message } => EdgeKind::Panicked { message },
                    Observed::NonDeterministic { first, second } => {
                        EdgeKind::NonDeterministic { first, second }
                    }
                };
                nodes[at].edges.push(CfgEdge {
                    input: input.clone(),
                    kind,
                });
            }
        }
        Ok(Cfg { nodes })
    }

    /// Resumes two fresh clones of `state` with `input` and reports what
    /// happened, flagging divergence between the two runs.
    fn observe(state: &M, input: Option<M::Value>) -> Observed<M> {
        let run = |mut m: M, input: Option<M::Value>| {
            catch_unwind(AssertUnwindSafe(move || {
                let step = m.resume(input);
                (step, m)
            }))
        };
        let first = run(state.clone(), input.clone());
        let second = run(state.clone(), input);
        match (first, second) {
            (Ok((step_a, next_a)), Ok((step_b, next_b))) => {
                if step_a == step_b && next_a == next_b {
                    Observed::Step {
                        step: step_a,
                        next: next_a,
                    }
                } else {
                    Observed::NonDeterministic {
                        first: format!("{step_a:?} -> {next_a:?}"),
                        second: format!("{step_b:?} -> {next_b:?}"),
                    }
                }
            }
            (Err(payload), _) | (_, Err(payload)) => Observed::Panicked {
                message: panic_message(&payload),
            },
        }
    }

    /// All nodes; index 0 is the initial state.
    #[must_use]
    pub fn nodes(&self) -> &[CfgNode<M>] {
        &self.nodes
    }

    /// The node count.
    #[must_use]
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// `false` — a CFG always contains at least the initial node.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// The replayable path from the root to `node`: the `(input, step)`
    /// pairs, rendered, that a driver would feed/observe to reproduce the
    /// state. Empty for the root.
    #[must_use]
    pub fn witness_to(&self, node: usize) -> Vec<String> {
        let mut path = Vec::new();
        let mut at = node;
        while let Some((parent, edge)) = self.nodes[at].parent {
            path.push(render_edge(&self.nodes[parent].edges[edge]));
            at = parent;
        }
        path.reverse();
        path
    }

    /// Like [`witness_to`](Cfg::witness_to), extended with one final
    /// rendered transition (for failures that happen *on* an edge).
    #[must_use]
    pub fn witness_through(&self, node: usize, edge: usize) -> Vec<String> {
        let mut path = self.witness_to(node);
        path.push(render_edge(&self.nodes[node].edges[edge]));
        path
    }
}

/// Renders one transition for witness output.
fn render_edge<M: Machine>(edge: &CfgEdge<M>) -> String {
    let input = match &edge.input {
        Some(v) => format!("resume(Some({v:?}))"),
        None => "resume(None)".to_string(),
    };
    match &edge.kind {
        EdgeKind::Step { step, .. } => format!("{input} => {step:?}"),
        EdgeKind::Panicked { message } => format!("{input} => panic: {message}"),
        EdgeKind::NonDeterministic { first, second } => {
            format!("{input} => nondeterministic: {first} vs {second}")
        }
    }
}

enum Observed<M: Machine> {
    Step {
        step: Step<M::Value, M::Event>,
        next: M,
    },
    Panicked {
        message: String,
    },
    NonDeterministic {
        first: String,
        second: String,
    },
}

/// Best-effort rendering of a panic payload.
pub(crate) fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "<non-string panic payload>".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use anonreg_model::Pid;

    /// Reads register 0, writes the value + 1 back if it is < 2, halts.
    #[derive(Clone, Debug, PartialEq, Eq, Hash)]
    struct Bumper {
        pid: Pid,
        awaiting: bool,
        done: bool,
    }

    impl Machine for Bumper {
        type Value = u64;
        type Event = ();

        fn pid(&self) -> Pid {
            self.pid
        }

        fn register_count(&self) -> usize {
            1
        }

        fn resume(&mut self, read: Option<u64>) -> Step<u64, ()> {
            if self.done {
                return Step::Halt;
            }
            if self.awaiting {
                self.awaiting = false;
                self.done = true;
                let v = read.expect("read result");
                if v < 2 {
                    Step::Write(0, v + 1)
                } else {
                    Step::Halt
                }
            } else {
                self.awaiting = true;
                Step::Read(0)
            }
        }
    }

    fn bumper() -> Bumper {
        Bumper {
            pid: Pid::new(1).unwrap(),
            awaiting: false,
            done: false,
        }
    }

    #[test]
    fn extracts_branching_on_the_domain() {
        let cfg = Cfg::extract(bumper(), &CfgConfig::new(vec![0, 1, 2])).unwrap();
        // Root --Read--> awaiting node with 3 edges (one per domain value).
        let awaiting = cfg
            .nodes()
            .iter()
            .find(|n| n.awaiting_read)
            .expect("awaiting node");
        assert_eq!(awaiting.edges.len(), 3);
        // Values 0 and 1 write, value 2 halts directly.
        let steps: Vec<_> = awaiting
            .edges
            .iter()
            .map(|e| match &e.kind {
                EdgeKind::Step { step, .. } => step.clone(),
                other => panic!("unexpected {other:?}"),
            })
            .collect();
        assert_eq!(steps[0], Step::Write(0, 1));
        assert_eq!(steps[1], Step::Write(0, 2));
        assert_eq!(steps[2], Step::Halt);
    }

    #[test]
    fn witness_paths_replay_from_the_root() {
        let cfg = Cfg::extract(bumper(), &CfgConfig::new(vec![0])).unwrap();
        let halted = cfg
            .nodes()
            .iter()
            .position(|n| n.halted)
            .expect("halt is reachable");
        let witness = cfg.witness_to(halted);
        assert!(!witness.is_empty());
        assert!(witness[0].contains("Read(0)"), "{witness:?}");
    }

    #[test]
    fn node_cap_is_enforced() {
        let err = Cfg::extract(
            bumper(),
            &CfgConfig {
                domain: vec![0, 1, 2],
                max_nodes: 2,
            },
        )
        .unwrap_err();
        assert_eq!(err, CfgError::StateSpaceExceeded { max_nodes: 2 });
    }

    #[test]
    fn empty_domain_is_rejected_when_reads_happen() {
        let err = Cfg::extract(bumper(), &CfgConfig::new(vec![])).unwrap_err();
        assert_eq!(err, CfgError::EmptyDomain);
    }
}
