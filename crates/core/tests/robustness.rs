//! Robustness properties: the machines must behave sanely — in-range
//! register indices, no panics, protocol-conformant steps — even when the
//! shared memory holds arbitrary garbage (e.g. values written by unrelated
//! processes with wild identifiers).
//!
//! Randomized with the workspace's seeded [`Rng64`] (fixed seeds, fully
//! replayable, no external dependencies).

use anonreg::consensus::{AnonConsensus, ConsRecord};
use anonreg::hybrid::HybridMutex;
use anonreg::mutex::AnonMutex;
use anonreg::ordered::OrderedMutex;
use anonreg::renaming::{AnonRenaming, RenRecord};
use anonreg::{Machine, Pid, Step};
use anonreg_model::rng::Rng64;

const CASES: usize = 96;

/// Drives a machine for `budget` steps against arbitrary register contents,
/// checking every emitted index is in range and the protocol is respected.
fn drive_against<M: Machine>(mut machine: M, mut registers: Vec<M::Value>, budget: usize) {
    let m = machine.register_count();
    assert_eq!(registers.len(), m);
    let mut pending: Option<M::Value> = None;
    for _ in 0..budget {
        match machine.resume(pending.take()) {
            Step::Read(j) => {
                assert!(j < m, "read index {j} out of range (m={m})");
                pending = Some(registers[j].clone());
            }
            Step::Write(j, v) => {
                assert!(j < m, "write index {j} out of range (m={m})");
                registers[j] = v;
            }
            Step::Event(_) => {}
            Step::Halt => break,
        }
    }
}

/// `m` arbitrary small register values: zero with probability ~1/2,
/// otherwise uniform in `1..50` — mirroring the original generator.
fn arbitrary_u64_regs(rng: &mut Rng64, m: usize) -> Vec<u64> {
    (0..m)
        .map(|_| {
            if rng.next_u64() & 1 == 0 {
                0
            } else {
                rng.gen_range_inclusive(1, 49) as u64
            }
        })
        .collect()
}

#[test]
fn mutex_tolerates_garbage_memory() {
    let mut rng = Rng64::seed_from_u64(0xAB0B);
    for _ in 0..CASES {
        let m = rng.gen_range_inclusive(1, 6);
        let regs = arbitrary_u64_regs(&mut rng, m);
        let machine = AnonMutex::new(Pid::new(9).unwrap(), m)
            .unwrap()
            .with_cycles(2);
        drive_against(machine, regs, 5_000);
    }
}

#[test]
fn ordered_mutex_tolerates_garbage_memory() {
    let mut rng = Rng64::seed_from_u64(0x0DD);
    for _ in 0..CASES {
        let m = rng.gen_range_inclusive(2, 6);
        let regs = arbitrary_u64_regs(&mut rng, m);
        let machine = OrderedMutex::new(Pid::new(9).unwrap(), m)
            .unwrap()
            .with_cycles(2);
        drive_against(machine, regs, 5_000);
    }
}

#[test]
fn hybrid_mutex_tolerates_garbage_memory() {
    let mut rng = Rng64::seed_from_u64(0x4B1D);
    for _ in 0..CASES {
        let m = rng.gen_range_inclusive(2, 5);
        let regs = arbitrary_u64_regs(&mut rng, m + 1);
        let machine = HybridMutex::new(Pid::new(9).unwrap(), m)
            .unwrap()
            .with_cycles(2);
        drive_against(machine, regs, 5_000);
    }
}

#[test]
fn consensus_tolerates_garbage_memory() {
    let mut rng = Rng64::seed_from_u64(0xC05);
    for _ in 0..CASES {
        let n = rng.gen_range_inclusive(1, 4);
        let m = 2 * n - 1;
        let regs: Vec<ConsRecord> = (0..m)
            .map(|_| ConsRecord {
                id: rng.gen_index(20) as u64,
                val: rng.gen_index(20) as u64,
            })
            .collect();
        let machine = AnonConsensus::new(Pid::new(9).unwrap(), n, 7).unwrap();
        drive_against(machine, regs, 10_000);
    }
}

#[test]
fn renaming_tolerates_garbage_memory() {
    let mut rng = Rng64::seed_from_u64(0x4EA);
    for _ in 0..CASES {
        let n = rng.gen_range_inclusive(1, 3);
        let m = 2 * n - 1;
        let hist_id = rng.gen_range_inclusive(1, 19) as u64;
        let hist_round = rng.gen_range_inclusive(1, 5) as u32;
        let regs: Vec<RenRecord> = (0..m)
            .map(|_| {
                let id = rng.gen_index(20) as u64;
                let round = rng.gen_index(6) as u32;
                let mut record = RenRecord {
                    id,
                    val: id,
                    round,
                    history: Default::default(),
                };
                if round > 1 {
                    record.history.insert((hist_id, hist_round));
                }
                record
            })
            .collect();
        let machine = AnonRenaming::new(Pid::new(9).unwrap(), n).unwrap();
        drive_against(machine, regs, 20_000);
    }
}

/// The machines never hand out a `Some` read result unprompted: after a
/// Write or Event the next resume must accept `None` (this is implicit
/// in `drive_against`, which always passes `None` there — a machine
/// that panics on that protocol violates the `Machine` contract).
#[test]
fn consensus_under_provisioned_still_behaves() {
    let mut rng = Rng64::seed_from_u64(0x5EED5);
    for _ in 0..CASES {
        let n = rng.gen_range_inclusive(2, 4);
        let r = rng.gen_range_inclusive(1, 3);
        let registers = r.min(2 * n - 2);
        let machine = AnonConsensus::new(Pid::new(3).unwrap(), n, 5)
            .unwrap()
            .with_registers(registers);
        let regs = vec![ConsRecord::default(); registers];
        drive_against(machine, regs, 10_000);
    }
}
