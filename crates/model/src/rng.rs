//! A small deterministic pseudo-random number generator.
//!
//! Every randomized component in this workspace — random schedulers, random
//! register views, randomized sweeps — takes an explicit seed so that any
//! counterexample it finds is replayable. [`Rng64`] is the shared generator
//! behind those seeds: a [SplitMix64] stream, 8 bytes of state, no external
//! dependencies, identical output on every platform.
//!
//! It is emphatically **not** cryptographic; it exists for reproducible
//! experiments and adversarial schedules, nothing else.
//!
//! [SplitMix64]: https://prng.di.unimi.it/splitmix64.c
//!
//! # Example
//!
//! ```
//! use anonreg_model::rng::Rng64;
//!
//! let mut a = Rng64::seed_from_u64(42);
//! let mut b = Rng64::seed_from_u64(42);
//! assert_eq!(a.next_u64(), b.next_u64()); // same seed, same stream
//! let perm = a.permutation(5);
//! let mut sorted = perm.clone();
//! sorted.sort_unstable();
//! assert_eq!(sorted, vec![0, 1, 2, 3, 4]);
//! ```

/// A deterministic 64-bit pseudo-random number generator (`SplitMix64`).
///
/// The same seed always produces the same stream, on every platform and in
/// every build profile — the property the replayable adversaries rely on.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Rng64 {
    state: u64,
}

impl Rng64 {
    /// Creates a generator from a 64-bit seed.
    #[must_use]
    pub fn seed_from_u64(seed: u64) -> Self {
        Rng64 { state: seed }
    }

    /// The next 64 bits of the stream.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// A uniformly random index in `0..bound`.
    ///
    /// Uses rejection sampling, so the distribution is exactly uniform.
    ///
    /// # Panics
    ///
    /// Panics if `bound == 0`.
    pub fn gen_index(&mut self, bound: usize) -> usize {
        assert!(bound > 0, "gen_index needs a nonempty range");
        let bound = bound as u64;
        // Largest multiple of `bound` that fits in a u64; values at or above
        // it would bias the result and are rejected.
        let zone = u64::MAX - (u64::MAX % bound);
        loop {
            let raw = self.next_u64();
            if raw < zone {
                return usize::try_from(raw % bound).expect("bound fits in usize");
            }
        }
    }

    /// A uniformly random value in the inclusive range `lo..=hi`.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi`.
    pub fn gen_range_inclusive(&mut self, lo: usize, hi: usize) -> usize {
        assert!(lo <= hi, "gen_range_inclusive needs lo <= hi");
        lo + self.gen_index(hi - lo + 1)
    }

    /// Shuffles a slice in place (Fisher–Yates).
    pub fn shuffle<T>(&mut self, slice: &mut [T]) {
        for i in (1..slice.len()).rev() {
            let j = self.gen_index(i + 1);
            slice.swap(i, j);
        }
    }

    /// A uniformly random permutation of `0..m`, ready for
    /// [`View::from_perm`](crate::View::from_perm).
    #[must_use]
    pub fn permutation(&mut self, m: usize) -> Vec<usize> {
        let mut perm: Vec<usize> = (0..m).collect();
        self.shuffle(&mut perm);
        perm
    }

    /// Derives an independent generator from this one (split), so helpers
    /// can consume randomness without perturbing the parent stream's
    /// position-sensitive replay.
    pub fn fork(&mut self) -> Rng64 {
        Rng64 {
            state: self.next_u64() ^ 0x6a09_e667_f3bc_c909,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = Rng64::seed_from_u64(7);
        let mut b = Rng64::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = Rng64::seed_from_u64(1);
        let mut b = Rng64::seed_from_u64(2);
        let sa: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let sb: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        assert_ne!(sa, sb);
    }

    #[test]
    fn gen_index_stays_in_bounds_and_covers() {
        let mut rng = Rng64::seed_from_u64(3);
        let mut seen = [false; 5];
        for _ in 0..500 {
            let k = rng.gen_index(5);
            assert!(k < 5);
            seen[k] = true;
        }
        assert!(seen.iter().all(|&s| s), "all 5 values appear in 500 draws");
    }

    #[test]
    fn gen_range_inclusive_hits_both_ends() {
        let mut rng = Rng64::seed_from_u64(4);
        let mut lo_seen = false;
        let mut hi_seen = false;
        for _ in 0..500 {
            let k = rng.gen_range_inclusive(1, 4);
            assert!((1..=4).contains(&k));
            lo_seen |= k == 1;
            hi_seen |= k == 4;
        }
        assert!(lo_seen && hi_seen);
    }

    #[test]
    #[should_panic(expected = "nonempty range")]
    fn gen_index_rejects_zero_bound() {
        let _ = Rng64::seed_from_u64(0).gen_index(0);
    }

    #[test]
    fn permutation_is_a_permutation() {
        let mut rng = Rng64::seed_from_u64(9);
        for m in [0, 1, 2, 8, 33] {
            let perm = rng.permutation(m);
            let mut sorted = perm.clone();
            sorted.sort_unstable();
            assert_eq!(sorted, (0..m).collect::<Vec<_>>());
        }
    }

    #[test]
    fn permutations_vary_across_draws() {
        let mut rng = Rng64::seed_from_u64(10);
        let draws: Vec<Vec<usize>> = (0..10).map(|_| rng.permutation(6)).collect();
        assert!(draws.windows(2).any(|w| w[0] != w[1]));
    }

    #[test]
    fn fork_is_independent() {
        let mut parent = Rng64::seed_from_u64(11);
        let mut child = parent.fork();
        assert_ne!(parent.next_u64(), child.next_u64());
    }
}
