//! Property-based tests for the model vocabulary.

use anonreg_model::trace::{Trace, TraceOp};
use anonreg_model::{Pid, PidMap, View};
use proptest::prelude::*;

/// Strategy: a random permutation of `0..m` as a `View`.
fn perm(m: usize) -> impl Strategy<Value = View> {
    Just(()).prop_perturb(move |(), mut rng| {
        let mut p: Vec<usize> = (0..m).collect();
        for i in (1..m).rev() {
            let j = (rng.next_u64() % (i as u64 + 1)) as usize;
            p.swap(i, j);
        }
        View::from_perm(p).expect("shuffled range is a permutation")
    })
}

fn view_pair() -> impl Strategy<Value = (View, View)> {
    (1usize..10).prop_flat_map(|m| (perm(m), perm(m)))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn from_perm_accepts_exactly_permutations(mut raw in proptest::collection::vec(0usize..16, 0..10)) {
        let m = raw.len();
        let is_permutation = {
            let mut seen = vec![false; m];
            raw.iter().all(|&x| {
                if x < m && !seen[x] {
                    seen[x] = true;
                    true
                } else {
                    false
                }
            })
        };
        prop_assert_eq!(View::from_perm(raw.clone()).is_ok(), is_permutation);
        // Sorting a duplicate-free in-range vector makes it the identity.
        if is_permutation {
            raw.sort_unstable();
            prop_assert_eq!(View::from_perm(raw).unwrap(), View::identity(m));
        }
    }

    #[test]
    fn compose_is_associative((a, b) in view_pair(), seed in any::<u64>()) {
        let m = a.len();
        // Derive a third permutation deterministically from the seed.
        let c = View::rotated(m, (seed % m as u64) as usize);
        let left = a.compose(&b).compose(&c);
        let right = a.compose(&b.compose(&c));
        prop_assert_eq!(left, right);
    }

    #[test]
    fn identity_is_neutral(view in (1usize..10).prop_flat_map(perm)) {
        let m = view.len();
        prop_assert_eq!(View::identity(m).compose(&view), view.clone());
        prop_assert_eq!(view.compose(&View::identity(m)), view);
    }

    #[test]
    fn rotations_add_modulo_m(m in 1usize..12, s1 in 0usize..24, s2 in 0usize..24) {
        let composed = View::rotated(m, s1 % m).compose(&View::rotated(m, s2 % m));
        prop_assert_eq!(composed, View::rotated(m, (s1 + s2) % m));
    }

    #[test]
    fn pid_round_trips_through_strings(raw in 1u64..) {
        let p = Pid::new(raw).unwrap();
        let parsed: Pid = p.to_string().parse().unwrap();
        prop_assert_eq!(parsed, p);
        prop_assert_eq!(parsed.get(), raw);
    }

    #[test]
    fn pid_map_identity_law(ids in proptest::collection::vec(1u64.., 0..8)) {
        let pids: Vec<Pid> = ids.iter().map(|&i| Pid::new(i).unwrap()).collect();
        let mapped = pids.map_pids(&mut |p| p);
        prop_assert_eq!(mapped, pids);
    }

    #[test]
    fn pid_map_composition_law(ids in proptest::collection::vec(1u64..1000, 1..8), off1 in 1u64..50, off2 in 1u64..50) {
        let pids: Vec<Pid> = ids.iter().map(|&i| Pid::new(i).unwrap()).collect();
        let mut f = |p: Pid| Pid::new(p.get() + off1).unwrap();
        let mut g = |p: Pid| Pid::new(p.get() + off2).unwrap();
        let two_step = pids.map_pids(&mut f).map_pids(&mut g);
        let fused = pids.map_pids(&mut |p| g(f(p)));
        prop_assert_eq!(two_step, fused);
    }

    #[test]
    fn trace_accounting_is_consistent(ops in proptest::collection::vec((0usize..3, 0usize..4, any::<bool>()), 0..40)) {
        let mut trace: Trace<u64, ()> = Trace::new();
        for &(proc, reg, is_write) in &ops {
            let pid = Pid::new(proc as u64 + 1).unwrap();
            let op = if is_write {
                TraceOp::Write { local: reg, physical: reg, value: 1 }
            } else {
                TraceOp::Read { local: reg, physical: reg, value: 0 }
            };
            trace.record(proc, pid, op);
        }
        prop_assert_eq!(trace.len(), ops.len());
        for proc in 0..3 {
            let expected = ops.iter().filter(|&&(p, _, _)| p == proc).count();
            prop_assert_eq!(trace.memory_ops_of(proc), expected);
            // The write set contains exactly the distinct registers written.
            let mut expected_ws: Vec<usize> = ops
                .iter()
                .filter(|&&(p, _, w)| p == proc && w)
                .map(|&(_, r, _)| r)
                .collect();
            expected_ws.dedup_by(|a, b| a == b); // not enough: dedup across all
            let mut ws = trace.write_set_of(proc);
            ws.sort_unstable();
            let mut truth: Vec<usize> = ops
                .iter()
                .filter(|&&(p, _, w)| p == proc && w)
                .map(|&(_, r, _)| r)
                .collect();
            truth.sort_unstable();
            truth.dedup();
            prop_assert_eq!(ws, truth);
        }
    }
}
