//! The [`Probe`] trait — span/event/counter/histogram sinks — and its two
//! standard implementations.
//!
//! Every execution substrate (the real-thread `Driver`, the simulator's
//! `explore`, the covering-attack builder) is generic over a probe. The
//! hooks are designed to compile away: [`NoopProbe`] sets
//! [`Probe::ENABLED`] to `false`, and every instrumentation site guards its
//! *bookkeeping* (value clones, comparisons) behind `P::ENABLED`, so the
//! default path monomorphizes to the uninstrumented loop — the timing check
//! in `crates/bench/benches/obs.rs` holds it to that.
//!
//! Metric and span names are closed enums, not strings: the JSONL schema is
//! versioned (see [`crate::schema`]) and a golden-file test pins every
//! name, so the emitted vocabulary cannot drift silently.

use std::collections::BTreeMap;
use std::sync::Mutex;

/// A named metric. The wire name of each variant is part of schema v1 —
/// renaming one is a schema bump.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[non_exhaustive]
pub enum Metric {
    /// Atomic reads, keyed by physical register.
    RegRead,
    /// Atomic writes, keyed by physical register.
    RegWrite,
    /// Contention hits: a read observed a value another process must have
    /// written since this process last touched the register. Keyed by
    /// physical register.
    RegContention,
    /// Randomized-backoff invocations (driver).
    BackoffInvoked,
    /// Spin iterations per backoff (histogram).
    BackoffSpins,
    /// Distinct states discovered by the explorer.
    ExploreStates,
    /// Transitions recorded by the explorer.
    ExploreEdges,
    /// Dedup hits: transitions that landed on an already-known state.
    ExploreDedup,
    /// Frontier size (gauge, sampled periodically).
    ExploreFrontier,
    /// Maximum discovery depth (gauge).
    ExploreDepth,
    /// Work items stolen from another worker's frontier deque, keyed by
    /// the stealing worker (parallel explorer only).
    ExploreSteals,
    /// Memory operations needed by one solo run (histogram; the
    /// obstruction-freedom checker's per-run cost).
    SoloOps,
    /// Size of a covering attack's write set (`|write(y, q)|`).
    CoverWriteSet,
    /// Faults injected by a `FaultyDriver` (crash, stall or restart),
    /// keyed by the faulted process identifier.
    FaultInjected,
    /// Recoveries: a crashed process restarted as a fresh machine with
    /// the same identifier and a new random view. Keyed by the process
    /// identifier.
    FaultRecovered,
    /// Symmetry-reduction hits: states whose canonicalization chose a
    /// non-identity orbit representative — i.e. states the reduction
    /// actually moved. Keyed by engine (0 sequential, worker index
    /// parallel).
    SymmetryHits,
    /// Total nanoseconds spent canonicalizing states, same keying as
    /// [`Metric::SymmetryHits`]. Only emitted when a symmetry mode is
    /// active.
    CanonTime,
    /// States whose canonical encoding was short-circuited to the plain
    /// identity path because the symmetry group was detected to be
    /// trivial (no non-identity orbit exists, so canonicalization could
    /// never move anything). Same keying as [`Metric::SymmetryHits`].
    CanonSkipped,
    /// Missing happens-before edges flagged by the ordering sanitizer: a
    /// read consumed a foreign store with no synchronizes-with path.
    /// Keyed by physical register.
    OrderingViolations,
    /// Acquire/release synchronizes-with edges the sanitizer observed
    /// (an acquire read consuming a release store). Keyed by physical
    /// register.
    HbEdges,
    /// Sanitizer reads that returned a store older than the newest one —
    /// the observation model's bounded staleness actually biting. Keyed
    /// by physical register.
    StaleReads,
    /// Fault-injection stress schedules completed, keyed by the family's
    /// index in the sweep — the live heartbeat `check stress --stream`
    /// publishes.
    StressSchedules,
    /// Stress schedules whose safety invariant was violated, same keying
    /// as [`Metric::StressSchedules`].
    StressViolations,
    /// Expanded states whose ample-set reduction fired: at least one
    /// register-free successor existed, so the register successors were
    /// pruned. Keyed like [`Metric::SymmetryHits`]. Only emitted when
    /// partial-order reduction is enabled.
    PorAmple,
    /// Successor transitions the ample-set reduction pruned, same keying
    /// as [`Metric::PorAmple`].
    PorPruned,
    /// Definite bloom-filter misses during dedup: probes the pre-screen
    /// proved fresh without consulting the exact table. Keyed like
    /// [`Metric::SymmetryHits`].
    BloomNeg,
    /// Canonical code bytes written to the on-disk spill tier.
    SpillBytes,
    /// Dedup verifications served by reading a spilled code back from
    /// disk (LRU miss).
    SpillReads,
    /// Dedup hits accepted on the 128-bit fingerprint alone because the
    /// candidate's code was still buffered in another worker's unflushed
    /// spill chunk.
    DedupUnverified,
    /// Explorations served from a valid reachability certificate instead
    /// of a frontier search (one count per warm replay).
    CacheHit,
    /// Total nanoseconds a certificate replay spent streaming and
    /// re-validating the recorded graph, same keying as
    /// [`Metric::CacheHit`].
    CacheReplayTime,
}

impl Metric {
    /// The stable wire name (schema v1).
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Metric::RegRead => "reg_read",
            Metric::RegWrite => "reg_write",
            Metric::RegContention => "reg_contention",
            Metric::BackoffInvoked => "backoff_invoked",
            Metric::BackoffSpins => "backoff_spins",
            Metric::ExploreStates => "explore_states",
            Metric::ExploreEdges => "explore_edges",
            Metric::ExploreDedup => "explore_dedup",
            Metric::ExploreFrontier => "explore_frontier",
            Metric::ExploreDepth => "explore_depth",
            Metric::ExploreSteals => "explore_steals",
            Metric::SoloOps => "solo_ops",
            Metric::CoverWriteSet => "cover_write_set",
            Metric::FaultInjected => "fault_injected",
            Metric::FaultRecovered => "fault_recovered",
            Metric::SymmetryHits => "symmetry_hits",
            Metric::CanonTime => "canon_time",
            Metric::CanonSkipped => "canon_skipped",
            Metric::OrderingViolations => "ordering_violations",
            Metric::HbEdges => "hb_edges",
            Metric::StaleReads => "stale_reads",
            Metric::StressSchedules => "stress_schedules",
            Metric::StressViolations => "stress_violations",
            Metric::PorAmple => "por_ample",
            Metric::PorPruned => "por_pruned",
            Metric::BloomNeg => "bloom_neg",
            Metric::SpillBytes => "spill_bytes",
            Metric::SpillReads => "spill_reads",
            Metric::DedupUnverified => "dedup_unverified",
            Metric::CacheHit => "cache_hit",
            Metric::CacheReplayTime => "cache_replay_time",
        }
    }
}

/// A span kind: a named window of execution with a measured length.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[non_exhaustive]
pub enum Span {
    /// A contention-free window observed by the driver: consecutive memory
    /// operations during which no foreign write was observed. Length is in
    /// memory operations. These are the solo windows obstruction freedom
    /// (§2, §4) needs.
    SoloWindow,
    /// One solo run of the obstruction-freedom checker, keyed by process.
    /// Length is in memory operations.
    SoloRun,
    /// The covering attack's step 1: the victim's solo run to its
    /// milestone. Length is in memory operations.
    CoverSolo,
    /// The covering attack's step 2: placing the coverers. Length is the
    /// number of coverers placed.
    CoverPlace,
    /// The covering attack's step 3: the block write. Length is the number
    /// of poised writes released.
    CoverBlock,
    /// One state-space exploration. Length is the number of states.
    Explore,
    /// One worker thread's share of a parallel exploration, keyed by
    /// worker index. Length is the number of states the worker expanded.
    ExploreWorker,
}

impl Span {
    /// The stable wire name (schema v1).
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Span::SoloWindow => "solo_window",
            Span::SoloRun => "solo_run",
            Span::CoverSolo => "cover_solo",
            Span::CoverPlace => "cover_place",
            Span::CoverBlock => "cover_block",
            Span::Explore => "explore",
            Span::ExploreWorker => "explore_worker",
        }
    }
}

/// A sink for structured observations.
///
/// All methods default to no-ops so implementations override only what
/// they record. `key` disambiguates instances of the same metric (physical
/// register index, process slot, …); pass `0` when there is no natural key.
pub trait Probe: Send + Sync {
    /// `false` only for [`NoopProbe`]: instrumentation sites use this to
    /// skip even the *bookkeeping* for their observations (cloning values
    /// for contention detection, say), so the no-op path costs nothing.
    const ENABLED: bool = true;

    /// Adds `delta` to a monotonic counter.
    fn counter(&self, metric: Metric, key: u64, delta: u64) {
        let _ = (metric, key, delta);
    }

    /// Sets the current value of a gauge.
    fn gauge(&self, metric: Metric, key: u64, value: u64) {
        let _ = (metric, key, value);
    }

    /// Records one sample of a distribution.
    fn histogram(&self, metric: Metric, key: u64, value: u64) {
        let _ = (metric, key, value);
    }

    /// Opens a span. Pairing is by `(span, key)`, caller-managed.
    fn span_open(&self, span: Span, key: u64) {
        let _ = (span, key);
    }

    /// Closes a span, reporting its measured length.
    fn span_close(&self, span: Span, key: u64, length: u64) {
        let _ = (span, key, length);
    }

    /// Announces a one-off structured event.
    fn event(&self, name: &'static str, fields: &[(&'static str, u64)]) {
        let _ = (name, fields);
    }
}

/// The zero-cost probe: every hook is a no-op and [`Probe::ENABLED`] is
/// `false`, so instrumentation sites compile to nothing.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct NoopProbe;

impl Probe for NoopProbe {
    const ENABLED: bool = false;
}

impl<P: Probe> Probe for &P {
    const ENABLED: bool = P::ENABLED;

    fn counter(&self, metric: Metric, key: u64, delta: u64) {
        (**self).counter(metric, key, delta);
    }

    fn gauge(&self, metric: Metric, key: u64, value: u64) {
        (**self).gauge(metric, key, value);
    }

    fn histogram(&self, metric: Metric, key: u64, value: u64) {
        (**self).histogram(metric, key, value);
    }

    fn span_open(&self, span: Span, key: u64) {
        (**self).span_open(span, key);
    }

    fn span_close(&self, span: Span, key: u64, length: u64) {
        (**self).span_close(span, key, length);
    }

    fn event(&self, name: &'static str, fields: &[(&'static str, u64)]) {
        (**self).event(name, fields);
    }
}

/// Aggregated statistics of one histogram.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct HistogramStat {
    /// Number of samples.
    pub count: u64,
    /// Sum of all samples.
    pub sum: u64,
    /// Smallest sample.
    pub min: u64,
    /// Largest sample.
    pub max: u64,
    /// Power-of-two buckets: `buckets[i]` counts samples whose value `v`
    /// satisfies `v == 0 ? i == 0 : v.ilog2() + 1 == i` (bucket 0 holds
    /// zeros, bucket `i ≥ 1` holds `[2^(i-1), 2^i)`), saturating at the
    /// last bucket.
    pub buckets: [u64; 20],
}

impl HistogramStat {
    fn record(&mut self, value: u64) {
        if self.count == 0 {
            self.min = value;
            self.max = value;
        } else {
            self.min = self.min.min(value);
            self.max = self.max.max(value);
        }
        self.count += 1;
        self.sum += value;
        let bucket = if value == 0 {
            0
        } else {
            (value.ilog2() as usize + 1).min(self.buckets.len() - 1)
        };
        self.buckets[bucket] += 1;
    }
}

/// Last/max/sample-count aggregate of one gauge.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct GaugeStat {
    /// The most recent value.
    pub last: u64,
    /// The largest value seen.
    pub max: u64,
    /// How many times the gauge was set.
    pub samples: u64,
}

/// One closed span.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SpanRecord {
    /// The span kind.
    pub span: Span,
    /// The caller's key.
    pub key: u64,
    /// The reported length.
    pub length: u64,
}

/// One announced event.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct EventRecord {
    /// The event name.
    pub name: &'static str,
    /// Its fields.
    pub fields: Vec<(&'static str, u64)>,
}

/// Caps on the record lists a [`MemProbe`] retains verbatim. Counters,
/// gauges and histograms aggregate and are unaffected.
const MAX_SPANS: usize = 65_536;
const MAX_EVENTS: usize = 4_096;

#[derive(Debug, Default)]
struct MemProbeState {
    counters: BTreeMap<(Metric, u64), u64>,
    gauges: BTreeMap<(Metric, u64), GaugeStat>,
    histograms: BTreeMap<(Metric, u64), HistogramStat>,
    spans: Vec<SpanRecord>,
    open_spans: u64,
    dropped_spans: u64,
    events: Vec<EventRecord>,
    dropped_events: u64,
}

/// An in-memory recording probe.
///
/// Counters, gauges and histograms are aggregated (bounded memory no
/// matter how hot the instrumented loop); closed spans and events are kept
/// verbatim up to a cap, with a drop counter beyond it — a truncated
/// recording says so instead of silently looking complete.
#[derive(Debug, Default)]
pub struct MemProbe {
    state: Mutex<MemProbeState>,
}

impl MemProbe {
    /// Creates an empty recording probe.
    #[must_use]
    pub fn new() -> Self {
        MemProbe::default()
    }

    /// Consumes the probe and returns everything it recorded.
    ///
    /// # Panics
    ///
    /// Panics if a recording thread panicked while holding the lock.
    #[must_use]
    pub fn into_snapshot(self) -> MetricsSnapshot {
        let state = self.state.into_inner().expect("probe lock poisoned");
        MetricsSnapshot::from_state(state)
    }

    /// Copies out everything recorded so far.
    #[must_use]
    pub fn snapshot(&self) -> MetricsSnapshot {
        let state = self.state.lock().expect("probe lock poisoned");
        MetricsSnapshot {
            counters: state
                .counters
                .iter()
                .map(|(&(m, k), &v)| (m, k, v))
                .collect(),
            gauges: state.gauges.iter().map(|(&(m, k), &g)| (m, k, g)).collect(),
            histograms: state
                .histograms
                .iter()
                .map(|(&(m, k), h)| (m, k, h.clone()))
                .collect(),
            spans: state.spans.clone(),
            dropped_spans: state.dropped_spans,
            events: state.events.clone(),
            dropped_events: state.dropped_events,
        }
    }
}

impl Probe for MemProbe {
    fn counter(&self, metric: Metric, key: u64, delta: u64) {
        let mut state = self.state.lock().expect("probe lock poisoned");
        *state.counters.entry((metric, key)).or_insert(0) += delta;
    }

    fn gauge(&self, metric: Metric, key: u64, value: u64) {
        let mut state = self.state.lock().expect("probe lock poisoned");
        let stat = state.gauges.entry((metric, key)).or_default();
        stat.last = value;
        stat.max = stat.max.max(value);
        stat.samples += 1;
    }

    fn histogram(&self, metric: Metric, key: u64, value: u64) {
        let mut state = self.state.lock().expect("probe lock poisoned");
        state
            .histograms
            .entry((metric, key))
            .or_default()
            .record(value);
    }

    fn span_open(&self, _span: Span, _key: u64) {
        let mut state = self.state.lock().expect("probe lock poisoned");
        state.open_spans += 1;
    }

    fn span_close(&self, span: Span, key: u64, length: u64) {
        let mut state = self.state.lock().expect("probe lock poisoned");
        state.open_spans = state.open_spans.saturating_sub(1);
        if state.spans.len() < MAX_SPANS {
            state.spans.push(SpanRecord { span, key, length });
        } else {
            state.dropped_spans += 1;
        }
    }

    fn event(&self, name: &'static str, fields: &[(&'static str, u64)]) {
        let mut state = self.state.lock().expect("probe lock poisoned");
        if state.events.len() < MAX_EVENTS {
            state.events.push(EventRecord {
                name,
                fields: fields.to_vec(),
            });
        } else {
            state.dropped_events += 1;
        }
    }
}

/// Everything a [`MemProbe`] recorded, in deterministic order.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct MetricsSnapshot {
    /// `(metric, key, total)` triples, sorted by metric then key.
    pub counters: Vec<(Metric, u64, u64)>,
    /// `(metric, key, stat)` triples, sorted by metric then key.
    pub gauges: Vec<(Metric, u64, GaugeStat)>,
    /// `(metric, key, stat)` triples, sorted by metric then key.
    pub histograms: Vec<(Metric, u64, HistogramStat)>,
    /// Closed spans in close order (capped).
    pub spans: Vec<SpanRecord>,
    /// Spans dropped beyond the cap.
    pub dropped_spans: u64,
    /// Events in announce order (capped).
    pub events: Vec<EventRecord>,
    /// Events dropped beyond the cap.
    pub dropped_events: u64,
}

impl MetricsSnapshot {
    fn from_state(state: MemProbeState) -> Self {
        MetricsSnapshot {
            counters: state
                .counters
                .into_iter()
                .map(|((m, k), v)| (m, k, v))
                .collect(),
            gauges: state
                .gauges
                .into_iter()
                .map(|((m, k), g)| (m, k, g))
                .collect(),
            histograms: state
                .histograms
                .into_iter()
                .map(|((m, k), h)| (m, k, h))
                .collect(),
            spans: state.spans,
            dropped_spans: state.dropped_spans,
            events: state.events,
            dropped_events: state.dropped_events,
        }
    }

    /// The total of a counter across all keys.
    #[must_use]
    pub fn counter_total(&self, metric: Metric) -> u64 {
        self.counters
            .iter()
            .filter(|(m, _, _)| *m == metric)
            .map(|(_, _, v)| v)
            .sum()
    }

    /// The per-key totals of a counter, sorted by key.
    #[must_use]
    pub fn counter_by_key(&self, metric: Metric) -> Vec<(u64, u64)> {
        self.counters
            .iter()
            .filter(|(m, _, _)| *m == metric)
            .map(|(_, k, v)| (*k, *v))
            .collect()
    }

    /// The aggregate of a histogram under key 0 (the common single-key
    /// case), if any samples were recorded.
    #[must_use]
    pub fn histogram_stat(&self, metric: Metric) -> Option<&HistogramStat> {
        self.histograms
            .iter()
            .find(|(m, k, _)| *m == metric && *k == 0)
            .map(|(_, _, h)| h)
    }

    /// The gauge under key 0, if it was ever set.
    #[must_use]
    pub fn gauge_stat(&self, metric: Metric) -> Option<GaugeStat> {
        self.gauges
            .iter()
            .find(|(m, k, _)| *m == metric && *k == 0)
            .map(|(_, _, g)| *g)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn noop_probe_is_disabled() {
        const { assert!(!NoopProbe::ENABLED) };
        const { assert!(!<&NoopProbe as Probe>::ENABLED) };
        // And callable without effect.
        NoopProbe.counter(Metric::RegRead, 0, 1);
        NoopProbe.span_open(Span::SoloRun, 0);
        NoopProbe.event("x", &[]);
    }

    #[test]
    fn mem_probe_aggregates_counters() {
        let probe = MemProbe::new();
        probe.counter(Metric::RegRead, 0, 1);
        probe.counter(Metric::RegRead, 0, 2);
        probe.counter(Metric::RegRead, 3, 5);
        probe.counter(Metric::RegWrite, 0, 7);
        let snap = probe.into_snapshot();
        assert_eq!(snap.counter_total(Metric::RegRead), 8);
        assert_eq!(snap.counter_by_key(Metric::RegRead), vec![(0, 3), (3, 5)]);
        assert_eq!(snap.counter_total(Metric::RegWrite), 7);
        assert_eq!(snap.counter_total(Metric::RegContention), 0);
    }

    #[test]
    fn mem_probe_histograms_bucket_by_power_of_two() {
        let probe = MemProbe::new();
        for v in [0, 1, 2, 3, 4, 1024] {
            probe.histogram(Metric::BackoffSpins, 0, v);
        }
        let snap = probe.into_snapshot();
        let stat = snap.histogram_stat(Metric::BackoffSpins).unwrap();
        assert_eq!(stat.count, 6);
        assert_eq!(stat.sum, 1034);
        assert_eq!(stat.min, 0);
        assert_eq!(stat.max, 1024);
        assert_eq!(stat.buckets[0], 1); // 0
        assert_eq!(stat.buckets[1], 1); // 1
        assert_eq!(stat.buckets[2], 2); // 2, 3
        assert_eq!(stat.buckets[3], 1); // 4
        assert_eq!(stat.buckets[11], 1); // 1024
    }

    #[test]
    fn mem_probe_gauges_track_last_and_max() {
        let probe = MemProbe::new();
        probe.gauge(Metric::ExploreFrontier, 0, 10);
        probe.gauge(Metric::ExploreFrontier, 0, 90);
        probe.gauge(Metric::ExploreFrontier, 0, 40);
        let snap = probe.into_snapshot();
        let g = snap.gauge_stat(Metric::ExploreFrontier).unwrap();
        assert_eq!(g.last, 40);
        assert_eq!(g.max, 90);
        assert_eq!(g.samples, 3);
    }

    #[test]
    fn mem_probe_records_spans_and_events() {
        let probe = MemProbe::new();
        probe.span_open(Span::SoloRun, 2);
        probe.span_close(Span::SoloRun, 2, 14);
        probe.event("explore_done", &[("states", 5)]);
        let snap = probe.into_snapshot();
        assert_eq!(
            snap.spans,
            vec![SpanRecord {
                span: Span::SoloRun,
                key: 2,
                length: 14
            }]
        );
        assert_eq!(snap.events.len(), 1);
        assert_eq!(snap.events[0].name, "explore_done");
        assert_eq!(snap.dropped_spans, 0);
        assert_eq!(snap.dropped_events, 0);
    }

    #[test]
    fn snapshot_and_into_snapshot_agree() {
        let probe = MemProbe::new();
        probe.counter(Metric::RegWrite, 1, 4);
        probe.span_close(Span::SoloWindow, 0, 3);
        let copy = probe.snapshot();
        let owned = probe.into_snapshot();
        assert_eq!(copy, owned);
    }

    #[test]
    fn metric_and_span_names_are_stable() {
        // Schema v1 vocabulary — a rename here is a schema bump.
        assert_eq!(Metric::RegRead.name(), "reg_read");
        assert_eq!(Metric::ExploreDedup.name(), "explore_dedup");
        assert_eq!(Metric::ExploreSteals.name(), "explore_steals");
        assert_eq!(Metric::FaultInjected.name(), "fault_injected");
        assert_eq!(Metric::FaultRecovered.name(), "fault_recovered");
        assert_eq!(Metric::SymmetryHits.name(), "symmetry_hits");
        assert_eq!(Metric::CanonTime.name(), "canon_time");
        assert_eq!(Metric::CanonSkipped.name(), "canon_skipped");
        assert_eq!(Metric::OrderingViolations.name(), "ordering_violations");
        assert_eq!(Metric::HbEdges.name(), "hb_edges");
        assert_eq!(Metric::StaleReads.name(), "stale_reads");
        assert_eq!(Metric::PorAmple.name(), "por_ample");
        assert_eq!(Metric::PorPruned.name(), "por_pruned");
        assert_eq!(Metric::BloomNeg.name(), "bloom_neg");
        assert_eq!(Metric::SpillBytes.name(), "spill_bytes");
        assert_eq!(Metric::SpillReads.name(), "spill_reads");
        assert_eq!(Metric::DedupUnverified.name(), "dedup_unverified");
        assert_eq!(Metric::CacheHit.name(), "cache_hit");
        assert_eq!(Metric::CacheReplayTime.name(), "cache_replay_time");
        assert_eq!(Span::SoloWindow.name(), "solo_window");
        assert_eq!(Span::CoverBlock.name(), "cover_block");
        assert_eq!(Span::ExploreWorker.name(), "explore_worker");
    }
}
