//! Exhaustive explicit-state model checking.
//!
//! For fixed process count and register count, the paper's algorithms have
//! **finite** state spaces: register contents range over finitely many
//! values and each machine has finitely many local states. [`explore`]
//! enumerates every configuration reachable under *any* adversary and
//! returns a [`StateGraph`] on which two kinds of questions are decided
//! exactly:
//!
//! * **Safety** — [`StateGraph::find_state`] searches for a bad
//!   configuration (e.g. two processes in their critical sections, the
//!   mutual exclusion violation of §3.1), and
//!   [`StateGraph::schedule_to`] reconstructs the adversary schedule that
//!   reaches it, making every counterexample replayable.
//! * **Fair liveness** — [`StateGraph::find_fair_livelock`] looks for a
//!   strongly connected component in which every live process keeps taking
//!   steps but no progress event ever fires. Such a component is exactly a
//!   *fair livelock*: an infinite schedule that starves the system even
//!   though no process is ever denied steps. This is how experiment E1
//!   refutes deadlock-freedom for the Figure 1 algorithm with an even
//!   number of registers (Theorem 3.1) — the checker finds the symmetric
//!   lock-step loop.

use std::collections::HashMap;
use std::fmt;
use std::hash::Hash;

use anonreg_model::Machine;
use anonreg_obs::{Metric, NoopProbe, Probe, Span};

use crate::Simulation;

/// Resource limits for [`explore`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ExploreLimits {
    /// Maximum number of distinct states to enumerate before giving up.
    pub max_states: usize,
    /// Also explore *crash* transitions: from every state, every live
    /// process may crash (§2's failure model). Roughly doubles the state
    /// space per process; off by default.
    pub crashes: bool,
}

impl Default for ExploreLimits {
    fn default() -> Self {
        ExploreLimits {
            max_states: 1_000_000,
            crashes: false,
        }
    }
}

/// Error returned when exploration exceeds its limits.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ExploreError {
    /// The reachable state space exceeded [`ExploreLimits::max_states`].
    StateLimitExceeded {
        /// The configured limit.
        limit: usize,
    },
}

impl fmt::Display for ExploreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExploreError::StateLimitExceeded { limit } => {
                write!(f, "state space exceeds the limit of {limit} states")
            }
        }
    }
}

impl std::error::Error for ExploreError {}

/// One outgoing transition of a state: process `proc` takes one atomic step,
/// emitting `events` on the way, and the system moves to state `target`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Edge<E> {
    /// The process that moves.
    pub proc: usize,
    /// The id of the successor state.
    pub target: usize,
    /// Events emitted during the step (usually empty or a single event).
    pub events: Vec<E>,
    /// `true` if this transition is the process *crashing* rather than
    /// taking a step (only with [`ExploreLimits::crashes`]).
    pub crash: bool,
}

/// One adversary move in a reconstructed schedule.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ScheduleAction {
    /// Process takes one atomic step.
    Step(usize),
    /// Process crashes.
    Crash(usize),
}

/// The complete reachable state graph of a simulation.
///
/// State `0` is the initial configuration. Each state stores the full
/// [`Simulation`] (with an empty trace), so analyses can inspect machines
/// and registers directly.
pub struct StateGraph<M: Machine> {
    states: Vec<Simulation<M>>,
    edges: Vec<Vec<Edge<M::Event>>>,
    /// `parents[id]` = (predecessor state, moving process, was-a-crash);
    /// `None` for the initial state. Used to reconstruct adversary
    /// schedules.
    parents: Vec<Option<(usize, usize, bool)>>,
}

/// Exhaustively enumerates every configuration reachable from `initial`
/// under any scheduling of the processes.
///
/// The accumulated trace of `initial` is ignored; state identity is the pair
/// (register contents, machine states incl. pending reads/poised writes).
///
/// # Errors
///
/// Returns [`ExploreError::StateLimitExceeded`] if the reachable state space
/// is larger than `limits.max_states`.
pub fn explore<M>(
    initial: Simulation<M>,
    limits: &ExploreLimits,
) -> Result<StateGraph<M>, ExploreError>
where
    M: Machine + Eq + Hash,
{
    explore_probed(initial, limits, &NoopProbe)
}

/// How often the probed explorer samples its frontier/depth gauges, in
/// discovered states. Sampling (rather than reporting every state) keeps
/// the gauges cheap on million-state runs; the final values are always
/// reported exactly.
const GAUGE_SAMPLE_EVERY: usize = 1024;

/// [`explore`] with a live [`Probe`].
///
/// Emits, per exploration: `explore_states`/`explore_edges`/
/// `explore_dedup` counters, sampled `explore_frontier`/`explore_depth`
/// gauges (final values exact), and one `explore` span whose length is
/// the number of distinct states. With [`NoopProbe`] this is exactly
/// [`explore`] — the instrumentation compiles away.
///
/// # Errors
///
/// Returns [`ExploreError::StateLimitExceeded`] if the reachable state
/// space is larger than `limits.max_states`. The counters emitted up to
/// that point are still in the probe, so a budget-blown exploration is
/// still measurable.
pub fn explore_probed<M, P>(
    initial: Simulation<M>,
    limits: &ExploreLimits,
    probe: &P,
) -> Result<StateGraph<M>, ExploreError>
where
    M: Machine + Eq + Hash,
    P: Probe,
{
    let mut initial = initial;
    initial.clear_trace();

    if P::ENABLED {
        probe.span_open(Span::Explore, 0);
    }

    let mut ids: HashMap<_, usize> = HashMap::new();
    let mut states = vec![initial.clone()];
    let mut edges: Vec<Vec<Edge<M::Event>>> = Vec::new();
    let mut parents = vec![None];
    ids.insert(initial.state_key(), 0);

    // Discovery depth per state and the running maximum; maintained only
    // when the probe is enabled.
    let mut depths: Vec<u32> = if P::ENABLED { vec![0] } else { Vec::new() };
    let mut max_depth = 0u32;
    let mut dedup_hits = 0u64;
    let mut edge_total = 0u64;

    let mut frontier = vec![0usize];
    while let Some(id) = frontier.pop() {
        let mut out = Vec::new();
        for proc in 0..states[id].process_count() {
            if states[id].is_halted(proc) {
                continue;
            }
            for crash in [false, true] {
                if crash && !limits.crashes {
                    continue;
                }
                let mut next = states[id].clone();
                next.clear_trace();
                if crash {
                    next.crash(proc).expect("slot is valid");
                } else {
                    next.step(proc).expect("slot is valid and not halted");
                }
                let events: Vec<M::Event> =
                    next.trace().events().map(|(_, _, e)| e.clone()).collect();
                next.clear_trace();
                let key = next.state_key();
                let target = match ids.get(&key) {
                    Some(&t) => {
                        if P::ENABLED {
                            dedup_hits += 1;
                        }
                        t
                    }
                    None => {
                        let t = states.len();
                        if t >= limits.max_states {
                            if P::ENABLED {
                                report_explore(
                                    probe, t as u64, edge_total, dedup_hits, &frontier, max_depth,
                                );
                                probe.span_close(Span::Explore, 0, t as u64);
                            }
                            return Err(ExploreError::StateLimitExceeded {
                                limit: limits.max_states,
                            });
                        }
                        ids.insert(key, t);
                        states.push(next);
                        parents.push(Some((id, proc, crash)));
                        frontier.push(t);
                        if P::ENABLED {
                            let depth = depths[id] + 1;
                            depths.push(depth);
                            max_depth = max_depth.max(depth);
                            if t % GAUGE_SAMPLE_EVERY == 0 {
                                probe.gauge(Metric::ExploreFrontier, 0, frontier.len() as u64);
                                probe.gauge(Metric::ExploreDepth, 0, u64::from(max_depth));
                            }
                        }
                        t
                    }
                };
                if P::ENABLED {
                    edge_total += 1;
                }
                out.push(Edge {
                    proc,
                    target,
                    events,
                    crash,
                });
            }
        }
        // `edges` is indexed by discovery order; fill gaps lazily.
        if edges.len() <= id {
            edges.resize_with(states.len(), Vec::new);
        }
        edges[id] = out;
    }
    edges.resize_with(states.len(), Vec::new);

    if P::ENABLED {
        report_explore(
            probe,
            states.len() as u64,
            edge_total,
            dedup_hits,
            &frontier,
            max_depth,
        );
        probe.span_close(Span::Explore, 0, states.len() as u64);
    }

    Ok(StateGraph {
        states,
        edges,
        parents,
    })
}

/// Final (exact) gauge/counter emission for one exploration.
fn report_explore<P: Probe>(
    probe: &P,
    states: u64,
    edges: u64,
    dedup: u64,
    frontier: &[usize],
    max_depth: u32,
) {
    probe.counter(Metric::ExploreStates, 0, states);
    probe.counter(Metric::ExploreEdges, 0, edges);
    probe.counter(Metric::ExploreDedup, 0, dedup);
    probe.gauge(Metric::ExploreFrontier, 0, frontier.len() as u64);
    probe.gauge(Metric::ExploreDepth, 0, u64::from(max_depth));
}

impl<M: Machine> StateGraph<M> {
    /// The number of reachable states.
    #[must_use]
    pub fn state_count(&self) -> usize {
        self.states.len()
    }

    /// The total number of transitions.
    #[must_use]
    pub fn edge_count(&self) -> usize {
        self.edges.iter().map(Vec::len).sum()
    }

    /// The configuration of state `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    #[must_use]
    pub fn state(&self, id: usize) -> &Simulation<M> {
        &self.states[id]
    }

    /// Iterates over all states with their ids.
    pub fn states(&self) -> impl Iterator<Item = (usize, &Simulation<M>)> {
        self.states.iter().enumerate()
    }

    /// The outgoing transitions of state `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    #[must_use]
    pub fn edges(&self, id: usize) -> &[Edge<M::Event>] {
        &self.edges[id]
    }

    /// Finds a reachable state satisfying `pred` (a safety-violation
    /// search). States are scanned in discovery (BFS/DFS mix) order, so the
    /// returned state is reachable by the schedule from
    /// [`schedule_to`](StateGraph::schedule_to).
    pub fn find_state<F>(&self, mut pred: F) -> Option<usize>
    where
        F: FnMut(&Simulation<M>) -> bool,
    {
        (0..self.states.len()).find(|&id| pred(&self.states[id]))
    }

    /// Reconstructs the adversary schedule (sequence of process slots, one
    /// per atomic step) that drives the initial state to state `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range, or if the discovery path contains a
    /// crash transition (crash-enabled graphs need
    /// [`actions_to`](StateGraph::actions_to)).
    #[must_use]
    pub fn schedule_to(&self, id: usize) -> Vec<usize> {
        self.actions_to(id)
            .into_iter()
            .map(|action| match action {
                ScheduleAction::Step(proc) => proc,
                ScheduleAction::Crash(_) => {
                    panic!("path contains a crash; use actions_to for crash-enabled graphs")
                }
            })
            .collect()
    }

    /// Reconstructs the adversary actions (steps and crashes) that drive
    /// the initial state to state `id`. Replay with
    /// [`Simulation::step`]/[`Simulation::crash`].
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    #[must_use]
    pub fn actions_to(&self, id: usize) -> Vec<ScheduleAction> {
        let mut actions = Vec::new();
        let mut cursor = id;
        while let Some((parent, proc, crash)) = self.parents[cursor] {
            actions.push(if crash {
                ScheduleAction::Crash(proc)
            } else {
                ScheduleAction::Step(proc)
            });
            cursor = parent;
        }
        actions.reverse();
        actions
    }

    /// Computes the strongly connected components that contain at least one
    /// internal edge (i.e. can be stayed in forever), as lists of state ids.
    #[must_use]
    pub fn nontrivial_sccs(&self) -> Vec<Vec<usize>> {
        let sccs = tarjan(self.states.len(), &self.edges);
        sccs.into_iter()
            .filter(|scc| scc.len() > 1 || self.edges[scc[0]].iter().any(|e| e.target == scc[0]))
            .collect()
    }

    /// Searches for a **fair livelock**: a strongly connected component in
    /// which
    ///
    /// 1. every live (non-halted) process has at least one transition that
    ///    stays inside the component — so a schedule confined to it can give
    ///    every process infinitely many steps (fairness), and
    /// 2. no transition inside the component emits an event accepted by
    ///    `is_progress`, and
    /// 3. some state in the component has a process for which `stuck` holds
    ///    (e.g. "is in its entry section").
    ///
    /// Such a component is a complete violation of deadlock freedom: an
    /// infinite fair schedule under which a process remains stuck forever.
    /// Returns the component's state ids, or `None` if the property holds.
    pub fn find_fair_livelock<FS, FP>(
        &self,
        mut stuck: FS,
        mut is_progress: FP,
    ) -> Option<Vec<usize>>
    where
        FS: FnMut(&M) -> bool,
        FP: FnMut(&M::Event) -> bool,
    {
        for scc in self.nontrivial_sccs() {
            let in_scc = |target: usize| scc.contains(&target);

            // (2) No progress inside the component.
            let progress_inside = scc.iter().any(|&id| {
                self.edges[id]
                    .iter()
                    .any(|e| in_scc(e.target) && e.events.iter().any(&mut is_progress))
            });
            if progress_inside {
                continue;
            }

            // (1) Every live process can keep moving inside the component.
            // Halting is permanent, so the live set is constant across an
            // SCC; take it from the first state.
            let probe = &self.states[scc[0]];
            let live: Vec<usize> = (0..probe.process_count())
                .filter(|&p| !probe.is_halted(p))
                .collect();
            if live.is_empty() {
                continue;
            }
            let all_can_move = live.iter().all(|&p| {
                scc.iter().any(|&id| {
                    self.edges[id]
                        .iter()
                        .any(|e| e.proc == p && in_scc(e.target))
                })
            });
            if !all_can_move {
                continue;
            }

            // (3) Someone is stuck.
            let someone_stuck = scc.iter().any(|&id| {
                (0..self.states[id].process_count())
                    .any(|p| !self.states[id].is_halted(p) && stuck(self.states[id].machine(p)))
            });
            if someone_stuck {
                return Some(scc);
            }
        }
        None
    }

    /// Searches for **fair starvation** of process `victim`: a strongly
    /// connected component in which
    ///
    /// 1. every live process (the victim included) has a transition that
    ///    stays inside the component — a fair schedule exists,
    /// 2. no transition *by the victim* inside the component emits a
    ///    progress event, while
    /// 3. some transition *by another process* inside the component does —
    ///    the system as a whole keeps making progress, and
    /// 4. the victim satisfies `stuck` somewhere in the component.
    ///
    /// This is strictly weaker than a fair livelock: the algorithm may be
    /// perfectly deadlock-free (others enter again and again) while the
    /// victim starves. Deadlock-freedom permits this; starvation-freedom —
    /// which the paper's §8 lists as open for the memory-anonymous model —
    /// forbids it.
    ///
    /// Implementation note: the victim's progress edges are *deleted* from
    /// the graph first. Machines are deterministic, so the adversary cannot
    /// make a scheduled victim skip its progress step — but it can simply
    /// decline to schedule the victim in states where that step is next,
    /// which is exactly what the edge deletion models. A qualifying SCC of
    /// the remaining subgraph is then a fair infinite schedule in which the
    /// victim steps forever without ever progressing while others do.
    /// Returns the component's state ids.
    pub fn find_fair_starvation<FS, FP>(
        &self,
        victim: usize,
        mut stuck: FS,
        mut is_progress: FP,
    ) -> Option<Vec<usize>>
    where
        FS: FnMut(&M) -> bool,
        FP: FnMut(&M::Event) -> bool,
    {
        // The subgraph without the victim's progress edges.
        let filtered: Vec<Vec<Edge<M::Event>>> = self
            .edges
            .iter()
            .map(|out| {
                out.iter()
                    .filter(|e| !(e.proc == victim && e.events.iter().any(&mut is_progress)))
                    .cloned()
                    .collect()
            })
            .collect();
        let sccs = tarjan(self.states.len(), &filtered);
        for scc in sccs {
            let has_internal_edge =
                scc.len() > 1 || filtered[scc[0]].iter().any(|e| e.target == scc[0]);
            if !has_internal_edge {
                continue;
            }
            let in_scc = |target: usize| scc.contains(&target);

            // Someone other than the victim keeps progressing.
            let others_progress = scc.iter().any(|&id| {
                filtered[id].iter().any(|e| {
                    e.proc != victim && in_scc(e.target) && e.events.iter().any(&mut is_progress)
                })
            });
            if !others_progress {
                continue;
            }

            // Fairness: every live process — the victim included — can keep
            // moving inside the filtered component.
            let probe = &self.states[scc[0]];
            if victim >= probe.process_count() || probe.is_halted(victim) {
                continue;
            }
            let live: Vec<usize> = (0..probe.process_count())
                .filter(|&p| !probe.is_halted(p))
                .collect();
            let all_can_move = live.iter().all(|&p| {
                scc.iter()
                    .any(|&id| filtered[id].iter().any(|e| e.proc == p && in_scc(e.target)))
            });
            if !all_can_move {
                continue;
            }

            // The victim is actually stuck (e.g. in its entry section)
            // somewhere in the component.
            let victim_stuck = scc.iter().any(|&id| stuck(self.states[id].machine(victim)));
            if victim_stuck {
                return Some(scc);
            }
        }
        None
    }
}

impl<M: Machine> fmt::Debug for StateGraph<M> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("StateGraph")
            .field("states", &self.states.len())
            .field("edges", &self.edge_count())
            .finish()
    }
}

/// Iterative Tarjan SCC over the edge lists. Returns components in reverse
/// topological order.
fn tarjan<E>(n: usize, edges: &[Vec<Edge<E>>]) -> Vec<Vec<usize>> {
    #[derive(Clone, Copy)]
    struct NodeData {
        index: usize,
        lowlink: usize,
        on_stack: bool,
        visited: bool,
    }
    let mut data = vec![
        NodeData {
            index: 0,
            lowlink: 0,
            on_stack: false,
            visited: false,
        };
        n
    ];
    let mut counter = 0usize;
    let mut stack: Vec<usize> = Vec::new();
    let mut sccs: Vec<Vec<usize>> = Vec::new();

    // Explicit DFS stack: (node, next edge index to examine).
    for root in 0..n {
        if data[root].visited {
            continue;
        }
        let mut dfs: Vec<(usize, usize)> = vec![(root, 0)];
        while let Some(&mut (v, ref mut ei)) = dfs.last_mut() {
            if *ei == 0 && !data[v].visited {
                data[v].visited = true;
                data[v].index = counter;
                data[v].lowlink = counter;
                counter += 1;
                data[v].on_stack = true;
                stack.push(v);
            }
            if let Some(edge) = edges[v].get(*ei) {
                *ei += 1;
                let w = edge.target;
                if !data[w].visited {
                    dfs.push((w, 0));
                } else if data[w].on_stack {
                    data[v].lowlink = data[v].lowlink.min(data[w].index);
                }
            } else {
                // Done with v.
                dfs.pop();
                if let Some(&(parent, _)) = dfs.last() {
                    let low = data[v].lowlink;
                    data[parent].lowlink = data[parent].lowlink.min(low);
                }
                if data[v].lowlink == data[v].index {
                    let mut scc = Vec::new();
                    loop {
                        let w = stack.pop().expect("tarjan stack underflow");
                        data[w].on_stack = false;
                        scc.push(w);
                        if w == v {
                            break;
                        }
                    }
                    sccs.push(scc);
                }
            }
        }
    }
    sccs
}

#[cfg(test)]
mod tests {
    use super::*;
    use anonreg_model::{Pid, Step, View};

    /// Two-phase toy: writes its pid, reads, halts. Tiny state space.
    #[derive(Clone, Debug, PartialEq, Eq, Hash)]
    struct Toy {
        pid: Pid,
        phase: u8,
    }

    impl Machine for Toy {
        type Value = u64;
        type Event = &'static str;

        fn pid(&self) -> Pid {
            self.pid
        }

        fn register_count(&self) -> usize {
            1
        }

        fn resume(&mut self, _read: Option<u64>) -> Step<u64, &'static str> {
            match self.phase {
                0 => {
                    self.phase = 1;
                    Step::Write(0, self.pid.get())
                }
                1 => {
                    self.phase = 2;
                    Step::Event("wrote")
                }
                _ => Step::Halt,
            }
        }
    }

    /// Spins forever re-reading register 0 (a guaranteed livelock).
    #[derive(Clone, Debug, PartialEq, Eq, Hash)]
    struct Spinner {
        pid: Pid,
    }

    impl Machine for Spinner {
        type Value = u64;
        type Event = &'static str;

        fn pid(&self) -> Pid {
            self.pid
        }

        fn register_count(&self) -> usize {
            1
        }

        fn resume(&mut self, _read: Option<u64>) -> Step<u64, &'static str> {
            Step::Read(0)
        }
    }

    fn pid(n: u64) -> Pid {
        Pid::new(n).unwrap()
    }

    #[test]
    fn explores_tiny_interleaving_space() {
        let sim = Simulation::builder()
            .process(
                Toy {
                    pid: pid(1),
                    phase: 0,
                },
                View::identity(1),
            )
            .process(
                Toy {
                    pid: pid(2),
                    phase: 0,
                },
                View::identity(1),
            )
            .build()
            .unwrap();
        let graph = explore(sim, &ExploreLimits::default()).unwrap();
        // Each process contributes a write step and an event+halt step;
        // states are (register value, phase of each process) combinations.
        assert!(graph.state_count() >= 4);
        assert!(graph.state_count() <= 3 * 3 * 3);
        // Terminal states exist where everyone halted.
        let terminal = graph.find_state(super::super::simulation::Simulation::all_halted);
        assert!(terminal.is_some());
    }

    #[test]
    fn schedule_to_replays() {
        let build = || {
            Simulation::builder()
                .process(
                    Toy {
                        pid: pid(1),
                        phase: 0,
                    },
                    View::identity(1),
                )
                .process(
                    Toy {
                        pid: pid(2),
                        phase: 0,
                    },
                    View::identity(1),
                )
                .build()
                .unwrap()
        };
        let graph = explore(build(), &ExploreLimits::default()).unwrap();
        // Find a state where register 0 holds 1 and both halted: process 2
        // wrote first, process 1 overwrote.
        let id = graph
            .find_state(|s| s.all_halted() && s.registers()[0] == 1)
            .expect("such a terminal state exists");
        let schedule = graph.schedule_to(id);
        // Replay on a fresh simulation.
        let mut sim = build();
        for &p in &schedule {
            sim.step(p).unwrap();
        }
        assert_eq!(sim.state_key(), graph.state(id).state_key());
    }

    #[test]
    fn state_limit_is_enforced() {
        let sim = Simulation::builder()
            .process(
                Toy {
                    pid: pid(1),
                    phase: 0,
                },
                View::identity(1),
            )
            .process(
                Toy {
                    pid: pid(2),
                    phase: 0,
                },
                View::identity(1),
            )
            .build()
            .unwrap();
        let err = explore(
            sim,
            &ExploreLimits {
                max_states: 2,
                ..ExploreLimits::default()
            },
        )
        .unwrap_err();
        assert_eq!(err, ExploreError::StateLimitExceeded { limit: 2 });
        assert!(!err.to_string().is_empty());
    }

    #[test]
    fn spinner_is_a_fair_livelock() {
        let sim = Simulation::builder()
            .process(Spinner { pid: pid(1) }, View::identity(1))
            .process(Spinner { pid: pid(2) }, View::identity(1))
            .build()
            .unwrap();
        let graph = explore(sim, &ExploreLimits::default()).unwrap();
        let livelock = graph.find_fair_livelock(|_| true, |_| false);
        assert!(livelock.is_some());
    }

    #[test]
    fn halting_machines_have_no_livelock() {
        let sim = Simulation::builder()
            .process(
                Toy {
                    pid: pid(1),
                    phase: 0,
                },
                View::identity(1),
            )
            .process(
                Toy {
                    pid: pid(2),
                    phase: 0,
                },
                View::identity(1),
            )
            .build()
            .unwrap();
        let graph = explore(sim, &ExploreLimits::default()).unwrap();
        assert!(graph.nontrivial_sccs().is_empty());
        assert!(graph.find_fair_livelock(|_| true, |_| false).is_none());
    }

    #[test]
    fn progress_inside_scc_is_not_a_livelock() {
        /// Cycles forever but emits a progress event every lap.
        #[derive(Clone, Debug, PartialEq, Eq, Hash)]
        struct Lapper {
            pid: Pid,
            lap: bool,
        }
        impl Machine for Lapper {
            type Value = u64;
            type Event = &'static str;
            fn pid(&self) -> Pid {
                self.pid
            }
            fn register_count(&self) -> usize {
                1
            }
            fn resume(&mut self, _read: Option<u64>) -> Step<u64, &'static str> {
                self.lap = !self.lap;
                if self.lap {
                    Step::Read(0)
                } else {
                    Step::Event("progress")
                }
            }
        }
        let sim = Simulation::builder()
            .process(
                Lapper {
                    pid: pid(1),
                    lap: false,
                },
                View::identity(1),
            )
            .build()
            .unwrap();
        let graph = explore(sim, &ExploreLimits::default()).unwrap();
        assert!(!graph.nontrivial_sccs().is_empty());
        let livelock = graph.find_fair_livelock(|_| true, |e| *e == "progress");
        assert!(livelock.is_none());
    }

    #[test]
    fn probed_explore_reports_exact_counts() {
        use anonreg_obs::MemProbe;
        let build = || {
            Simulation::builder()
                .process(
                    Toy {
                        pid: pid(1),
                        phase: 0,
                    },
                    View::identity(1),
                )
                .process(
                    Toy {
                        pid: pid(2),
                        phase: 0,
                    },
                    View::identity(1),
                )
                .build()
                .unwrap()
        };
        let probe = MemProbe::new();
        let graph = explore_probed(build(), &ExploreLimits::default(), &probe).unwrap();
        let snap = probe.into_snapshot();
        assert_eq!(
            snap.counter_total(Metric::ExploreStates),
            graph.state_count() as u64
        );
        assert_eq!(
            snap.counter_total(Metric::ExploreEdges),
            graph.edge_count() as u64
        );
        // Every edge either discovers a state or hits the dedup table
        // (the initial state is discovered without an edge).
        assert_eq!(
            snap.counter_total(Metric::ExploreDedup),
            graph.edge_count() as u64 - (graph.state_count() as u64 - 1)
        );
        // Frontier drained; depth bounded by the longest acyclic path.
        let frontier = snap.gauge_stat(Metric::ExploreFrontier).unwrap();
        assert_eq!(frontier.last, 0);
        let depth = snap.gauge_stat(Metric::ExploreDepth).unwrap();
        assert!(depth.max >= 1 && depth.max < graph.state_count() as u64);
        // One explore span, length = states.
        assert_eq!(snap.spans.len(), 1);
        assert_eq!(snap.spans[0].length, graph.state_count() as u64);
        // And the probed graph is identical to the unprobed one.
        let plain = explore(build(), &ExploreLimits::default()).unwrap();
        assert_eq!(plain.state_count(), graph.state_count());
        assert_eq!(plain.edge_count(), graph.edge_count());
    }

    #[test]
    fn probed_explore_reports_partial_counts_on_limit() {
        use anonreg_obs::MemProbe;
        let sim = Simulation::builder()
            .process(
                Toy {
                    pid: pid(1),
                    phase: 0,
                },
                View::identity(1),
            )
            .process(
                Toy {
                    pid: pid(2),
                    phase: 0,
                },
                View::identity(1),
            )
            .build()
            .unwrap();
        let probe = MemProbe::new();
        let err = explore_probed(
            sim,
            &ExploreLimits {
                max_states: 3,
                ..ExploreLimits::default()
            },
            &probe,
        )
        .unwrap_err();
        assert_eq!(err, ExploreError::StateLimitExceeded { limit: 3 });
        let snap = probe.into_snapshot();
        assert_eq!(snap.counter_total(Metric::ExploreStates), 3);
        assert_eq!(snap.spans.len(), 1);
    }

    #[test]
    fn edge_events_are_captured() {
        let sim = Simulation::builder()
            .process(
                Toy {
                    pid: pid(1),
                    phase: 0,
                },
                View::identity(1),
            )
            .build()
            .unwrap();
        let graph = explore(sim, &ExploreLimits::default()).unwrap();
        let has_event_edge = (0..graph.state_count())
            .any(|id| graph.edges(id).iter().any(|e| e.events.contains(&"wrote")));
        assert!(has_event_edge);
    }
}
