//! Ordering plans: which memory ordering each *site class* of an
//! algorithm family runs at.
//!
//! The paper's machines perform exactly two kinds of memory operation
//! (`Step::Read` / `Step::Write`), and every family's writes split cleanly
//! into two semantic sites the sanitizer can classify by value alone:
//! *claim* writes publish a non-default record (a doorway identifier, a
//! consensus record, a renaming claim) and *clear* writes restore the
//! initial `V::default()` (exit code, resets). A plan assigns one
//! [`Ordering`] to each of the three site classes; the inference pass
//! weakens them one at a time down the ladder
//! `SeqCst → Acquire/Release → Relaxed`.

use std::fmt;
use std::sync::atomic::Ordering;

/// A site class within a family — the granularity certificates are issued
/// at.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Site {
    /// Every `Step::Read` a machine performs.
    Read,
    /// Writes that publish a non-default value (doorway identifiers,
    /// consensus/renaming records).
    Claim,
    /// Writes that restore `V::default()` (exit code, resets).
    Clear,
}

impl Site {
    /// All sites, in the order the inference pass weakens them.
    pub const ALL: [Site; 3] = [Site::Read, Site::Claim, Site::Clear];

    /// Stable lowercase name.
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            Site::Read => "read",
            Site::Claim => "claim",
            Site::Clear => "clear",
        }
    }

    /// The weakening ladder for this site, weakest first. Reads descend
    /// `Relaxed → Acquire → SeqCst`; writes `Relaxed → Release → SeqCst`
    /// (`AcqRel` belongs to read-modify-write sites, which the machines'
    /// read/write step model does not emit — `SanitizedRegister`'s CAS
    /// handles it for completeness).
    #[must_use]
    pub fn ladder(self) -> [Ordering; 3] {
        match self {
            Site::Read => [Ordering::Relaxed, Ordering::Acquire, Ordering::SeqCst],
            Site::Claim | Site::Clear => [Ordering::Relaxed, Ordering::Release, Ordering::SeqCst],
        }
    }
}

impl fmt::Display for Site {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// One ordering per site class.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct OrderingPlan {
    /// Ordering for every load.
    pub read: Ordering,
    /// Ordering for non-default ("claim") stores.
    pub claim: Ordering,
    /// Ordering for default-restoring ("clear") stores.
    pub clear: Ordering,
}

impl OrderingPlan {
    /// The paper's baseline: everything sequentially consistent.
    #[must_use]
    pub fn seq_cst() -> Self {
        OrderingPlan {
            read: Ordering::SeqCst,
            claim: Ordering::SeqCst,
            clear: Ordering::SeqCst,
        }
    }

    /// The ordering this plan assigns to `site`.
    #[must_use]
    pub fn of(&self, site: Site) -> Ordering {
        match site {
            Site::Read => self.read,
            Site::Claim => self.claim,
            Site::Clear => self.clear,
        }
    }

    /// A copy of this plan with `site` set to `ordering`.
    #[must_use]
    pub fn with_site(mut self, site: Site, ordering: Ordering) -> Self {
        match site {
            Site::Read => self.read = ordering,
            Site::Claim => self.claim = ordering,
            Site::Clear => self.clear = ordering,
        }
        self
    }

    /// Compact human-readable label, e.g.
    /// `read=Acquire claim=Release clear=Release`.
    #[must_use]
    pub fn label(&self) -> String {
        format!(
            "read={:?} claim={:?} clear={:?}",
            self.read, self.claim, self.clear
        )
    }
}

impl Default for OrderingPlan {
    fn default() -> Self {
        OrderingPlan::seq_cst()
    }
}

/// Does `ordering` carry release semantics on a store?
#[must_use]
pub fn is_release(ordering: Ordering) -> bool {
    matches!(
        ordering,
        Ordering::Release | Ordering::AcqRel | Ordering::SeqCst
    )
}

/// Does `ordering` carry acquire semantics on a load?
#[must_use]
pub fn is_acquire(ordering: Ordering) -> bool {
    matches!(
        ordering,
        Ordering::Acquire | Ordering::AcqRel | Ordering::SeqCst
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ladders_end_at_seqcst() {
        for site in Site::ALL {
            assert_eq!(*site.ladder().last().unwrap(), Ordering::SeqCst);
        }
    }

    #[test]
    fn with_site_round_trips() {
        let plan = OrderingPlan::seq_cst().with_site(Site::Read, Ordering::Acquire);
        assert_eq!(plan.of(Site::Read), Ordering::Acquire);
        assert_eq!(plan.of(Site::Claim), Ordering::SeqCst);
        assert!(plan.label().contains("read=Acquire"));
    }

    #[test]
    fn acquire_release_classification() {
        assert!(is_release(Ordering::SeqCst) && is_acquire(Ordering::SeqCst));
        assert!(is_release(Ordering::Release) && !is_acquire(Ordering::Release));
        assert!(!is_release(Ordering::Acquire) && is_acquire(Ordering::Acquire));
        assert!(!is_release(Ordering::Relaxed) && !is_acquire(Ordering::Relaxed));
    }
}
