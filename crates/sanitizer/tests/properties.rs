//! Property suite for the ordering sanitizer: the vector-clock laws the
//! happens-before analysis rests on, determinism of witness replay, and
//! the clean-under-faults guarantee for correct families at `SeqCst`.

use std::sync::atomic::Ordering;
use std::sync::Arc;

use anonreg_model::rng::Rng64;
use anonreg_obs::{MemProbe, Metric};
use anonreg_sanitizer::fixtures::{replay_fixture, run_fixture};
use anonreg_sanitizer::{
    broken_fixtures, certify_family, run_family, OrderingPlan, SanitizedRegister, SanitizerConfig,
    SanitizerCtx, VectorClock, FAMILIES,
};

/// A random clock over `slots` components, each ticked 0..=4 times.
fn random_clock(rng: &mut Rng64, slots: usize) -> VectorClock {
    let mut clock = VectorClock::new();
    for slot in 0..slots {
        for _ in 0..rng.gen_range_inclusive(0, 4) {
            clock.tick(slot);
        }
    }
    clock
}

#[test]
fn join_is_a_least_upper_bound_and_monotone() {
    let mut rng = Rng64::seed_from_u64(0xC10C);
    for _ in 0..200 {
        let a = random_clock(&mut rng, 4);
        let b = random_clock(&mut rng, 4);
        let mut joined = a.clone();
        joined.join(&b);
        // Upper bound of both arguments.
        assert!(a.le(&joined), "{a} ≤ {a} ⊔ {b}");
        assert!(b.le(&joined), "{b} ≤ {a} ⊔ {b}");
        // Least: any other upper bound dominates the join.
        let mut other = random_clock(&mut rng, 4);
        other.join(&a);
        other.join(&b);
        assert!(joined.le(&other), "join must be the least upper bound");
        // Monotone: growing an argument can only grow the join.
        let mut grown = a.clone();
        grown.tick(rng.gen_index(4));
        let mut grown_join = grown.clone();
        grown_join.join(&b);
        assert!(joined.le(&grown_join), "join must be monotone");
    }
}

#[test]
fn happens_before_is_transitive_and_irreflexive() {
    let mut rng = Rng64::seed_from_u64(0xBEEF);
    for _ in 0..200 {
        let a = random_clock(&mut rng, 4);
        let b = random_clock(&mut rng, 4);
        let c = random_clock(&mut rng, 4);
        assert!(!a.happens_before(&a), "irreflexive: {a}");
        if a.happens_before(&b) && b.happens_before(&c) {
            assert!(a.happens_before(&c), "transitive: {a} → {b} → {c}");
        }
        // happens-before and concurrency are mutually exclusive.
        if a.concurrent(&b) {
            assert!(!a.happens_before(&b) && !b.happens_before(&a));
        }
    }
}

#[test]
fn certification_and_witness_replay_are_deterministic() {
    // Same (family, seed, schedules) ⇒ byte-identical certification,
    // including every rejected rung's reason string.
    let first = certify_family("mutex", 0xD5, 4);
    let second = certify_family("mutex", 0xD5, 4);
    assert_eq!(format!("{first:?}"), format!("{second:?}"));
    assert!(first.clean);

    // A broken fixture's witness replays to the identical rendering from
    // its seed alone.
    for fixture in broken_fixtures() {
        let outcome = run_fixture(&fixture, 7, 16);
        let violation = outcome.violation.expect("fixture must be flagged");
        let seed = outcome.seed.expect("flagged outcome carries its seed");
        let replayed = replay_fixture(&fixture, seed).expect("the firing seed must fire again");
        assert_eq!(violation.to_string(), replayed.to_string());
    }
}

#[test]
fn correct_families_are_clean_at_seqcst_even_under_faults() {
    for family in FAMILIES {
        for (index, faults) in [(0u64, false), (1, true)] {
            let outcome = run_family(
                family,
                OrderingPlan::seq_cst(),
                anonreg_sanitizer::schedule_seed(3, index),
                faults,
            );
            assert!(
                outcome.is_clean(),
                "{family} (faults={faults}): {:?} / {:?}",
                outcome.first_violation,
                outcome.safety
            );
        }
    }
}

#[test]
fn snapshot_emits_counters_through_a_probe() {
    let ctx = Arc::new(SanitizerCtx::new(
        SanitizerConfig::default(),
        OrderingPlan::seq_cst(),
    ));
    let reg: SanitizedRegister<u64> = SanitizedRegister::attached(&ctx, 0);
    // One synchronizes-with edge...
    reg.write_as(0, 5, Ordering::Release);
    assert_eq!(reg.read_as(1, Ordering::Acquire), 5);
    // ...and one missing edge: a relaxed store consumed by a third slot.
    reg.write_as(0, 9, Ordering::Relaxed);
    while reg.read_as(2, Ordering::SeqCst) != 9 {}

    let snapshot = ctx.snapshot();
    assert!(snapshot.hb_edges > 0);
    assert!(snapshot.violation_count > 0);

    let probe = MemProbe::new();
    snapshot.emit(&probe);
    let metrics = probe.snapshot();
    assert_eq!(metrics.counter_total(Metric::HbEdges), snapshot.hb_edges);
    assert_eq!(
        metrics.counter_total(Metric::OrderingViolations),
        snapshot.violation_count
    );
    assert_eq!(
        metrics.counter_total(Metric::StaleReads),
        snapshot.stale_reads
    );
}
